"""Design-space exploration: regenerate the paper's Table 1.

Enumerates every valid general-case configuration for each filter size,
ranks them with the traced cost + timing model, and prints our explored
best next to the paper's tabulated configuration.

Run:  python examples/autotune_table1.py          (subsampled, ~10 s)
      python examples/autotune_table1.py --full   (full space)
"""

import sys

from repro.core.config import TABLE1_CONFIGS
from repro.core.dse import (
    default_general_problem,
    enumerate_general_configs,
    explore_general,
)
from repro.core.general import GeneralCaseKernel
from repro.gpu.arch import KEPLER_K40M
from repro.gpu.timing import TimingModel


def describe(cfg):
    return "W=%-3d H=%-2d FTB=%-3d WT=%-2d FT=%-2d CSH=%d" % (
        cfg.w, cfg.h, cfg.ftb, cfg.wt, cfg.ft, cfg.csh,
    )


def main(full=False):
    model = TimingModel(KEPLER_K40M)
    print("design-space exploration on the simulated %s" % KEPLER_K40M.name)
    print("(ranking workload: N=128, C=64, F=128 per filter size)\n")
    for k in (3, 5, 7):
        configs = enumerate_general_configs(k, 2, KEPLER_K40M)
        if not full:
            configs = configs[::5]
        ranked = explore_general(k, configs=configs)
        problem = default_general_problem(k)
        paper_cfg = TABLE1_CONFIGS[k]
        paper_gf = GeneralCaseKernel(config=paper_cfg).predict(
            problem, model).gflops(problem.flops)

        print("K=%d  (%d configurations explored)" % (k, len(ranked)))
        for rank, r in enumerate(ranked[:3], start=1):
            print("  #%d %s  %7.1f GFlop/s  occ %.0f%%  bound: %s"
                  % (rank, describe(r.config), r.gflops,
                     100 * r.occupancy, r.bound_by))
        print("  paper Table 1: %s  %7.1f GFlop/s (%.0f%% of explored best)\n"
              % (describe(paper_cfg), paper_gf,
                 100 * paper_gf / ranked[0].gflops))


if __name__ == "__main__":
    main(full="--full" in sys.argv)
