"""Quickstart: convolve an image with the paper's special-case kernel,
verify the result against the reference, and read the modeled
performance report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ConvProblem, SpecialCaseKernel, conv2d_single_channel
from repro.core.analysis import audit_special_kernel


def main():
    rng = np.random.default_rng(7)

    # A grayscale image and a small filter bank (C = 1: the paper's
    # "special case", Sec. 3).
    image = rng.standard_normal((512, 512)).astype(np.float32)
    filters = rng.standard_normal((8, 3, 3)).astype(np.float32)

    kernel = SpecialCaseKernel()          # Kepler K40m, matched float2
    output = kernel.run(image, filters)   # functional execution

    reference = conv2d_single_channel(image, filters)
    max_err = float(np.abs(output - reference).max())
    print("output shape     : %s" % (output.shape,))
    print("max |err| vs ref : %.2e" % max_err)
    assert max_err < 1e-3

    # Modeled performance on the simulated K40m.
    problem = ConvProblem.square(512, 3, channels=1, filters=8)
    breakdown = kernel.predict(problem)
    print("\nmodeled execution on %s" % kernel.arch.name)
    print("  time        : %.3f ms" % (breakdown.total * 1e3))
    print("  GFlop/s     : %.1f" % breakdown.gflops(problem.flops))
    print("  bound by    : %s" % breakdown.bound_by)
    print("  occupancy   : %.0f%%" % (100 * breakdown.occupancy_fraction))

    # The communication audit behind the paper's Sec. 3.2 claim.
    audit = audit_special_kernel(kernel, problem)
    print("\ncommunication audit")
    print("  GM reads / compulsory : %.3f (analytic halo model: %.3f)"
          % (audit.overhead, audit.expected_overhead))
    print("  bank-conflict free    : %s" % audit.conflict_free)
    print("  GM read efficiency    : %.0f%%" % (100 * audit.gm_read_efficiency))


if __name__ == "__main__":
    main()
