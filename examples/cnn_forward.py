"""CNN forward pass: time a VGG-like convolutional stack with every
implemented method — the deep-learning workload the paper's general-case
kernel targets (Sec. 4 / Fig. 8).

Functional correctness is verified on a scaled-down copy of the first
layer; the per-layer timing table uses the modeled Kepler K40m.

Run:  python examples/cnn_forward.py
"""

import numpy as np

from repro import GeneralCaseKernel, conv2d_reference
from repro.baselines import (
    FFTConvolution,
    Im2colKernel,
    ImplicitGemmKernel,
    NaiveDirectKernel,
    WinogradConvolution,
)
from repro.conv.workloads import vgg_layers

METHODS = [
    ("ours (direct)", GeneralCaseKernel()),
    ("cuDNN-like", ImplicitGemmKernel()),
    ("im2col+GEMM", Im2colKernel()),
    ("naive direct", NaiveDirectKernel()),
    ("FFT", FFTConvolution()),
    ("Winograd", WinogradConvolution()),
]


def verify_small_layer():
    """All methods must agree bit-for-bit (to fp32 tolerance)."""
    rng = np.random.default_rng(11)
    img = rng.standard_normal((8, 34, 34)).astype(np.float32)
    flt = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
    ref = conv2d_reference(img, flt)
    for name, kernel in METHODS:
        err = float(np.abs(kernel.run(img, flt) - ref).max())
        status = "ok" if err < 1e-2 else "MISMATCH"
        print("  %-14s max|err| %.1e  %s" % (name, err, status))
        assert err < 1e-2


def main():
    print("verifying all methods on a small layer:")
    verify_small_layer()

    print("\nmodeled per-layer time on the simulated K40m [ms]")
    header = "%-14s" % "layer" + "".join("%14s" % n for n, _ in METHODS)
    print(header)
    print("-" * len(header))
    totals = {name: 0.0 for name, _ in METHODS}
    for point in vgg_layers():
        cells = ["%-14s" % point.label.replace("vgg.", "")]
        for name, kernel in METHODS:
            t = kernel.predict(point.problem).total * 1e3
            totals[name] += t
            cells.append("%14.3f" % t)
        print("".join(cells))
    print("-" * len(header))
    print("".join(["%-14s" % "total"] + ["%14.3f" % totals[n] for n, _ in METHODS]))

    ours = totals["ours (direct)"]
    cudnn = totals["cuDNN-like"]
    print("\nstack speedup over cuDNN-like: %.2fx "
          "(paper Fig. 8: +35.5%% on average)" % (cudnn / ours))

    # Where the kernels sit on the machine's roofline (conv3_2).
    from repro.bench.roofline import roofline_report
    from repro.baselines import NaiveDirectKernel

    print()
    print(roofline_report(
        {"ours": GeneralCaseKernel(), "cuDNN-like": ImplicitGemmKernel(),
         "naive": NaiveDirectKernel()},
        vgg_layers()[2].problem,
    ))


if __name__ == "__main__":
    main()
