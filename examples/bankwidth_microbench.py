"""The bank-width model, end to end: Fig. 1's access patterns, Fig. 2's
GEMM consequence, and the Sec. 6 short-data-type extension — all through
the public API.

Run:  python examples/bankwidth_microbench.py
"""

import numpy as np

from repro import (
    FERMI_M2090,
    KEPLER_K40M,
    MAXWELL_GM204,
    mismatch_factor,
    matched_vector,
    smem_bandwidth_gain,
)
from repro.baselines import (
    GemmShape,
    cublas_like_gemm,
    magma_fermi_gemm,
    magma_matched_gemm,
)
from repro.core.bankwidth import conventional_pattern, matched_pattern
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel


def fig1_demo():
    print("=== Fig. 1: shared-memory access patterns on %s ===" % KEPLER_K40M.name)
    n = mismatch_factor(KEPLER_K40M, 4)
    print("W_SMB = %d, W_CD = 4  ->  n = %d (%s)"
          % (KEPLER_K40M.smem_bank_width, n, matched_vector(KEPLER_K40M, 4).name))
    model = SharedMemoryModel(KEPLER_K40M, BankConflictPolicy.PAPER)
    conv = model.access(conventional_pattern(32, 4), 4)
    mat = model.access(matched_pattern(16, 4, 2), 8)
    print("conventional (32 threads x float) : %d cycles" % conv.cycles)
    print("matched      (16 threads x float2): %d cycles  "
          "-> %dx the bandwidth for the same data\n" % (mat.cycles, conv.cycles))


def fig2_demo():
    print("=== Fig. 2: the GEMM consequence (time in ms) ===")
    kernels = [cublas_like_gemm(), magma_fermi_gemm(), magma_matched_gemm()]
    print("%8s" % "dim" + "".join("%12s" % k.name for k in kernels))
    for dim in (2048, 4096, 6144, 8192):
        shape = GemmShape.square(dim)
        print("%8d" % dim + "".join("%12.1f" % k.time_ms(shape) for k in kernels))
    s = GemmShape.square(4096)
    slowdown = magma_fermi_gemm().time_ms(s) / cublas_like_gemm().time_ms(s)
    saving = 1 - magma_matched_gemm().time_ms(s) / magma_fermi_gemm().time_ms(s)
    print("MAGMA is %.1fx slower than cuBLAS on Kepler (paper: 2.4x);"
          % slowdown)
    print("matching W_CD saves %.0f%% of its time (paper: 36%%)\n" % (100 * saving))


def short_dtype_demo():
    print("=== Sec. 6: short data types (matched-access bandwidth gain) ===")
    archs = [KEPLER_K40M, FERMI_M2090, MAXWELL_GM204]
    print("%8s" % "dtype" + "".join("%16s" % a.name.split()[0] for a in archs))
    for width, label in ((4, "float"), (2, "half"), (1, "char")):
        row = "%8s" % label
        for arch in archs:
            row += "%15.0fx" % smem_bandwidth_gain(arch, width)
        print(row)
    print("(fp16/int8 benefit even on 4-byte-bank architectures — the\n"
          " paper's model outlives the Kepler generation)")


if __name__ == "__main__":
    fig1_demo()
    fig2_demo()
    short_dtype_demo()
