"""Image-processing workload: edge detection and matched filtering on a
synthetic retinal-vessel-like image — the application class the paper's
introduction motivates (Gonzalez & Woods [1]; Chaudhuri et al. [2]).

Runs a Sobel pair, a Gaussian blur, and a bank of 12 oriented matched
filters through the special-case kernel, checks every result against the
reference convolution, and compares the modeled time with the
cuDNN-like baseline.

Run:  python examples/edge_detection.py
"""

import numpy as np

from repro import ConvProblem, Padding, SpecialCaseKernel, conv2d_single_channel
from repro.baselines import ImplicitGemmKernel


def synthetic_vessel_image(n=1024, seed=3):
    """Dark curvy 'vessels' on a bright background plus sensor noise."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:n, 0:n].astype(np.float32) / n
    img = np.full((n, n), 0.8, dtype=np.float32)
    for amp, freq, phase, thick in [(0.2, 3.0, 0.3, 0.004),
                                    (0.15, 5.0, 1.1, 0.003),
                                    (0.25, 2.0, 2.0, 0.005)]:
        center = 0.5 + amp * np.sin(2 * np.pi * freq * x + phase)
        img -= 0.5 * np.exp(-((y - center) ** 2) / thick)
    return img + rng.normal(0, 0.02, (n, n)).astype(np.float32)


def sobel_pair():
    gx = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]], dtype=np.float32)
    return np.stack([gx, gx.T])


def gaussian_5x5(sigma=1.0):
    ax = np.arange(-2, 3, dtype=np.float32)
    g = np.exp(-(ax ** 2) / (2 * sigma ** 2))
    k = np.outer(g, g)
    return (k / k.sum())[np.newaxis]


def matched_filter_bank(k=5, orientations=12, sigma=1.2):
    """Oriented second-derivative-of-Gaussian filters (vessel detectors,
    after Chaudhuri et al.)."""
    ax = np.arange(k, dtype=np.float32) - k // 2
    yy, xx = np.meshgrid(ax, ax, indexing="ij")
    bank = []
    for i in range(orientations):
        theta = np.pi * i / orientations
        u = xx * np.cos(theta) + yy * np.sin(theta)
        profile = (u ** 2 / sigma ** 2 - 1) * np.exp(-(u ** 2) / (2 * sigma ** 2))
        bank.append(profile - profile.mean())
    return np.stack(bank).astype(np.float32)


def run_stage(name, kernel, baseline, image, filters):
    out = kernel.run(image, filters, padding=Padding.SAME)
    ref = conv2d_single_channel(image, filters, padding=Padding.SAME)
    err = float(np.abs(out - ref).max())
    problem = ConvProblem(
        height=image.shape[0], width=image.shape[1], channels=1,
        filters=filters.shape[0], kernel_size=filters.shape[1],
        padding=Padding.SAME,
    )
    t_ours = kernel.predict(problem).total * 1e3
    t_base = baseline.predict(problem).total * 1e3
    print("%-18s F=%2d K=%d  err %.1e  ours %7.3f ms  cuDNN-like %7.3f ms  (%.1fx)"
          % (name, filters.shape[0], filters.shape[1], err,
             t_ours, t_base, t_base / t_ours))
    return out


def main():
    image = synthetic_vessel_image()
    kernel = SpecialCaseKernel()
    baseline = ImplicitGemmKernel()
    print("synthetic retinal image: %s\n" % (image.shape,))

    edges = run_stage("sobel", kernel, baseline, image, sobel_pair())
    smoothed = run_stage("gaussian blur", kernel, baseline, image, gaussian_5x5())
    responses = run_stage("matched filters", kernel, baseline,
                          smoothed[0], matched_filter_bank())

    magnitude = np.hypot(edges[0], edges[1])
    vesselness = responses.max(axis=0)
    print("\nedge magnitude   : mean %.4f  max %.4f"
          % (float(magnitude.mean()), float(magnitude.max())))
    print("vessel response  : mean %.4f  max %.4f"
          % (float(vesselness.mean()), float(vesselness.max())))


if __name__ == "__main__":
    main()
