"""Serving demo: a mixed CNN-layer workload through ``repro.serve``.

Generates a synthetic trace of 120 requests over six repeating problem
shapes (single-channel image-processing shapes next to small
multi-channel CNN layers), serves it through the dynamic-batching
engine, and shows the three things the subsystem is for:

* **correctness** — every response is bit-exact against the golden
  ``conv2d_reference`` (the engine's default executor *is* the golden
  numeric path; the dispatched backend supplies the modeled cost);
* **plan caching** — the design-space explorer runs once per distinct
  shape, so the cache hit rate approaches 1 as shapes repeat;
* **batching** — coalescing same-shape requests under the latency
  deadline amortizes launch overhead, so throughput in requests per
  modeled second strictly beats the unbatched single-request path.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro import conv2d_reference
from repro.serve import ServeEngine, synthetic_trace

N_REQUESTS = 120


def serve(deadline_s, max_batch):
    engine = ServeEngine(deadline_s=deadline_s, max_batch=max_batch)
    trace = synthetic_trace(N_REQUESTS, seed=7)
    responses = engine.serve_trace(trace)
    return trace, responses, engine


def main():
    # --- batched serving ------------------------------------------------
    trace, responses, engine = serve(deadline_s=1e-3, max_batch=16)
    shapes = {request.problem for request in trace}
    print("serving %d requests over %d distinct shapes"
          % (len(trace), len(shapes)))

    # Correctness: bit-exact against the golden reference convolution.
    mismatches = sum(
        not np.array_equal(
            response.output,
            conv2d_reference(request.image, request.filters,
                             request.problem.padding),
        )
        for request, response in zip(trace, responses)
    )
    print("bit-exact vs conv2d_reference : %d/%d match"
          % (len(trace) - mismatches, len(trace)))
    assert mismatches == 0

    snap = engine.stats()
    print("\n--- engine stats (batched, deadline=1 ms, max_batch=16) ---")
    print(engine.format_stats())

    # Plan caching: the explorer ran once per shape, then pure hits.
    hit_rate = snap["plan_cache"]["hit_rate"]
    assert snap["plan_cache"]["misses"] == len(shapes)
    assert hit_rate > 0.8, hit_rate

    # --- unbatched single-request path on the same trace ----------------
    _, _, unbatched = serve(deadline_s=0.0, max_batch=1)
    usnap = unbatched.stats()
    print("\n--- batched vs unbatched, same trace ---")
    print("batched   : %7.0f req/modeled-s (mean batch %.2f)"
          % (snap["throughput_rps"], snap["mean_batch_size"]))
    print("unbatched : %7.0f req/modeled-s (mean batch %.2f)"
          % (usnap["throughput_rps"], usnap["mean_batch_size"]))
    speedup = snap["throughput_rps"] / usnap["throughput_rps"]
    print("batching speedup : %.2fx" % speedup)
    assert snap["throughput_rps"] > usnap["throughput_rps"]

    # The price of batching is latency: the deadline bounds the wait.
    print("latency mean (batched)   : %.2e s" % snap["mean_latency_s"])
    print("latency mean (unbatched) : %.2e s" % usnap["mean_latency_s"])


if __name__ == "__main__":
    main()
