"""CNN training step: run a layer's forward pass, compute both
gradients, verify them against the adjoint identities, and model all
three passes on the paper's kernels.

The paper motivates its kernels with both CNN phases (Sec. 1) but
evaluates only the forward pass; this example closes the loop with the
operators in :mod:`repro.conv.gradients`.

Run:  python examples/cnn_training_step.py
"""

import dataclasses

import numpy as np

from repro import ConvProblem, GeneralCaseKernel, conv2d_reference
from repro.conv.gradients import (
    conv2d_input_gradient,
    conv2d_weight_gradient,
    input_gradient_problem,
    weight_gradient_problem,
)
from repro.core.config import SpecialCaseConfig
from repro.core.special import SpecialCaseKernel
from repro.gpu.simt import Dim3
from repro.gpu.timing import TimingModel


def numerically_verify(img, flt, g):
    """The adjoint identities every autograd engine relies on."""
    k = flt.shape[2]
    out = conv2d_reference(img, flt)
    dx = conv2d_input_gradient(g, flt)
    dw = conv2d_weight_gradient(img, g, k)
    inner = float(np.sum(g * out))
    via_dx = float(np.sum(dx * img))
    via_dw = float(np.sum(dw * flt))
    print("adjoint identities  <g, conv(x,W)> = %.6g" % inner)
    print("                    <dgrad(g,W),x> = %.6g" % via_dx)
    print("                    <wgrad(x,g),W> = %.6g" % via_dw)
    assert abs(inner - via_dx) < 1e-2 * abs(inner)
    assert abs(inner - via_dw) < 1e-2 * abs(inner)
    return dx, dw


def main():
    rng = np.random.default_rng(5)

    # A deep-layer shape (the regime where all three mappings apply).
    problem = ConvProblem.square(16, 3, channels=64, filters=32)
    img, flt = problem.random_instance(seed=5)
    g = rng.standard_normal(problem.output_shape).astype(np.float32)

    print("layer: %dx%d, C=%d, F=%d, K=%d\n"
          % (problem.height, problem.width, problem.channels,
             problem.filters, problem.kernel_size))
    numerically_verify(img, flt, g)

    model = TimingModel(GeneralCaseKernel().arch)
    general = GeneralCaseKernel(auto_config=True)

    t_fwd = general.predict(problem, model).total * 1e3
    t_dgrad = general.predict(input_gradient_problem(problem), model).total * 1e3

    wg_problem = weight_gradient_problem(problem)
    wg_kernel = SpecialCaseKernel(config=SpecialCaseConfig(block_w=64, block_h=4))
    wg_cost = wg_kernel.cost(wg_problem)
    wg_cost.ledger.scale(problem.channels)     # batch channels in one launch
    wg_cost = dataclasses.replace(
        wg_cost,
        launch=dataclasses.replace(
            wg_cost.launch,
            grid=Dim3(wg_cost.launch.grid.x, wg_cost.launch.grid.y,
                      problem.channels),
        ),
    )
    t_wgrad = model.evaluate(wg_cost).total * 1e3

    print("\nmodeled pass times on the simulated K40m")
    print("  forward (general kernel)      : %7.3f ms" % t_fwd)
    print("  input grad (general kernel)   : %7.3f ms" % t_dgrad)
    print("  weight grad (special kernel,  : %7.3f ms" % t_wgrad)
    print("   one %dx%d 'filter' per map)" % (wg_problem.kernel_size,
                                              wg_problem.kernel_size))
    print("\n(the wgrad mapping is valid but inefficient — a dedicated "
          "wgrad\n decomposition is the first thing a production port "
          "would add)")


if __name__ == "__main__":
    main()
