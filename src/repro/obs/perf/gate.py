"""Regression gate: compare a suite run against the trajectory baseline.

The gate's contract (``repro perf gate``): load ``BENCH_trajectory.json``,
pick the most recent baseline point with the same scale (and a
``perf_suite`` source), compare the current run workload-by-workload,
and exit non-zero naming the offending workload and budget when any
metric violates its budget.

Two metric regimes, by the naming convention in
:mod:`repro.obs.perf.trajectory`:

* **wall metrics** (``wall_s`` / ``*_wall_s``) are noisy and
  machine-dependent.  Their budget is ``baseline * (1 + tolerance)``,
  scaled by the ratio of the two points' *calibration* yardsticks, so
  a slower CI host does not read as a regression but a 2x-slower
  simulator hot path does.  Only slowdowns violate — getting faster is
  the roadmap, not a bug.
* **modeled metrics** (virtual-clock rates, cache hit rates, candidate
  counts) are deterministic functions of the tree.  Any relative drift
  beyond ``model_tolerance`` (default 1e-6) violates, in either
  direction: an intentional model change must re-record the baseline,
  which is exactly how "every PR ships with its perf delta" stays true.

Explicit ``--budget workload.metric=value`` bounds override the derived
budget for that metric (upper bound, any metric kind).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.perf.trajectory import is_wall_metric

__all__ = [
    "ComparisonRow",
    "Violation",
    "GateResult",
    "select_baseline",
    "compare_points",
    "format_comparison",
    "parse_budgets",
]

#: Default noise tolerance for wall-clock budgets (25% headroom).
DEFAULT_TOLERANCE = 0.25

#: Default relative drift tolerance for modeled (deterministic) metrics.
DEFAULT_MODEL_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ComparisonRow:
    """One metric's baseline-vs-current line in the report."""

    workload: str
    metric: str
    kind: str                  # "wall" | "modeled"
    baseline: float
    current: float
    budget: Optional[float]    # the bound actually enforced (None = untracked)
    violated: bool

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline) * 100.0


@dataclass(frozen=True)
class Violation:
    """One budget violation, with the message the gate prints."""

    workload: str
    metric: str
    message: str


@dataclass(frozen=True)
class GateResult:
    rows: Tuple[ComparisonRow, ...]
    violations: Tuple[Violation, ...]
    calibration_ratio: float
    baseline_meta: dict

    @property
    def passed(self) -> bool:
        return not self.violations


def select_baseline(doc: dict, scale: str,
                    source: str = "perf_suite") -> Optional[dict]:
    """The most recent point matching ``scale`` (preferring ``source``).

    Falls back to the most recent point of any source at that scale
    (e.g. the normalized fleet-proof entry) so a fresh database with
    only legacy points can still gate its overlapping workloads.
    """
    candidates = [p for p in doc.get("points", ())
                  if p["meta"].get("scale") == scale]
    preferred = [p for p in candidates if p["meta"].get("source") == source]
    pool = preferred or candidates
    return pool[-1] if pool else None


def parse_budgets(specs) -> Dict[Tuple[str, str], float]:
    """Parse ``workload.metric=value`` budget overrides."""
    budgets: Dict[Tuple[str, str], float] = {}
    for spec in specs or ():
        target, sep, value = spec.partition("=")
        workload, dot, metric = target.partition(".")
        if not sep or not dot or not workload or not metric:
            raise ObservabilityError(
                "bad --budget %r; expected workload.metric=value" % spec)
        try:
            budgets[(workload, metric)] = float(value)
        except ValueError:
            raise ObservabilityError(
                "bad --budget value %r for %s.%s" % (value, workload, metric))
    return budgets


def compare_points(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    model_tolerance: float = DEFAULT_MODEL_TOLERANCE,
    budgets: Optional[Dict[Tuple[str, str], float]] = None,
) -> GateResult:
    """Compare two trajectory points and collect budget violations."""
    if tolerance < 0:
        raise ObservabilityError("tolerance cannot be negative")
    if model_tolerance < 0:
        raise ObservabilityError("model tolerance cannot be negative")
    budgets = dict(budgets or {})

    # Wall budgets scale by the hosts' relative speed: a baseline
    # recorded on a machine twice as fast should not fail here.
    cal_base = baseline["meta"].get("calibration_s")
    cal_cur = current["meta"].get("calibration_s")
    if cal_base and cal_cur and cal_base > 0:
        calibration_ratio = cal_cur / cal_base
    else:
        calibration_ratio = 1.0

    rows: List[ComparisonRow] = []
    violations: List[Violation] = []
    base_workloads = baseline.get("workloads", {})
    for workload, metrics in sorted(current.get("workloads", {}).items()):
        base_metrics = base_workloads.get(workload)
        for metric, value in sorted(metrics.items()):
            explicit = budgets.pop((workload, metric), None)
            if base_metrics is None or metric not in base_metrics:
                if explicit is not None and value > explicit:
                    violations.append(Violation(
                        workload, metric,
                        "workload %r metric %r: current %.6g exceeds "
                        "explicit budget %.6g"
                        % (workload, metric, value, explicit)))
                    rows.append(ComparisonRow(
                        workload, metric, "explicit", float("nan"),
                        value, explicit, True))
                continue
            base_value = float(base_metrics[metric])
            wall = is_wall_metric(metric)
            if explicit is not None:
                budget = explicit
                violated = value > budget
                detail = "explicit budget %.6g" % budget
            elif wall:
                budget = base_value * (1.0 + tolerance) * calibration_ratio
                violated = value > budget
                detail = ("budget %.6gs (baseline %.6gs x %.2f tolerance, "
                          "calibration x%.3f)"
                          % (budget, base_value, 1.0 + tolerance,
                             calibration_ratio))
            else:
                scale = max(abs(base_value), 1e-12)
                budget = None
                violated = abs(value - base_value) / scale > model_tolerance
                detail = ("modeled drift budget +/-%.3g relative "
                          "(baseline %.6g)" % (model_tolerance, base_value))
            rows.append(ComparisonRow(
                workload, metric, "wall" if wall else "modeled",
                base_value, float(value), budget, violated))
            if violated:
                violations.append(Violation(
                    workload, metric,
                    "workload %r metric %r: current %.6g vs %s"
                    % (workload, metric, value, detail)))
    # Budgets naming absent workloads/metrics are configuration errors,
    # not silent passes.
    for (workload, metric) in budgets:
        raise ObservabilityError(
            "--budget names unknown metric %s.%s (not in the current run)"
            % (workload, metric))
    return GateResult(tuple(rows), tuple(violations),
                      calibration_ratio, dict(baseline.get("meta", {})))


def format_comparison(result: GateResult, title: str = "perf gate") -> str:
    """Human-readable delta table + verdict (the CI job-log payload)."""
    lines = []
    meta = result.baseline_meta
    lines.append("%s: baseline %s@%s (%s, scale=%s), calibration x%.3f"
                 % (title, meta.get("version", "?"),
                    meta.get("git_sha", "?"), meta.get("source", "?"),
                    meta.get("scale", "?"), result.calibration_ratio))
    header = "%-16s %-22s %-8s %12s %12s %9s  %s" % (
        "workload", "metric", "kind", "baseline", "current", "delta", "")
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        delta = row.delta_pct
        delta_text = ("%+8.1f%%" % delta) if abs(delta) != float("inf") \
            else "     new"
        lines.append("%-16s %-22s %-8s %12.6g %12.6g %9s  %s" % (
            row.workload, row.metric, row.kind, row.baseline, row.current,
            delta_text, "VIOLATION" if row.violated else "ok"))
    for violation in result.violations:
        lines.append("FAIL: %s" % violation.message)
    lines.append("%s: %s (%d metrics compared, %d violations)"
                 % (title, "PASS" if result.passed else "FAIL",
                    len(result.rows), len(result.violations)))
    return "\n".join(lines)
