"""repro.obs.perf — the performance observatory.

Three pieces on top of the metrics registry and span tracer (see
docs/OBSERVABILITY.md, "Profiling & perf trajectory"):

* :mod:`~repro.obs.perf.profiler` — deterministic span-fold profiler
  (self/cumulative time per frame, collapsed-stack flamegraph export,
  Perfetto ``profile`` section) plus the opt-in ``REPRO_PROFILE=1``
  sampling hooks around the SIMT interpreter and DSE candidate loops;
* :mod:`~repro.obs.perf.trajectory` — the append-only, schema-versioned
  ``BENCH_trajectory.json`` database (environment fingerprint,
  calibration yardstick, legacy ``BENCH_serve.json`` normalization);
* :mod:`~repro.obs.perf.gate` — baseline comparison with a noise
  tolerance for wall metrics and a drift check for modeled ones,
  backing ``repro perf gate`` and the CI ``perf-gate`` job.

The workload suite itself lives in :mod:`repro.obs.perf.suite`; it is
imported lazily (it pulls in serve/fleet/dse) — ``from repro.obs.perf
import suite`` when you need it.
"""

from repro.obs.perf.gate import (
    ComparisonRow,
    GateResult,
    Violation,
    compare_points,
    format_comparison,
    parse_budgets,
    select_baseline,
)
from repro.obs.perf.profiler import (
    SamplingProfiler,
    clear_sample_profiles,
    collapsed_stacks,
    maybe_profile,
    parse_collapsed,
    profiling_enabled,
    sample_profiles,
    span_profile,
)
from repro.obs.perf.trajectory import (
    SCHEMA,
    SCHEMA_VERSION,
    TRAJECTORY_PATH,
    append_point,
    calibrate,
    environment_fingerprint,
    is_wall_metric,
    load_trajectory,
    make_meta,
    new_trajectory,
    normalize_bench_serve,
    validate_point,
)

__all__ = [
    "ComparisonRow",
    "GateResult",
    "Violation",
    "compare_points",
    "format_comparison",
    "parse_budgets",
    "select_baseline",
    "SamplingProfiler",
    "clear_sample_profiles",
    "collapsed_stacks",
    "maybe_profile",
    "parse_collapsed",
    "profiling_enabled",
    "sample_profiles",
    "span_profile",
    "SCHEMA",
    "SCHEMA_VERSION",
    "TRAJECTORY_PATH",
    "append_point",
    "calibrate",
    "environment_fingerprint",
    "is_wall_metric",
    "load_trajectory",
    "make_meta",
    "new_trajectory",
    "normalize_bench_serve",
    "validate_point",
]
