"""Deterministic span-fold profiler and the opt-in sampling hook.

Two complementary views of where time goes:

* :func:`span_profile` folds the tracer's **wall-track spans** into
  per-frame *self time* (time inside a span minus its direct children)
  and *cumulative time* attribution, plus the aggregated stack table
  that :func:`collapsed_stacks` renders in Brendan Gregg's
  collapsed-stack flamegraph format (``frame;frame;frame <value>`` with
  the value in integer microseconds of self time).  This is fully
  deterministic: it is a pure function of the spans the run recorded.
* :class:`SamplingProfiler` / :func:`maybe_profile` is the opt-in,
  low-overhead statistical view: when ``REPRO_PROFILE=1`` is set, the
  hooks around the SIMT interpreter and the DSE candidate loops start a
  background thread that samples the working thread's Python stack at a
  fixed interval and folds the frames into the same collapsed format
  (prefixed ``sampled;<tag>;...``), so the hottest *Python frames* —
  not just the instrumented span boundaries — are visible.

Both feed ``repro perf record --flamegraph`` and the ``profile``
section of the Perfetto trace (:func:`repro.obs.exporters.chrome_trace`
with ``profile=True``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.tracing import Tracer, WALL_TRACK

__all__ = [
    "FrameStat",
    "span_profile",
    "collapsed_stacks",
    "parse_collapsed",
    "SamplingProfiler",
    "maybe_profile",
    "profiling_enabled",
    "sample_profiles",
    "clear_sample_profiles",
    "sampled_collapsed",
    "PROFILE_ENV",
    "PROFILE_HZ_ENV",
]

#: Environment switch for the sampling hooks (truthy values enable).
PROFILE_ENV = "REPRO_PROFILE"

#: Optional override of the sampling frequency (samples per second).
PROFILE_HZ_ENV = "REPRO_PROFILE_HZ"

_TRUTHY = ("1", "true", "yes", "on")

#: Comparison slack for span boundaries (spans store float seconds).
_EPS = 1e-12


@dataclass(frozen=True)
class FrameStat:
    """Aggregated attribution for one frame across every stack."""

    frame: str
    calls: int
    self_s: float
    cum_s: float


def _frame_of(span) -> str:
    """A span's flamegraph frame: the first token of its name.

    Span names may carry per-instance payloads (``dse:general
    GeneralCaseConfig(w=32, ...)``); folding on the first token keeps
    the stack table's cardinality bounded.  Separator characters are
    replaced so the collapsed format stays parseable.
    """
    token = span.name.split()[0] if span.name.split() else span.name
    return token.replace(";", ":") or "(anonymous)"


def _fold_wall_spans(tracer: Tracer):
    """Attribute self/cumulative time per stack path.

    Wall spans nest by construction (the ``Tracer.span`` context
    manager records the open-time depth), so parentage is recoverable
    with one sweep: sort by start time, keep the stack of currently
    open spans, and charge each span's duration to its parent's
    child-time accumulator.  Self time is then duration minus direct
    children.  The whole fold is a pure function of the span list —
    byte-identical output for identical runs.
    """
    spans = [s for s in tracer.spans if s.track == WALL_TRACK]
    order = sorted(spans, key=lambda s: (s.start_s, s.depth, -s.duration_s))
    stack: List[list] = []   # [span, child_time, path_tuple]
    stacks: Dict[Tuple[str, ...], List[float]] = {}   # path -> [self_s, calls]
    frames: Dict[str, List[float]] = {}               # frame -> [self, cum, calls]

    def close(entry) -> None:
        span, child_time, path = entry
        self_s = max(0.0, span.duration_s - child_time)
        agg = stacks.setdefault(path, [0.0, 0])
        agg[0] += self_s
        agg[1] += 1
        frame = path[-1]
        stat = frames.setdefault(frame, [0.0, 0.0, 0])
        stat[0] += self_s
        stat[2] += 1
        # Cumulative time counts a span only when its frame is not
        # already on the ancestor path (the standard recursion guard).
        if frame not in path[:-1]:
            stat[1] += span.duration_s

    for span in order:
        while stack and (span.start_s >= stack[-1][0].end_s - _EPS
                         or span.depth <= stack[-1][0].depth):
            close(stack.pop())
        path = (stack[-1][2] if stack else ()) + (_frame_of(span),)
        if stack:
            stack[-1][1] += span.duration_s
        stack.append([span, 0.0, path])
    while stack:
        close(stack.pop())
    return stacks, frames


def span_profile(tracer: Tracer) -> dict:
    """The deterministic profile document for a tracer's wall spans.

    Returns ``{"clock", "total_s", "frames", "stacks", ...}`` where
    ``frames`` carries per-frame self/cumulative attribution sorted by
    self time (descending) and ``stacks`` the aggregated stack table
    backing the flamegraph.  JSON-serializable; embedded verbatim as
    the Perfetto trace's ``otherData.profile`` section.
    """
    stacks, frames = _fold_wall_spans(tracer)
    frame_rows = [
        FrameStat(frame=f, calls=int(c), self_s=s, cum_s=cum)
        for f, (s, cum, c) in frames.items()
    ]
    frame_rows.sort(key=lambda r: (-r.self_s, r.frame))
    stack_rows = [
        {"stack": ";".join(path), "self_s": self_s, "calls": int(calls)}
        for path, (self_s, calls) in stacks.items()
    ]
    stack_rows.sort(key=lambda r: (-r["self_s"], r["stack"]))
    total_s = sum(r["self_s"] for r in stack_rows)
    return {
        "clock": "wall",
        "total_s": total_s,
        "span_count": sum(1 for s in tracer.spans if s.track == WALL_TRACK),
        "dropped_spans": tracer.dropped,
        "frames": [
            {"frame": r.frame, "calls": r.calls,
             "self_s": r.self_s, "cum_s": r.cum_s}
            for r in frame_rows
        ],
        "stacks": stack_rows,
    }


def collapsed_stacks(tracer: Tracer, include_samples: bool = True) -> str:
    """Render the span fold in collapsed-stack flamegraph format.

    One line per aggregated stack: semicolon-separated frames, a single
    space, then the stack's self time in integer microseconds.  Any
    flamegraph tool that eats ``stackcollapse-*`` output renders it.
    With ``include_samples`` (the default), stacks collected by the
    ``REPRO_PROFILE=1`` sampling hooks are appended under a
    ``sampled;<tag>`` root with sample counts as values.
    """
    profile = span_profile(tracer)
    lines = []
    for row in profile["stacks"]:
        value = int(round(row["self_s"] * 1e6))
        if value > 0:
            lines.append("%s %d" % (row["stack"], value))
    if include_samples:
        lines.extend(sampled_collapsed())
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse collapsed-stack text back into ``{frames: value}``.

    The round-trip partner of :func:`collapsed_stacks`; raises
    ``ValueError`` on a malformed line so tests can assert the export
    validates as collapsed-stack format.
    """
    out: Dict[Tuple[str, ...], int] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError("line %d is not 'stack value': %r" % (lineno, raw))
        try:
            count = int(value)
        except ValueError:
            raise ValueError("line %d has a non-integer value: %r"
                             % (lineno, raw))
        if count < 0:
            raise ValueError("line %d has a negative value: %r" % (lineno, raw))
        frames = tuple(stack.split(";"))
        if any(not f for f in frames):
            raise ValueError("line %d has an empty frame: %r" % (lineno, raw))
        out[frames] = out.get(frames, 0) + count
    return out


# ----------------------------------------------------------------------
# Opt-in sampling profiler (REPRO_PROFILE=1)
# ----------------------------------------------------------------------

def profiling_enabled() -> bool:
    """True when the ``REPRO_PROFILE`` environment switch is set."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() in _TRUTHY


def _sample_interval_s() -> float:
    try:
        hz = float(os.environ.get(PROFILE_HZ_ENV, "") or 200.0)
    except ValueError:
        hz = 200.0
    return 1.0 / max(1.0, hz)


class SamplingProfiler:
    """Background-thread stack sampler for one working thread.

    Samples the target thread's Python frames via
    ``sys._current_frames()`` at a fixed interval and folds them into
    ``{(root, ..., leaf): count}``.  Overhead is one dictionary update
    per interval — the worked code is never instrumented, which is the
    point: it stays cheap enough to leave on around the SIMT
    interpreter's per-warp loops.
    """

    def __init__(self, interval_s: Optional[float] = None,
                 max_depth: int = 64,
                 target_thread_id: Optional[int] = None):
        self.interval_s = interval_s if interval_s else _sample_interval_s()
        self.max_depth = max_depth
        self.target_thread_id = target_thread_id
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.sample_count = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _frame_label(frame) -> str:
        code = frame.f_code
        module = os.path.basename(code.co_filename)
        if module.endswith(".py"):
            module = module[:-3]
        return ("%s:%s" % (module, code.co_name)).replace(";", ":")

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self.target_thread_id)
        if frame is None:
            return
        frames: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            frames.append(self._frame_label(frame))
            frame = frame.f_back
            depth += 1
        stack = tuple(reversed(frames))
        self.samples[stack] = self.samples.get(stack, 0) + 1
        self.sample_count += 1

    def _run(self) -> None:
        while not self._stop.is_set():
            self._take_sample()
            self._stop.wait(self.interval_s)

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        if self.target_thread_id is None:
            self.target_thread_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampling-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> Dict[Tuple[str, ...], int]:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        return self.samples

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


# Process-global store the opt-in hooks accumulate into, keyed by hook
# tag; `repro perf record --flamegraph` drains it into the export.
_sample_store: Dict[str, Dict[Tuple[str, ...], int]] = {}
_store_lock = threading.Lock()


class _NullProfile:
    """What :func:`maybe_profile` yields when profiling is disabled."""

    sample_count = 0
    samples: Dict[Tuple[str, ...], int] = {}


class maybe_profile:
    """Context manager: sample the calling thread iff ``REPRO_PROFILE=1``.

    The zero-cost default path is one environment lookup; when enabled,
    a :class:`SamplingProfiler` runs for the duration of the block and
    its folded samples merge into the process-global store under
    ``tag`` (readable via :func:`sample_profiles` /
    :func:`sampled_collapsed`).
    """

    def __init__(self, tag: str, interval_s: Optional[float] = None):
        self.tag = tag
        self.interval_s = interval_s
        self._profiler: Optional[SamplingProfiler] = None

    def __enter__(self):
        if not profiling_enabled():
            return _NullProfile()
        self._profiler = SamplingProfiler(interval_s=self.interval_s)
        return self._profiler.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._profiler is not None:
            samples = self._profiler.stop()
            with _store_lock:
                bucket = _sample_store.setdefault(self.tag, {})
                for stack, count in samples.items():
                    bucket[stack] = bucket.get(stack, 0) + count
            self._profiler = None
        return False


def sample_profiles() -> Dict[str, Dict[Tuple[str, ...], int]]:
    """Copy of the accumulated ``{tag: {stack: sample count}}`` store."""
    with _store_lock:
        return {tag: dict(stacks) for tag, stacks in _sample_store.items()}


def clear_sample_profiles() -> None:
    with _store_lock:
        _sample_store.clear()


def sampled_collapsed() -> List[str]:
    """The sampling store as collapsed-stack lines (counts as values)."""
    lines: List[str] = []
    store = sample_profiles()
    for tag in sorted(store):
        for stack, count in sorted(store[tag].items()):
            frames = ("sampled", tag.replace(";", ":")) + stack
            lines.append("%s %d" % (";".join(frames), count))
    return lines
