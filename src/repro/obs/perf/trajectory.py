"""The perf-trajectory database: append-only, schema-versioned points.

``BENCH_trajectory.json`` is the repo's performance memory: every
recorded suite run (and the normalized legacy ``BENCH_serve.json``
entry) is one *point* — a ``meta`` block identifying when/where/what
was measured plus a ``workloads`` map of metric values.  Points are
append-only: recording never rewrites history, so the file reads as
the repo's perf trajectory over PRs.

Schema (``repro.perf-trajectory/v1``)::

    {
      "schema": "repro.perf-trajectory/v1",
      "schema_version": 1,
      "points": [
        {
          "meta": {
            "schema_version": 1,
            "source": "perf_suite" | "fleet_proof",
            "scale": "smoke" | "ci" | "full",
            "version": "1.6.0",          # repro.__version__
            "git_sha": "abc123..",        # or "unknown"
            "python": "3.12.4",
            "platform": "Linux-...",
            "cpu_count": 8,
            "recorded_unix": 1754650000.0,
            "calibration_s": 0.083,       # fixed-work machine yardstick
            "note": "...",                # optional
          },
          "workloads": {"table1_dse": {"wall_s": 8.1, "rows": 3}, ...}
        }
      ]
    }

Metric naming convention: ``wall_s`` (and any ``*_wall_s``) are
host-clock measurements — noisy, machine-dependent, normalized by the
calibration yardstick when gated.  Every other metric is treated as
*modeled* (virtual-clock rates, cache hit rates, candidate counts) —
deterministic for a given tree, so the gate flags any drift.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Optional

import numpy as np

from repro.errors import ObservabilityError

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "TRAJECTORY_PATH",
    "environment_fingerprint",
    "calibrate",
    "make_meta",
    "new_trajectory",
    "load_trajectory",
    "validate_point",
    "append_point",
    "is_wall_metric",
    "normalize_bench_serve",
]

SCHEMA = "repro.perf-trajectory/v1"
SCHEMA_VERSION = 1

#: Default database location (repo root by convention).
TRAJECTORY_PATH = "BENCH_trajectory.json"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def environment_fingerprint() -> dict:
    """Who measured: version, git sha, python, platform, cpu count."""
    from repro import __version__

    return {
        "version": __version__,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def calibrate(reps: int = 24) -> float:
    """Time a fixed unit of mixed Python/numpy work (seconds).

    The workload profile mirrors what the suite actually exercises — a
    Python-level loop issuing small numpy kernels — so the ratio of two
    machines' calibration times predicts the ratio of their suite
    wall-clocks.  The gate divides wall budgets by this yardstick,
    making wall-clock comparisons portable across hosts while a genuine
    code regression (which does not slow the calibration) still trips
    the budget.  The work amount is fixed — never adaptive — so the
    measurement itself is comparable between runs.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((96, 96)).astype(np.float32)
    b = rng.standard_normal((96, 96)).astype(np.float32)
    acc = 0.0
    start = time.perf_counter()
    for _ in range(reps):
        c = a @ b
        acc += float(c[0, 0])
        total = 0
        for i in range(20_000):          # the Python-interpreter share
            total += i & 7
        acc += total
        a = np.roll(a, 1, axis=0)
    elapsed = time.perf_counter() - start
    if acc == float("inf"):              # keep the work observable
        raise ObservabilityError("calibration overflowed")
    return elapsed


def make_meta(source: str, scale: str, calibration_s: Optional[float] = None,
              note: Optional[str] = None, backfilled: bool = False) -> dict:
    """A point's ``meta`` block, stamped with the environment fingerprint."""
    meta = {"schema_version": SCHEMA_VERSION, "source": source, "scale": scale}
    meta.update(environment_fingerprint())
    meta["recorded_unix"] = round(time.time(), 3)
    if calibration_s is not None:
        meta["calibration_s"] = round(float(calibration_s), 6)
    if note:
        meta["note"] = str(note)
    if backfilled:
        meta["backfilled"] = True
    return meta


def new_trajectory() -> dict:
    return {"schema": SCHEMA, "schema_version": SCHEMA_VERSION, "points": []}


def validate_point(point: dict) -> dict:
    """Raise :class:`ObservabilityError` unless ``point`` fits the schema."""
    if not isinstance(point, dict):
        raise ObservabilityError("trajectory point must be an object")
    meta = point.get("meta")
    if not isinstance(meta, dict):
        raise ObservabilityError("trajectory point needs a meta block")
    for field in ("schema_version", "source", "scale", "version"):
        if field not in meta:
            raise ObservabilityError(
                "trajectory point meta is missing %r" % field)
    if meta["schema_version"] > SCHEMA_VERSION:
        raise ObservabilityError(
            "trajectory point schema_version %r is newer than this "
            "reader (%d)" % (meta["schema_version"], SCHEMA_VERSION))
    workloads = point.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        raise ObservabilityError("trajectory point needs non-empty workloads")
    for name, metrics in workloads.items():
        if not isinstance(metrics, dict):
            raise ObservabilityError(
                "workload %r must map metric names to numbers" % name)
        for metric, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ObservabilityError(
                    "workload %r metric %r is not a number (%r)"
                    % (name, metric, value))
    return point


def load_trajectory(path: str = TRAJECTORY_PATH) -> dict:
    """Load and validate a trajectory database."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ObservabilityError("cannot read trajectory %s: %s" % (path, exc))
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            "trajectory %s is not valid JSON: %s" % (path, exc))
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ObservabilityError(
            "%s is not a %s document" % (path, SCHEMA))
    if doc.get("schema_version", 0) > SCHEMA_VERSION:
        raise ObservabilityError(
            "trajectory %s has schema_version %r, newer than this reader"
            % (path, doc.get("schema_version")))
    points = doc.get("points")
    if not isinstance(points, list):
        raise ObservabilityError("trajectory %s needs a points list" % path)
    for point in points:
        validate_point(point)
    return doc


def append_point(path: str, point: dict) -> dict:
    """Append one validated point to the database at ``path``.

    Creates the file (empty trajectory) when missing; never mutates or
    reorders existing points — the database is append-only by
    construction.  Returns the written document.
    """
    validate_point(point)
    if os.path.exists(path):
        doc = load_trajectory(path)
    else:
        doc = new_trajectory()
    doc["points"].append(point)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def is_wall_metric(name: str) -> bool:
    """Whether a metric is a host wall-clock measurement (noisy) as
    opposed to a modeled/deterministic one — the gate normalizes the
    former by the calibration yardstick and drift-checks the latter."""
    return name == "wall_s" or name.endswith("_wall_s")


# ----------------------------------------------------------------------
# Legacy ingestion: BENCH_serve.json (the PR-5 fleet proof document)
# ----------------------------------------------------------------------

def normalize_bench_serve(path: str = "BENCH_serve.json") -> dict:
    """Normalize a ``BENCH_serve.json`` document into a trajectory point.

    The fleet-proof harness's legs map onto suite-compatible workload
    names (``table1_dse``, ``fleet_serve``, ``fleet_overload``) so
    ``repro perf report`` renders deltas between the PR-5 numbers and
    later suite runs.  Leg ``meta`` blocks (stamped by
    ``benchmarks/fleet_proof.py``) carry the provenance; documents
    predating the stamps are ingested with ``backfilled: true``.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ObservabilityError("cannot read %s: %s" % (path, exc))
    except json.JSONDecodeError as exc:
        raise ObservabilityError("%s is not valid JSON: %s" % (path, exc))
    legs = doc.get("legs")
    if not isinstance(legs, dict):
        raise ObservabilityError("%s has no legs to normalize" % path)

    # Provenance: prefer any leg's meta stamp, else backfill from the
    # document's top-level version.
    leg_meta = next(
        (leg["meta"] for leg in legs.values()
         if isinstance(leg, dict) and isinstance(leg.get("meta"), dict)),
        None)
    meta = make_meta(source="fleet_proof", scale="full",
                     backfilled=leg_meta is None)
    if leg_meta is not None:
        for field in ("schema_version", "version", "git_sha", "python",
                      "recorded_unix", "backfilled"):
            if field in leg_meta:
                meta[field] = leg_meta[field]
    elif "version" in doc:
        meta["version"] = doc["version"]

    workloads = {}
    table1 = legs.get("table1")
    if table1:
        workloads["table1_dse"] = {
            "wall_s": table1["wall_s"], "rows": table1["rows"]}
    proof = legs.get("proof")
    if proof:
        fleet = proof.get("fleet", {})
        workloads["fleet_serve"] = {
            "requests": proof["requests"],
            "replicas": proof["replicas"],
            "wall_s": fleet.get("wall_s", 0.0),
            "modeled_rps": fleet.get("modeled_rps", 0.0),
            "latency_p99_s": fleet.get("latency", {}).get("p99_s", 0.0),
            "affinity_hit_rate": fleet.get("affinity_hit_rate", 0.0),
            "shed": proof.get("shed", 0),
        }
        single = proof.get("single")
        if single:
            workloads["serve_engine"] = {
                "requests": proof["requests"],
                "wall_s": single.get("wall_s", 0.0),
                "throughput_rps": single.get("modeled_rps", 0.0),
                "latency_p99_s": single.get("latency", {}).get("p99_s", 0.0),
            }
    overload = legs.get("overload")
    if overload:
        workloads["fleet_overload"] = {
            "requests": overload["requests"],
            "shed_rate": overload.get("shed_rate", 0.0),
            "latency_p99_s": overload.get("latency_p99_s", 0.0),
            "sustained_rps": overload.get("sustained_rps", 0.0),
        }
    if not workloads:
        raise ObservabilityError("%s had no normalizable legs" % path)
    return validate_point({"meta": meta, "workloads": workloads})
