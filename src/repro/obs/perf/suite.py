"""The canonical perf-suite workloads feeding ``BENCH_trajectory.json``.

Four workloads, one per load-bearing subsystem, each at three scales
(``smoke`` for tests, ``ci`` for the gate job, ``full`` for checked-in
reference points):

* ``table1_dse`` — the design-space exploration sweep (the repo's
  long-standing host-side cost yardstick; ROADMAP item 1's ≥10x target
  is measured exactly here);
* ``serve_engine`` — a synthetic trace through one ``ServeEngine``
  (batching, plan cache, dispatch);
* ``fleet_serve`` — the same through a 4-replica ``FleetEngine``
  (routing, admission, SLO accounting);
* ``simulator`` — Algorithm 1 through the vectorized trace generator
  (:mod:`repro.gpu.fastsim`), historically the SIMT interpreter run
  block-by-block; the cost is byte-identical across that switch, so
  the modeled metrics form one continuous series.  The
  ``REPRO_SIM_HANDICAP`` injector still applies, and ``REPRO_AUDIT=1``
  re-runs the interpreted oracle as a cross-check.

Each workload returns a flat metric dict.  ``wall_s`` is the host
clock; everything else is modeled/deterministic (the gate relies on
that split — see :mod:`repro.obs.perf.trajectory`).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.errors import ObservabilityError
from repro.obs.instrument import instrument
from repro.obs.perf.trajectory import calibrate, make_meta, validate_point

__all__ = ["SCALES", "WORKLOADS", "run_workload", "run_suite"]

SCALES = ("smoke", "ci", "full")

#: Requests in the serving workloads per scale.
_SERVE_REQUESTS = {"smoke": 200, "ci": 2000, "full": 10_000}

#: Simulator image heights/widths per scale (output tiles the default
#: 64x4 special-case block exactly, keeping the interpreter audit-clean).
_SIM_IMAGE = {"smoke": (34, 66), "ci": (66, 130), "full": (130, 258)}


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ObservabilityError(
            "unknown suite scale %r; expected one of %s" % (scale, SCALES))
    return scale


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def _workload_table1(scale: str, jobs=None) -> Dict[str, float]:
    from repro.core.dse import (
        enumerate_general_configs, explore_general, reproduce_table1,
    )
    from repro.core.bankwidth import matched_vector
    from repro.gpu.arch import KEPLER_K40M

    start = time.perf_counter()
    if scale == "full":
        rows = reproduce_table1(jobs=jobs)
        wall_s = time.perf_counter() - start
        return {
            "wall_s": wall_s,
            "rows": len(rows),
            "ours_gflops_total": float(sum(r.ours_gflops for r in rows)),
        }
    # Reduced axes: the same ranking machinery over a pruned Table 1
    # space for one filter size — representative, quick, deterministic.
    n = matched_vector(KEPLER_K40M).n
    widths = (16, 32) if scale == "ci" else (16,)
    configs = enumerate_general_configs(
        3, n, KEPLER_K40M, widths=widths, heights=(2, 4),
        ftbs=(16, 32), wts=(4, 8), fts=(2, 4), cshs=(1, 2))
    ranked = explore_general(3, configs=configs, jobs=jobs)
    wall_s = time.perf_counter() - start
    if not ranked:
        raise ObservabilityError("table1_dse ranked no candidates")
    return {
        "wall_s": wall_s,
        "candidates": len(ranked),
        "best_gflops": float(ranked[0].gflops),
    }


def _workload_serve(scale: str, jobs=None) -> Dict[str, float]:
    from repro.obs.tracing import get_tracer
    from repro.serve import ServeEngine, synthetic_trace

    n = _SERVE_REQUESTS[scale]
    trace = synthetic_trace(n, seed=7)
    start = time.perf_counter()
    engine = ServeEngine(jobs=jobs, tracer=get_tracer())
    engine.serve_trace(trace)
    wall_s = time.perf_counter() - start
    snap = engine.stats()
    return {
        "wall_s": wall_s,
        "requests": n,
        "throughput_rps": snap["throughput_rps"],
        "latency_p99_s": snap["latency_p99_s"],
        "mean_batch_size": snap["mean_batch_size"],
        "plan_cache_hit_rate": snap["plan_cache"]["hit_rate"],
    }


def _workload_fleet(scale: str, jobs=None) -> Dict[str, float]:
    from repro.fleet import FleetConfig, FleetEngine
    from repro.obs.tracing import get_tracer
    from repro.serve import synthetic_trace

    n = _SERVE_REQUESTS[scale]
    trace = synthetic_trace(n, seed=7)
    start = time.perf_counter()
    fleet = FleetEngine(FleetConfig(replicas=4, jobs=jobs),
                        tracer=get_tracer())
    result = fleet.serve_trace(trace)
    wall_s = time.perf_counter() - start
    snap = fleet.stats()
    return {
        "wall_s": wall_s,
        "requests": n,
        "replicas": 4,
        "modeled_rps": snap["sustained_rps"],
        "latency_p99_s": snap["latency_p99_s"],
        "affinity_hit_rate": snap["router"]["affinity_hit_rate"],
        "shed": result.shed_count,
    }


def _workload_simulator(scale: str, jobs=None) -> Dict[str, float]:
    from repro.gpu.arch import KEPLER_K40M
    from repro.gpu.fastsim import FastSpecialKernel
    from repro.gpu.timing import TimingModel
    from repro.obs.metrics import Registry

    h, w = _SIM_IMAGE[scale]
    rng = np.random.default_rng(3)
    image = rng.standard_normal((h, w)).astype(np.float32)
    filters = rng.standard_normal((4, 3, 3)).astype(np.float32)
    # The vectorized trace generator produces a KernelCost byte-identical
    # to the interpreted executor's, so every modeled metric below is
    # unchanged from the interpreter era; REPRO_AUDIT=1 makes this
    # workload re-run the oracle and verify exactly that on every call.
    kernel = FastSpecialKernel()
    start = time.perf_counter()
    out, cost = kernel.run_traced(image, filters)
    wall_s = time.perf_counter() - start
    if out.shape != (4, h - 2, w - 2):
        raise ObservabilityError("simulator workload produced a bad shape")
    # Private registry: the evaluation is for this metric dict, not the
    # process-wide telemetry surface.
    breakdown = TimingModel(KEPLER_K40M, registry=Registry()).evaluate(cost)
    led = cost.ledger
    return {
        "wall_s": wall_s,
        "blocks": cost.launch.grid.count,
        "modeled_total_s": float(breakdown.total),
        "gmem_transactions": float(led.gmem_read_transactions
                                   + led.gmem_write_transactions),
        "smem_cycles": float(led.smem_cycles),
        "flops": float(led.flops),
    }


WORKLOADS = {
    "table1_dse": _workload_table1,
    "serve_engine": _workload_serve,
    "fleet_serve": _workload_fleet,
    "simulator": _workload_simulator,
}


def run_workload(name: str, scale: str = "ci", jobs=None) -> Dict[str, float]:
    """Run one canonical workload; returns its metric dict."""
    _check_scale(scale)
    if name not in WORKLOADS:
        raise ObservabilityError(
            "unknown workload %r; expected one of %s"
            % (name, sorted(WORKLOADS)))
    with instrument("perf.%s" % name, category="perf") as span:
        metrics = WORKLOADS[name](scale, jobs=jobs)
        span.annotate(scale=scale, **{
            k: v for k, v in metrics.items() if k == "wall_s"})
    return metrics


def run_suite(
    scale: str = "ci",
    jobs=None,
    note: Optional[str] = None,
    workloads: Optional[Sequence[str]] = None,
    progress: Optional[callable] = None,
) -> dict:
    """Run the canonical workloads and package one trajectory point.

    The point carries the environment fingerprint and the fixed-work
    calibration yardstick (measured first, before any workload warms or
    contends the machine).  ``progress`` (e.g. ``print``) receives one
    line per workload.
    """
    _check_scale(scale)
    names: Iterable[str] = workloads if workloads else sorted(WORKLOADS)
    calibration_s = calibrate()
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        if progress:
            progress("perf suite [%s]: %s ..." % (scale, name))
        results[name] = run_workload(name, scale=scale, jobs=jobs)
        if progress:
            progress("perf suite [%s]: %s done in %.3fs"
                     % (scale, name, results[name]["wall_s"]))
    point = {
        "meta": make_meta(source="perf_suite", scale=scale,
                          calibration_s=calibration_s, note=note),
        "workloads": {
            name: {k: round(float(v), 9) for k, v in metrics.items()}
            for name, metrics in results.items()
        },
    }
    return validate_point(point)
