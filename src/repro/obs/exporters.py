"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

* :func:`chrome_trace` renders a :class:`~repro.obs.tracing.Tracer`
  (and optionally a registry summary) as a Chrome trace-event JSON
  object loadable in Perfetto / ``chrome://tracing``.  Wall and virtual
  spans become two separate "processes" so host planning activity sits
  above the modeled device timeline; wall spans nest by depth onto
  thread tracks.
* :func:`to_prometheus` renders a :class:`~repro.obs.metrics.Registry`
  in the Prometheus text exposition format (version 0.0.4) —
  ``# HELP`` / ``# TYPE`` headers, escaped label values, and full
  ``_bucket``/``_sum``/``_count`` expansion for histograms.
* :func:`parse_prometheus` is the inverse used by the round-trip tests
  (and by anyone scraping a dump back into Python).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.tracing import Tracer, VIRTUAL_TRACK, WALL_TRACK

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "to_prometheus",
    "parse_prometheus",
    "registry_to_json",
]

#: Chrome trace "process" ids for the two clocks.
WALL_PID = 1
VIRTUAL_PID = 2


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------

def chrome_trace(tracer: Tracer, registry: Optional[Registry] = None,
                 profile: bool = False) -> dict:
    """Render the tracer's spans as a Chrome trace-event JSON object.

    With ``profile=True`` the document's ``otherData`` also carries a
    ``profile`` section — the deterministic span-fold attribution from
    :func:`repro.obs.perf.span_profile` (self/cumulative time per frame
    plus the aggregated stack table backing the flamegraph export).
    """
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": WALL_PID, "tid": 0,
         "args": {"name": "host (wall clock)"}},
        {"name": "process_name", "ph": "M", "pid": VIRTUAL_PID, "tid": 0,
         "args": {"name": "modeled GPU (virtual clock)"}},
    ]
    virtual_tids: Dict[str, int] = {}
    for span in tracer.spans:
        ts_us = span.start_s * 1e6
        dur_us = span.duration_s * 1e6
        if span.track == WALL_TRACK:
            pid, tid = WALL_PID, span.depth
        else:
            # One virtual thread-track per category keeps overlapping
            # modeled spans (queue window vs device busy) readable.
            tid = virtual_tids.setdefault(span.category, len(virtual_tids))
            pid = VIRTUAL_PID
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": ts_us,
            "dur": dur_us,
            "pid": pid,
            "tid": tid,
            "args": dict(span.args),
        })
    for category, tid in virtual_tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": VIRTUAL_PID,
            "tid": tid, "args": {"name": category},
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "dropped_spans": tracer.dropped},
    }
    if registry is not None:
        doc["otherData"]["metrics"] = registry.collect()
    if profile:
        from repro.obs.perf.profiler import span_profile

        doc["otherData"]["profile"] = span_profile(tracer)
    return doc


def write_chrome_trace(path: str, tracer: Tracer,
                       registry: Optional[Registry] = None,
                       profile: bool = False) -> dict:
    """Write the trace to ``path``; returns the document written."""
    doc = chrome_trace(tracer, registry=registry, profile=profile)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc: dict) -> None:
    """Raise :class:`ObservabilityError` unless ``doc`` is a loadable trace.

    Checks the subset of the trace-event schema the viewers actually
    require: a ``traceEvents`` list whose members carry a name, a known
    phase, and — for complete ("X") events — non-negative numeric
    ``ts``/``dur`` plus ``pid``/``tid``.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ObservabilityError("trace document needs a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError("traceEvents[%d] is not an object" % i)
        if not isinstance(event.get("name"), str):
            raise ObservabilityError("traceEvents[%d] has no name" % i)
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "I", "C"):
            raise ObservabilityError(
                "traceEvents[%d] has unknown phase %r" % (i, phase))
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0 \
                        or not math.isfinite(value):
                    raise ObservabilityError(
                        "traceEvents[%d].%s is not a non-negative number"
                        % (i, field))
            for field in ("pid", "tid"):
                if not isinstance(event.get(field), int):
                    raise ObservabilityError(
                        "traceEvents[%d].%s is not an int" % (i, field))
    json.dumps(doc)  # must be serializable end-to-end


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _unescape_label_value(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '%s="%s"' % (name, _escape_label_value(str(value)))
        for name, value in sorted(labels.items())
    )
    return "{%s}" % body


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def to_prometheus(registry: Registry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry:
        if metric.help:
            lines.append("# HELP %s %s"
                         % (metric.name, metric.help.replace("\n", " ")))
        lines.append("# TYPE %s %s" % (metric.name, metric.type_name))
        if isinstance(metric, Histogram):
            for labels, _ in metric.series():
                for bound, count in metric.cumulative_buckets(**labels):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append("%s_bucket%s %d" % (
                        metric.name, _format_labels(bucket_labels), count))
                lines.append("%s_sum%s %s" % (
                    metric.name, _format_labels(labels),
                    _format_value(metric.sum(**labels))))
                lines.append("%s_count%s %d" % (
                    metric.name, _format_labels(labels),
                    metric.count(**labels)))
        elif isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.series():
                lines.append("%s%s %s" % (
                    metric.name, _format_labels(labels),
                    _format_value(float(value))))
    return "\n".join(lines) + "\n"


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ObservabilityError("label value must be quoted: %r" % body)
        j = eq + 2
        raw = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                raw.append(body[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ObservabilityError("unterminated label value: %r" % body)
        labels[name] = _unescape_label_value("".join(raw))
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, sorted labels): value}``.

    Histogram ``_bucket``/``_sum``/``_count`` expansions parse as their
    literal sample names, which is exactly what the round-trip tests
    compare against.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name = line[:line.index("{")]
            rest = line[line.index("{") + 1:]
            close = rest.rindex("}")
            labels = _parse_labels(rest[:close])
            value_text = rest[close + 1:].strip()
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ObservabilityError("malformed sample line %r" % line)
            name, value_text = parts[0], parts[1]
            labels = {}
        value_text = value_text.split()[0]
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise ObservabilityError(
                    "malformed sample value in %r" % line) from exc
        samples[(name, tuple(sorted(labels.items())))] = value
    return samples


def registry_to_json(registry: Registry) -> dict:
    """The ``repro obs --format json`` document."""
    return {"version": 1, "metrics": registry.collect()}
