"""repro.obs — the unified telemetry layer.

One observability surface for the whole stack (see
docs/OBSERVABILITY.md for the metric-name catalog and span taxonomy):

* :mod:`~repro.obs.metrics` — process-wide **metrics registry** with
  labeled counters, gauges, and sample-retaining histograms; the
  serving engine, plan cache, batcher, GPU cost model, timing model,
  and design-space explorer all publish through it.
* :mod:`~repro.obs.tracing` — **span tracer** with coexisting wall and
  virtual (modeled GPU) clocks.
* :mod:`~repro.obs.exporters` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and Prometheus text exposition, plus parsers/
  validators for round-trip testing.
* :mod:`~repro.obs.instrument` — ``instrument()`` decorator/context
  manager for one-line span + histogram coverage of any code path.
* :mod:`~repro.obs.snapshot` — serializable registry/tracer snapshots
  and lossless merging, so :mod:`repro.parallel` workers report
  complete telemetry back to the parent process.

Quick start::

    from repro import obs
    from repro.serve import ServeEngine, synthetic_trace

    engine = ServeEngine(registry=obs.get_registry(),
                         tracer=obs.get_tracer())
    engine.serve_trace(synthetic_trace(50))
    print(obs.to_prometheus(obs.get_registry()))
    obs.write_chrome_trace("trace.json", obs.get_tracer())
"""

from repro.obs.exporters import (
    chrome_trace,
    parse_prometheus,
    registry_to_json,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.instrument import instrument
from repro.obs.snapshot import (
    SNAPSHOT_VERSION,
    merge_registry_snapshot,
    merge_tracer_snapshot,
    merge_worker_snapshot,
    registry_snapshot,
    tracer_snapshot,
    worker_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    Registry,
    get_registry,
    reset_registry,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    VIRTUAL_TRACK,
    WALL_TRACK,
    get_tracer,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "Registry",
    "get_registry",
    "set_registry",
    "reset_registry",
    "Span",
    "Tracer",
    "WALL_TRACK",
    "VIRTUAL_TRACK",
    "get_tracer",
    "set_tracer",
    "reset_tracer",
    "instrument",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "to_prometheus",
    "parse_prometheus",
    "registry_to_json",
    "SNAPSHOT_VERSION",
    "registry_snapshot",
    "merge_registry_snapshot",
    "tracer_snapshot",
    "merge_tracer_snapshot",
    "worker_snapshot",
    "merge_worker_snapshot",
]
