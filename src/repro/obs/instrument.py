"""``instrument()``: one-line wall-clock telemetry for any code path.

Usable both as a decorator and as a context manager::

    @instrument("dse.rank", category="dse")
    def _rank(...): ...

    with instrument("experiment.fig2", category="experiment"):
        build()

Each entry records a wall-track span on the tracer and an observation
in a ``<name>_seconds`` histogram (plus a ``<name>_calls_total``
counter) on the registry.  By default the process-wide tracer/registry
are resolved *at call time*, so tests that swap them see the
instrumentation land in the swapped-in objects.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional

from repro.obs.metrics import Registry, get_registry
from repro.obs.tracing import Tracer, get_tracer

__all__ = ["instrument"]


class instrument:
    """Decorator/context-manager producing a span + duration histogram."""

    def __init__(self, name: str, category: str = "function",
                 registry: Optional[Registry] = None,
                 tracer: Optional[Tracer] = None,
                 args: Optional[dict] = None):
        self.name = name
        self.category = category
        self._registry = registry
        self._tracer = tracer
        self.args = dict(args or {})
        self._span_cm = None
        self._start = 0.0

    # ------------------------------------------------------------------
    @property
    def registry(self) -> Registry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _metric_name(self) -> str:
        return self.name.replace(".", "_").replace("-", "_")

    def _record(self, seconds: float, error: bool) -> None:
        base = self._metric_name()
        registry = self.registry
        registry.counter(
            base + "_calls_total",
            help="Calls instrumented as %r" % self.name,
            labelnames=("status",),
        ).inc(status="error" if error else "ok")
        registry.histogram(
            base + "_seconds",
            help="Wall-clock duration of %r" % self.name,
        ).observe(seconds)

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "instrument":
        self._span_cm = self.tracer.span(
            self.name, category=self.category, args=self.args)
        self._span_args = self._span_cm.__enter__()
        self._start = time.perf_counter()
        return self

    def annotate(self, **kwargs) -> None:
        """Attach key/value annotations to the open span."""
        self._span_args.update(kwargs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = time.perf_counter() - self._start
        if exc_type is not None:
            self._span_args["error"] = exc_type.__name__
        self._record(seconds, error=exc_type is not None)
        self._span_cm.__exit__(exc_type, exc, tb)
        self._span_cm = None
        return False

    # ------------------------------------------------------------------
    # Decorator protocol
    # ------------------------------------------------------------------
    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with instrument(self.name, category=self.category,
                            registry=self._registry, tracer=self._tracer,
                            args=self.args):
                return func(*args, **kwargs)

        return wrapper
