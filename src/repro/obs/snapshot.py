"""Serializable telemetry snapshots for cross-process merging.

Worker processes (see :mod:`repro.parallel`) report through their own
process-local registry and tracer; when a chunk of work finishes, the
worker captures both as a plain-data snapshot (JSON/pickle-safe dicts
and lists, no live objects) and ships it back with the results.  The
parent then merges every snapshot into its live surface, so telemetry
stays complete under parallelism:

* **counters** merge by summation — the parent's post-merge totals
  equal what a serial run of the same work would have produced;
* **gauges** merge by last-write (a point-in-time value has no
  meaningful cross-process sum);
* **histograms** merge exactly in their scalar aggregates
  (``count``/``sum``/``min``/``max``) and approximately in their
  retained samples: the worker's retained samples are appended and
  re-decimated, so quantiles stay representative but are not
  bit-identical to a serial run once decimation has kicked in;
* **spans** are re-recorded verbatim with an optional time offset that
  places the worker's epoch-relative timestamps inside the parent's
  timeline.

The snapshot format is versioned (``"v": 1``) so trace artifacts
written by one build can be rejected loudly, not misread, by another.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
)
from repro.obs.tracing import Span, Tracer, get_tracer

__all__ = [
    "SNAPSHOT_VERSION",
    "registry_snapshot",
    "merge_registry_snapshot",
    "tracer_snapshot",
    "merge_tracer_snapshot",
    "worker_snapshot",
    "merge_worker_snapshot",
]

SNAPSHOT_VERSION = 1


def _check_version(snapshot: dict, kind: str) -> None:
    if not isinstance(snapshot, dict):
        raise ObservabilityError("%s snapshot must be a dict" % kind)
    version = snapshot.get("v")
    if version != SNAPSHOT_VERSION:
        raise ObservabilityError(
            "unsupported %s snapshot version %r (expected %d)"
            % (kind, version, SNAPSHOT_VERSION))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def registry_snapshot(registry: Optional[Registry] = None) -> dict:
    """Plain-data dump of every metric, lossless for merging.

    Unlike :meth:`Registry.collect` (the human/exporter surface), this
    retains histogram samples and decimation strides so the parent can
    reconstruct mergeable series.
    """
    registry = registry if registry is not None else get_registry()
    metrics = []
    for metric in registry:
        entry = {
            "name": metric.name,
            "type": metric.type_name,
            "help": metric.help,
            "labelnames": list(metric.labelnames),
            "series": [],
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            entry["max_samples"] = metric.max_samples
            for labels, data in metric.series():
                entry["series"].append({
                    "labels": labels,
                    "count": data.count,
                    "sum": data.sum,
                    "min": data.min if data.count else None,
                    "max": data.max if data.count else None,
                    "samples": list(data.samples),
                    "stride": data._stride,
                })
        else:
            for labels, value in metric.series():
                entry["series"].append({"labels": labels, "value": value})
        metrics.append(entry)
    return {"v": SNAPSHOT_VERSION, "metrics": metrics}


def merge_registry_snapshot(
    snapshot: dict, registry: Optional[Registry] = None
) -> Registry:
    """Fold a worker's registry snapshot into a live registry."""
    _check_version(snapshot, "registry")
    registry = registry if registry is not None else get_registry()
    for entry in snapshot.get("metrics", ()):
        kind = entry["type"]
        labelnames = tuple(entry.get("labelnames", ()))
        if kind == "counter":
            metric = registry.counter(entry["name"], entry.get("help", ""),
                                      labelnames=labelnames)
            for series in entry["series"]:
                if series["value"]:
                    metric.inc(series["value"], **series["labels"])
        elif kind == "gauge":
            metric = registry.gauge(entry["name"], entry.get("help", ""),
                                    labelnames=labelnames)
            for series in entry["series"]:
                metric.set(series["value"], **series["labels"])
        elif kind == "histogram":
            metric = registry.histogram(
                entry["name"], entry.get("help", ""), labelnames=labelnames,
                buckets=entry.get("buckets") or None,
                max_samples=entry.get("max_samples", 65536))
            for series in entry["series"]:
                if not series["count"]:
                    continue
                data = metric._get(series["labels"])
                data.count += series["count"]
                data.sum += series["sum"]
                data.min = min(data.min, series["min"])
                data.max = max(data.max, series["max"])
                data.samples.extend(float(v) for v in series["samples"])
                data._stride = max(data._stride, int(series["stride"]))
                while len(data.samples) > metric.max_samples:
                    data.samples = data.samples[::2]
                    data._stride *= 2
        else:
            raise ObservabilityError(
                "cannot merge metric %r of unknown type %r"
                % (entry.get("name"), kind))
    return registry


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

def tracer_snapshot(tracer: Optional[Tracer] = None) -> dict:
    """Plain-data dump of every recorded span."""
    tracer = tracer if tracer is not None else get_tracer()
    return {
        "v": SNAPSHOT_VERSION,
        "dropped": tracer.dropped,
        "spans": [
            {
                "name": span.name,
                "category": span.category,
                "track": span.track,
                "start_s": span.start_s,
                "duration_s": span.duration_s,
                "depth": span.depth,
                "args": dict(span.args),
            }
            for span in tracer.spans
        ],
    }


def merge_tracer_snapshot(
    snapshot: dict,
    tracer: Optional[Tracer] = None,
    offset_s: float = 0.0,
    extra_args: Optional[dict] = None,
) -> Tracer:
    """Re-record a worker's spans on a live tracer.

    ``offset_s`` shifts the worker's epoch-relative wall timestamps
    into the parent's timeline (callers typically pass the parent time
    at which the parallel region started).  Virtual-track spans are
    modeled timestamps and are never shifted.  ``extra_args`` (e.g.
    ``{"shard": 3}``) is stamped onto every merged span.
    """
    _check_version(snapshot, "tracer")
    tracer = tracer if tracer is not None else get_tracer()
    if not math.isfinite(offset_s):
        raise ObservabilityError("offset_s must be finite")
    for entry in snapshot.get("spans", ()):
        args = dict(entry.get("args", {}))
        if extra_args:
            args.update(extra_args)
        shift = offset_s if entry["track"] != "virtual" else 0.0
        tracer._record(Span(
            name=entry["name"],
            category=entry["category"],
            track=entry["track"],
            start_s=entry["start_s"] + shift,
            duration_s=entry["duration_s"],
            depth=entry.get("depth", 0),
            args=args,
        ))
    tracer.dropped += snapshot.get("dropped", 0)
    return tracer


# ----------------------------------------------------------------------
# Combined worker snapshot
# ----------------------------------------------------------------------

def worker_snapshot(
    registry: Optional[Registry] = None, tracer: Optional[Tracer] = None
) -> dict:
    """One shippable blob: the worker's registry and tracer together."""
    return {
        "v": SNAPSHOT_VERSION,
        "registry": registry_snapshot(registry),
        "tracer": tracer_snapshot(tracer),
    }


def merge_worker_snapshot(
    snapshot: dict,
    registry: Optional[Registry] = None,
    tracer: Optional[Tracer] = None,
    offset_s: float = 0.0,
    extra_args: Optional[dict] = None,
) -> None:
    """Merge a combined worker snapshot into the live surfaces."""
    _check_version(snapshot, "worker")
    merge_registry_snapshot(snapshot["registry"], registry=registry)
    merge_tracer_snapshot(snapshot["tracer"], tracer=tracer,
                          offset_s=offset_s, extra_args=extra_args)
