"""Process-wide metrics: counters, gauges, histograms with labeled series.

The registry is the single surface every layer of the stack reports
through — the serving engine's request/batch/latency series, the plan
cache's hit/miss counters, and the GPU cost model's transaction /
bank-conflict / cycle ledgers all become named, labeled metric series
that one ``repro obs`` call (or one exporter) can walk.

Design notes:

* A metric is *named* (``serve_requests_total``) and *labeled*
  (``backend="special"``); each distinct label-value combination is an
  independent series.  Label names are fixed at metric creation, in
  Prometheus style.
* Counters are monotonically non-decreasing floats (the cost model's
  transaction counts are fractional by design — they are expectations,
  not samples — so counters accept float increments).
* Histograms retain their raw observations (bounded by
  ``max_samples`` with deterministic decimation) so exact quantiles,
  exact value counts (the batch-size histogram), *and* cumulative
  Prometheus buckets all come from one series.
* Everything is JSON-serializable via :meth:`Registry.collect`.

A process-wide default registry is available through
:func:`get_registry` / :func:`set_registry` / :func:`reset_registry`;
engine-scoped components (one :class:`~repro.serve.engine.ServeEngine`
per test, say) can instead own a private :class:`Registry`.
"""

from __future__ import annotations

import math
import re
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "Registry",
    "get_registry",
    "set_registry",
    "reset_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default cumulative bucket bounds for exported histograms: log-spaced
#: from microseconds to seconds, wide enough for both modeled kernel
#: times and wall-clock phase times.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ObservabilityError("invalid metric name %r" % (name,))
    return name


class Metric:
    """Base: one named metric holding labeled series."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ObservabilityError("invalid label name %r" % (label,))
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._series: "OrderedDict[Tuple[str, ...], object]" = OrderedDict()

    # ------------------------------------------------------------------
    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        # Equal length plus every expected name present implies the
        # label-name sets match; checked this way (instead of building
        # two sets) because this runs on every counter increment of the
        # cost model's hot publishing path.
        names = self.labelnames
        if len(labels) == len(names):
            try:
                return tuple(str(labels[name]) for name in names)
            except KeyError:
                pass
        raise ObservabilityError(
            "metric %s takes labels %r, got %r"
            % (self.name, self.labelnames, tuple(sorted(labels))))

    def series(self) -> "List[Tuple[Dict[str, str], object]]":
        """Every (labels dict, series) pair, in creation order."""
        return [
            (dict(zip(self.labelnames, key)), data)
            for key, data in self._series.items()
        ]

    def clear(self) -> None:
        self._series.clear()

    def collect(self) -> dict:
        """JSON-serializable description of this metric and its series."""
        return {
            "name": self.name,
            "type": self.type_name,
            "help": self.help,
            "series": [
                {"labels": labels, "value": self._collect_series(data)}
                for labels, data in self.series()
            ],
        }

    def _collect_series(self, data):
        return data


class Counter(Metric):
    """Monotone accumulator (floats allowed: model counts are expectations)."""

    type_name = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ObservabilityError(
                "counter %s cannot decrease (inc %r)" % (self.name, value))
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def inc_key(self, key: Tuple[str, ...], value: float = 1.0) -> None:
        """Increment by a precomputed series key (label values in
        ``labelnames`` order).

        The hot-path twin of :meth:`inc` for publishers that emit many
        series per event with statically known label structure (the
        kernel-cost ledger mirror); it skips the kwargs dict and the
        per-call label-name validation.
        """
        if value < 0:
            raise ObservabilityError(
                "counter %s cannot decrease (inc %r)" % (self.name, value))
        if len(key) != len(self.labelnames):
            raise ObservabilityError(
                "metric %s takes labels %r, got key %r"
                % (self.name, self.labelnames, key))
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def total(self) -> float:
        """Sum over every labeled series."""
        return float(sum(self._series.values()))


class Gauge(Metric):
    """Point-in-time value (queue depth, cache occupancy)."""

    type_name = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels) -> None:
        self.inc(-value, **labels)

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))


class _HistogramSeries:
    """One labeled histogram series: raw samples + running aggregates."""

    __slots__ = ("samples", "sum", "count", "min", "max", "_stride", "_skip")

    def __init__(self):
        self.samples: List[float] = []
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._stride = 1      # deterministic decimation factor
        self._skip = 0

    def observe(self, value: float, max_samples: int) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        # Deterministic reservoir: when full, double the stride and keep
        # every other retained sample, then admit every stride-th new
        # observation.  Quantiles stay unbiased for smooth streams and
        # the whole thing is reproducible (no RNG).
        if self._skip:
            self._skip -= 1
            return
        self.samples.append(value)
        self._skip = self._stride - 1
        if len(self.samples) > max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2
            self._skip = self._stride - 1


class Histogram(Metric):
    """Distribution metric with exact-sample quantiles and value counts."""

    type_name = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None,
                 max_samples: int = 65536):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError("histogram buckets must be increasing")
        self.buckets: Tuple[float, ...] = bounds
        if max_samples < 2:
            raise ObservabilityError("max_samples must be at least 2")
        self.max_samples = max_samples

    # ------------------------------------------------------------------
    def _get(self, labels) -> _HistogramSeries:
        key = self._key(labels)
        data = self._series.get(key)
        if data is None:
            data = self._series[key] = _HistogramSeries()
        return data

    def observe(self, value: float, **labels) -> None:
        self._get(labels).observe(value, self.max_samples)

    # ------------------------------------------------------------------
    def count(self, **labels) -> int:
        key = self._key(labels)
        data = self._series.get(key)
        return data.count if data is not None else 0

    def observed_count(self, **labels) -> int:
        """Observations ever made on this series (alias of ``count``)."""
        return self.count(**labels)

    def sample_count(self, **labels) -> int:
        """Samples actually retained after deterministic decimation.

        Equal to ``observed_count`` until the reservoir fills; smaller
        afterwards — at which point every sample-derived statistic
        (quantiles, ``value_counts``) is an estimate, not an exact
        read.  See :meth:`is_estimated`.
        """
        key = self._key(labels)
        data = self._series.get(key)
        return len(data.samples) if data is not None else 0

    def is_estimated(self, **labels) -> bool:
        """True when quantiles are computed from a truncated reservoir.

        ``max_samples`` was exceeded, so ``percentile``/``value_counts``
        work from a decimated subset of the observations rather than
        every value seen.  Exporters surface this as ``estimated`` so a
        reader never mistakes a reservoir estimate for an exact p99.
        """
        key = self._key(labels)
        data = self._series.get(key)
        return data is not None and data.count != len(data.samples)

    def sum(self, **labels) -> float:
        key = self._key(labels)
        data = self._series.get(key)
        return data.sum if data is not None else 0.0

    def mean(self, **labels) -> float:
        key = self._key(labels)
        data = self._series.get(key)
        if data is None or not data.count:
            return 0.0
        return data.sum / data.count

    def max(self, **labels) -> float:
        key = self._key(labels)
        data = self._series.get(key)
        return data.max if data is not None and data.count else 0.0

    def percentile(self, q: float, **labels) -> float:
        """Linear-interpolated quantile of the retained samples.

        ``q`` is in percent (50 = median).  Returns 0.0 for an empty
        series, matching the stats surface's convention for means.
        """
        if not 0.0 <= q <= 100.0:
            raise ObservabilityError("percentile must be in [0, 100]")
        key = self._key(labels)
        data = self._series.get(key)
        if data is None:
            return 0.0
        return self._percentile_of(data, q)

    @staticmethod
    def _percentile_of(data: "_HistogramSeries", q: float) -> float:
        if not data.samples:
            return 0.0
        ordered = sorted(data.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def value_counts(self, **labels) -> Dict[float, int]:
        """Exact retained-sample counts per distinct value (batch sizes)."""
        key = self._key(labels)
        data = self._series.get(key)
        counts: Dict[float, int] = {}
        if data is not None:
            for value in data.samples:
                counts[value] = counts.get(value, 0) + 1
            if data._stride > 1:
                counts = {v: c * data._stride for v, c in counts.items()}
        return counts

    def cumulative_buckets(self, **labels) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        key = self._key(labels)
        data = self._series.get(key)
        out: List[Tuple[float, int]] = []
        samples = sorted(data.samples) if data is not None else []
        scale = data._stride if data is not None else 1
        i = 0
        for bound in self.buckets:
            while i < len(samples) and samples[i] <= bound:
                i += 1
            out.append((bound, i * scale))
        out.append((math.inf, (data.count if data is not None else 0)))
        return out

    def _collect_series(self, data: _HistogramSeries) -> dict:
        estimated = data.count != len(data.samples)
        out = {
            "count": data.count,
            "observed_count": data.count,
            "sample_count": len(data.samples),
            "estimated": estimated,
            "sum": data.sum,
            "min": data.min if data.count else 0.0,
            "max": data.max if data.count else 0.0,
        }
        if estimated:
            # Quantiles from a truncated reservoir are estimates; say so
            # next to the numbers a dashboard would read.
            out["quantiles"] = {
                "p50": self._percentile_of(data, 50.0),
                "p95": self._percentile_of(data, 95.0),
                "p99": self._percentile_of(data, 99.0),
            }
        return out


class Registry:
    """Named metric store with get-or-create accessors."""

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ObservabilityError(
                "metric %s already registered as %s"
                % (name, metric.type_name))
        if tuple(labelnames) != metric.labelnames:
            raise ObservabilityError(
                "metric %s already registered with labels %r"
                % (name, metric.labelnames))
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None,
                  max_samples: int = 65536) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets, max_samples=max_samples)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return list(self._metrics)

    def collect(self) -> List[dict]:
        """JSON-serializable dump of every metric (the ``repro obs`` body)."""
        return [metric.collect() for metric in self._metrics.values()]

    def clear(self) -> None:
        """Drop every metric (a fresh registry without replacing the object)."""
        self._metrics.clear()


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------

_global_registry = Registry()


def get_registry() -> Registry:
    """The process-wide default registry (CLI runs report through it)."""
    return _global_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the process-wide registry; returns the previous one."""
    global _global_registry
    if not isinstance(registry, Registry):
        raise ObservabilityError("set_registry needs a Registry")
    previous = _global_registry
    _global_registry = registry
    return previous


def reset_registry() -> Registry:
    """Replace the process-wide registry with a fresh one and return it."""
    global _global_registry
    _global_registry = Registry()
    return _global_registry
