"""Span tracing with coexisting wall and virtual clocks.

The simulator's interesting time axis is *modeled* device time (the
serving engine's virtual clock, the timing model's estimates), while
planning, design-space exploration, and the Python host all run in
*wall* time.  A :class:`Tracer` therefore keeps two tracks:

* ``wall`` — spans opened with the :meth:`Tracer.span` context manager
  are timed with ``time.perf_counter`` relative to the tracer's epoch,
  and nest naturally (the exporter lays them out on one thread track
  per nesting stack).
* ``virtual`` — spans recorded with explicit modeled timestamps via
  :meth:`Tracer.add_span` (e.g. a batch's queue window and its kernel's
  device occupancy), which may overlap arbitrarily.

Both tracks export to one Chrome trace-event file (see
:mod:`repro.obs.exporters`) as separate "processes", so Perfetto shows
host activity above the modeled device timeline.

A process-wide default tracer mirrors the metrics registry:
:func:`get_tracer` / :func:`set_tracer` / :func:`reset_tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ObservabilityError

__all__ = [
    "Span",
    "Tracer",
    "WALL_TRACK",
    "VIRTUAL_TRACK",
    "get_tracer",
    "set_tracer",
    "reset_tracer",
]

WALL_TRACK = "wall"
VIRTUAL_TRACK = "virtual"


@dataclass
class Span:
    """One completed span on either clock."""

    name: str
    category: str
    track: str                  # WALL_TRACK | VIRTUAL_TRACK
    start_s: float              # seconds since the tracer's epoch
    duration_s: float
    depth: int = 0              # wall-track nesting depth at open time
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class Tracer:
    """Bounded in-memory span buffer feeding the exporters."""

    def __init__(self, max_spans: int = 100_000):
        if max_spans < 1:
            raise ObservabilityError("max_spans must be positive")
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._depth = 0

    # ------------------------------------------------------------------
    def now_s(self) -> float:
        """Wall seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    @contextmanager
    def span(self, name: str, category: str = "default",
             args: Optional[dict] = None):
        """Wall-clock span context manager; yields the mutable args dict.

        The body may add result annotations (``d["hit"] = True``); they
        land in the exported span's ``args``.
        """
        span_args: Dict[str, object] = dict(args or {})
        start = self.now_s()
        depth = self._depth
        self._depth += 1
        try:
            yield span_args
        finally:
            self._depth -= 1
            self._record(Span(
                name=name, category=category, track=WALL_TRACK,
                start_s=start, duration_s=self.now_s() - start,
                depth=depth, args=span_args,
            ))

    def add_span(self, name: str, category: str, start_s: float,
                 duration_s: float, track: str = VIRTUAL_TRACK,
                 args: Optional[dict] = None, depth: int = 0) -> None:
        """Record a span with explicit timestamps (the virtual clock)."""
        if duration_s < 0:
            raise ObservabilityError("span duration cannot be negative")
        if track not in (WALL_TRACK, VIRTUAL_TRACK):
            raise ObservabilityError("unknown track %r" % (track,))
        self._record(Span(
            name=name, category=category, track=track,
            start_s=start_s, duration_s=duration_s,
            depth=depth, args=dict(args or {}),
        ))

    def instant(self, name: str, category: str = "default",
                track: str = WALL_TRACK, ts_s: Optional[float] = None,
                args: Optional[dict] = None) -> None:
        """Zero-duration marker (cache hits, flush decisions)."""
        ts = self.now_s() if ts_s is None else ts_s
        self.add_span(name, category, ts, 0.0, track=track, args=args)

    # ------------------------------------------------------------------
    def categories(self) -> Set[str]:
        return {span.category for span in self.spans}

    def by_category(self, category: str) -> List[Span]:
        return [span for span in self.spans if span.category == category]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# Process-wide default tracer
# ----------------------------------------------------------------------

_global_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (CLI runs trace through it)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _global_tracer
    if not isinstance(tracer, Tracer):
        raise ObservabilityError("set_tracer needs a Tracer")
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def reset_tracer() -> Tracer:
    """Replace the process-wide tracer with a fresh one and return it."""
    global _global_tracer
    _global_tracer = Tracer()
    return _global_tracer
