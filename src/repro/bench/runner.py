"""Experiment runner: evaluates kernels over workload sweeps and
collects comparable series, one row per x-axis position of a paper
figure.  Experiments serialize to CSV and JSON so downstream analysis
(plotting, regression tracking) does not have to re-run the models."""

from __future__ import annotations

import csv
import functools
import io
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.conv.workloads import WorkloadPoint
from repro.errors import ReproError
from repro.parallel import parallel_map

__all__ = ["ComparisonRow", "Experiment", "compare_on_sweep",
           "registry_kernels"]


@dataclass
class ComparisonRow:
    """One x-axis position: a label plus one value per compared method."""

    label: str
    values: Dict[str, float]

    def ratio(self, numerator: str, denominator: str) -> float:
        denom = self.values[denominator]
        if denom == 0:
            raise ReproError(
                "zero denominator %r for ratio %r/%r in row %r"
                % (denominator, numerator, denominator, self.label))
        return self.values[numerator] / denom


@dataclass
class Experiment:
    """A reproduced table or figure: labeled rows of method series."""

    exp_id: str                 # e.g. "fig7b"
    title: str
    unit: str                   # "GFlop/s", "ms", "cycles", ...
    columns: List[str]          # method names, display order
    rows: List[ComparisonRow] = field(default_factory=list)
    paper_expectation: str = ""
    notes: str = ""

    def add(self, label: str, values: Mapping[str, float]) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ReproError("row %r missing columns %s" % (label, missing))
        self.rows.append(ComparisonRow(label=label, values=dict(values)))

    def series(self, column: str) -> List[float]:
        return [row.values[column] for row in self.rows]

    def ratios(self, numerator: str, denominator: str) -> List[float]:
        return [row.ratio(numerator, denominator) for row in self.rows]

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        ratios = self.ratios(numerator, denominator)
        return sum(ratios) / len(ratios)

    # --- serialization -------------------------------------------------
    def to_csv(self) -> str:
        """CSV with a header row: workload, then one column per method.

        Line terminator is pinned to ``"\\n"`` — ``csv.writer`` defaults
        to ``"\\r\\n"`` everywhere, which makes committed CSV artifacts
        diff noisily across OSes and CI runners.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(["workload"] + self.columns)
        for row in self.rows:
            writer.writerow([row.label] + [row.values[c] for c in self.columns])
        return buf.getvalue()

    def to_json(self) -> str:
        """Self-describing JSON (metadata + rows)."""
        return json.dumps({
            "exp_id": self.exp_id,
            "title": self.title,
            "unit": self.unit,
            "paper_expectation": self.paper_expectation,
            "notes": self.notes,
            "columns": self.columns,
            "rows": [
                {"label": r.label, "values": r.values} for r in self.rows
            ],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Experiment":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        exp = cls(
            exp_id=data["exp_id"], title=data["title"], unit=data["unit"],
            columns=list(data["columns"]),
            paper_expectation=data.get("paper_expectation", ""),
            notes=data.get("notes", ""),
        )
        for row in data["rows"]:
            exp.add(row["label"], row["values"])
        return exp


def registry_kernels(
    problem=None,
    arch=None,
    names: Optional[Sequence[str]] = None,
    registry=None,
) -> Dict[str, object]:
    """Default-configuration kernels from the backend registry, keyed by
    backend name — the registry-driven way to assemble a
    :func:`compare_on_sweep` portfolio.

    ``names`` restricts (and orders) the portfolio; the default is every
    registered backend.  When ``problem`` is given, backends that do not
    ``supports(problem, arch)`` are silently dropped, so a sweep over a
    multi-channel workload simply omits the special-case kernel instead
    of failing.
    """
    from repro.gpu.arch import KEPLER_K40M
    from repro.kernels import default_registry

    registry = registry if registry is not None else default_registry()
    arch = arch if arch is not None else KEPLER_K40M
    kernels: Dict[str, object] = {}
    for name in (registry.names() if names is None else names):
        backend = registry.get(name)
        if problem is not None and not backend.supports(problem, arch):
            continue
        kernels[name] = backend.build(problem, arch)
    return kernels


def _gflops_metric(kernel, problem) -> float:
    """Default sweep metric (module-level so workers can pickle it)."""
    return kernel.gflops(problem)


def _sweep_row(kernels: Dict[str, object], metric: Callable,
               point: WorkloadPoint) -> ComparisonRow:
    """Evaluate every kernel on one sweep point."""
    values = {
        name: metric(kernel, point.problem) for name, kernel in kernels.items()
    }
    return ComparisonRow(label=point.label, values=values)


def compare_on_sweep(
    kernels: Mapping[str, object],
    points: Sequence[WorkloadPoint],
    metric: Optional[Callable] = None,
    jobs: Optional[Union[int, str]] = None,
) -> List[ComparisonRow]:
    """Evaluate every kernel on every sweep point.

    ``metric`` defaults to the kernel's modeled GFlop/s (normalized by
    the nominal operation count, as the paper reports).  ``jobs`` fans
    the points out over worker processes (``None`` honors the
    ``REPRO_JOBS`` environment variable); rows come back in sweep order
    and are identical to the serial result for any degree.  An
    unpicklable ``metric`` (a lambda, say) quietly stays serial.
    """
    metric = metric or _gflops_metric
    evaluate = functools.partial(_sweep_row, dict(kernels), metric)
    return parallel_map(evaluate, points, jobs=jobs)
