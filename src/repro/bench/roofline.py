"""Roofline analysis for traced kernels.

Places each kernel/problem pair on the classic roofline: x = arithmetic
intensity (flops per DRAM byte actually moved), y = achieved GFlop/s
(modeled), against the machine's memory-bandwidth slope and compute
ceiling.  The paper's story reads off directly: the naive kernel sits
far down the memory slope, the optimized direct kernels run within ~15%
of the compute roof, and the cuDNN-like baseline trails them through
overlap and shared-memory losses the roofline cannot see (its DRAM
traffic is L2-filtered) — which is exactly why the paper argues about
shared-memory bandwidth rather than DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.conv.tensors import ConvProblem
from repro.gpu.arch import GPUArchitecture
from repro.gpu.timing import TimingModel

__all__ = ["RooflinePoint", "roofline_point", "roofline_report"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/problem pair on the roofline."""

    name: str
    intensity: float            # flops per DRAM byte moved
    achieved_gflops: float      # modeled, at the nominal flop count
    roof_gflops: float          # min(compute roof, intensity * bandwidth)
    bound: str                  # 'memory' or 'compute' side of the ridge

    @property
    def roof_fraction(self) -> float:
        """How close the kernel runs to its own roof."""
        return self.achieved_gflops / self.roof_gflops if self.roof_gflops else 0.0


def _roofs(arch: GPUArchitecture, model: TimingModel) -> Tuple[float, float]:
    compute_roof = arch.peak_sp_gflops * model.compute_efficiency
    bandwidth = arch.sustained_gmem_bandwidth_gbs
    return compute_roof, bandwidth


def roofline_point(kernel, problem: ConvProblem,
                   model: Optional[TimingModel] = None) -> RooflinePoint:
    """Compute a kernel's roofline coordinates for one problem."""
    model = model or TimingModel(kernel.arch)
    cost = kernel.cost(problem)
    breakdown = model.evaluate(cost)
    led = cost.ledger
    intensity = led.arithmetic_intensity
    compute_roof, bandwidth = _roofs(kernel.arch, model)
    # The roof is stated in *nominal* flops: scale the executed-flop
    # roof down by any overcompute the kernel performs.
    nominal_scale = problem.flops / led.flops if led.flops else 1.0
    roof = min(compute_roof, intensity * bandwidth) * nominal_scale
    nominal_intensity = intensity * nominal_scale
    return RooflinePoint(
        name=kernel.name,
        intensity=nominal_intensity,
        achieved_gflops=breakdown.gflops(problem.flops),
        roof_gflops=roof,
        bound="compute" if intensity * bandwidth >= compute_roof else "memory",
    )


def roofline_report(kernels: dict, problem: ConvProblem,
                    model: Optional[TimingModel] = None) -> str:
    """Plain-text roofline table for several kernels on one problem."""
    points: List[Tuple[str, RooflinePoint]] = []
    arch = None
    for label, kernel in kernels.items():
        points.append((label, roofline_point(kernel, problem, model)))
        arch = kernel.arch
    mdl = model or TimingModel(arch)
    compute_roof, bandwidth = _roofs(arch, mdl)

    lines = []
    lines.append(
        "roofline on %s: compute roof %.0f GFlop/s, DRAM %.0f GB/s (ridge "
        "at %.1f flops/B)"
        % (arch.name, compute_roof, bandwidth, compute_roof / bandwidth)
    )
    header = "%-14s %14s %12s %12s %8s %8s" % (
        "kernel", "flops/B (nom.)", "achieved", "roof", "of roof", "bound")
    lines.append(header)
    lines.append("-" * len(header))
    for label, pt in points:
        lines.append(
            "%-14s %14.2f %12.1f %12.1f %7.0f%% %8s"
            % (label, pt.intensity, pt.achieved_gflops, pt.roof_gflops,
               100 * pt.roof_fraction, pt.bound)
        )
    return "\n".join(lines)
