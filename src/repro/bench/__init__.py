"""Benchmark harness: experiment definitions for every table and figure
in the paper's evaluation, a runner that evaluates kernels on the
workload sweeps, and plain-text reporting."""

from repro.bench.runner import ComparisonRow, Experiment, compare_on_sweep
from repro.bench.figures import (
    fig1_bank_patterns,
    fig2_gemm,
    fig7_special,
    fig8_general,
    table1,
    ALL_EXPERIMENTS,
)
from repro.bench.report import format_experiment, summarize_ratio

__all__ = [
    "ComparisonRow",
    "Experiment",
    "compare_on_sweep",
    "fig1_bank_patterns",
    "fig2_gemm",
    "fig7_special",
    "fig8_general",
    "table1",
    "ALL_EXPERIMENTS",
    "format_experiment",
    "summarize_ratio",
]
