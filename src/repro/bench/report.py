"""Plain-text reporting for reproduced experiments: aligned tables and
paper-versus-measured summaries (the content of EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Optional

from repro.bench.runner import Experiment

__all__ = [
    "format_experiment",
    "format_experiment_markdown",
    "summarize_ratio",
    "summary_record",
    "format_summary_line",
]


def format_experiment_markdown(exp: Experiment, precision: int = 1) -> str:
    """Render an experiment as a GitHub-flavoured markdown table."""
    lines = []
    lines.append("### %s — %s [%s]" % (exp.exp_id, exp.title, exp.unit))
    if exp.paper_expectation:
        lines.append("")
        lines.append("*paper:* %s" % exp.paper_expectation)
    lines.append("")
    lines.append("| workload | " + " | ".join(exp.columns) + " |")
    lines.append("|" + "---|" * (len(exp.columns) + 1))
    for row in exp.rows:
        cells = ["%.*f" % (precision, row.values[c]) for c in exp.columns]
        lines.append("| %s | %s |" % (row.label, " | ".join(cells)))
    if exp.notes:
        lines.append("")
        lines.append("*note:* %s" % exp.notes)
    return "\n".join(lines)


def format_experiment(exp: Experiment, precision: int = 1) -> str:
    """Render an experiment as an aligned plain-text table."""
    label_w = max([len("workload")] + [len(r.label) for r in exp.rows])
    col_ws = {
        c: max(len(c), precision + 7) for c in exp.columns
    }
    lines = []
    lines.append("%s — %s [%s]" % (exp.exp_id, exp.title, exp.unit))
    if exp.paper_expectation:
        lines.append("paper: %s" % exp.paper_expectation)
    header = "  ".join(
        ["workload".ljust(label_w)] + [c.rjust(col_ws[c]) for c in exp.columns]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in exp.rows:
        cells = [row.label.ljust(label_w)]
        for c in exp.columns:
            cells.append(("%.*f" % (precision, row.values[c])).rjust(col_ws[c]))
        lines.append("  ".join(cells))
    if exp.notes:
        lines.append("note: %s" % exp.notes)
    return "\n".join(lines)


def summarize_ratio(
    exp: Experiment, numerator: str, denominator: str
) -> dict:
    """Mean/min/max of a method ratio across an experiment's rows."""
    ratios = exp.ratios(numerator, denominator)
    return {
        "mean": sum(ratios) / len(ratios),
        "min": min(ratios),
        "max": max(ratios),
        "n": len(ratios),
    }


def summary_record(
    exp: Experiment,
    numerator: str,
    denominator: str,
    paper_value: Optional[str] = None,
) -> dict:
    """Machine-readable paper-vs-measured record for one experiment.

    This is the JSON twin of :func:`format_summary_line`; the CLI's
    ``summary --json`` emits a list of these.
    """
    s = summarize_ratio(exp, numerator, denominator)
    return {
        "exp_id": exp.exp_id,
        "title": exp.title,
        "numerator": numerator,
        "denominator": denominator,
        "mean_ratio": s["mean"],
        "min_ratio": s["min"],
        "max_ratio": s["max"],
        "n": s["n"],
        "paper": paper_value,
    }


def format_summary_line(
    exp: Experiment,
    numerator: str,
    denominator: str,
    paper_value: Optional[str] = None,
) -> str:
    """One-line measured-vs-paper summary for an experiment."""
    s = summarize_ratio(exp, numerator, denominator)
    line = "%s: %s / %s = %.2fx mean (min %.2f, max %.2f, n=%d)" % (
        exp.exp_id, numerator, denominator, s["mean"], s["min"], s["max"], s["n"]
    )
    if paper_value:
        line += "  [paper: %s]" % paper_value
    return line
