"""Experiment definitions: one builder per table/figure of the paper,
plus the ablations DESIGN.md calls out.

Every builder returns an :class:`~repro.bench.runner.Experiment` whose
rows are regenerated from the library (never hard-coded numbers), with
``paper_expectation`` recording what the paper reports for the same
experiment.  ``ALL_EXPERIMENTS`` maps experiment ids to builders for the
benchmark suite and the CLI-style examples.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.gemm import (
    GemmShape,
    cublas_like_gemm,
    magma_fermi_gemm,
    magma_matched_gemm,
)
from repro.bench.runner import Experiment, compare_on_sweep, registry_kernels
from repro.conv.tensors import ConvProblem
from repro.conv.workloads import (
    gemm_sweep_dims,
    general_case_sweep,
    special_case_sweep,
    vgg_layers,
)
from repro.core.bankwidth import (
    conventional_pattern,
    matched_pattern,
    smem_bandwidth_gain,
)
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel
from repro.gpu.arch import KEPLER_K40M, PASCAL_P100, GPUArchitecture
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel
from repro.gpu.simt import Dim3
from repro.gpu.timing import TimingModel
from repro.kernels import default_registry

__all__ = [
    "fig1_bank_patterns",
    "fig2_gemm",
    "fig7_special",
    "fig8_general",
    "table1",
    "ablation_unmatched",
    "ablation_bank_policy",
    "ablation_writeback",
    "ablation_prefetch",
    "ablation_thread_layout",
    "extension_short_dtypes",
    "extension_all_methods",
    "extension_fp16_conv",
    "extension_backend_portfolio",
    "ablation_adaptive_config",
    "extension_stencil",
    "extension_training",
    "extension_fft_batch",
    "extension_arch_port",
    "ALL_EXPERIMENTS",
]


# ----------------------------------------------------------------------
# Fig. 1 — bank access patterns
# ----------------------------------------------------------------------

def fig1_bank_patterns(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Conventional vs matched shared-memory access (paper Fig. 1)."""
    exp = Experiment(
        exp_id="fig1",
        title="SM access patterns on %s (per-warp cycles, equal data)" % arch.name,
        unit="cycles",
        columns=["conventional", "matched"],
        paper_expectation="matched pattern doubles SM bandwidth when n=2",
    )
    for policy in (BankConflictPolicy.PAPER, BankConflictPolicy.WORD_MERGE):
        model = SharedMemoryModel(arch, policy)
        warp = arch.warp_size
        # Fig. 1 framing: the same `warp` elements covered both ways.
        conv = model.access(conventional_pattern(warp, 4), 4)
        n = max(1, arch.smem_bank_width // 4)
        mat = model.access(matched_pattern(warp // n, 4, n), 4 * n) if n > 1 else conv
        exp.add(
            "policy=%s" % policy.value,
            {"conventional": float(conv.cycles), "matched": float(mat.cycles)},
        )
    exp.notes = (
        "kernel-framing bandwidth gain: %.2fx (word-merge), %.2fx (paper policy)"
        % (
            smem_bandwidth_gain(arch, 4, policy=BankConflictPolicy.WORD_MERGE),
            smem_bandwidth_gain(arch, 4, policy=BankConflictPolicy.PAPER,
                                framing="fig1"),
        )
    )
    return exp


# ----------------------------------------------------------------------
# Fig. 2 — SGEMM: cuBLAS vs MAGMA vs MAGMA-modified
# ----------------------------------------------------------------------

def fig2_gemm(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Single-precision GEMM execution time (paper Fig. 2)."""
    kernels = {
        "cuBLAS": cublas_like_gemm(arch),
        "MAGMA": magma_fermi_gemm(arch),
        "MAGMA mod.": magma_matched_gemm(arch),
    }
    exp = Experiment(
        exp_id="fig2",
        title="SGEMM execution time on %s" % arch.name,
        unit="ms",
        columns=list(kernels),
        paper_expectation=(
            "MAGMA 2.4x slower than cuBLAS on Kepler; the bank-width "
            "modification saves 36% of MAGMA's time"
        ),
    )
    for dim in gemm_sweep_dims():
        shape = GemmShape.square(dim)
        exp.add(
            "%dK" % (dim // 1024),
            {name: kern.time_ms(shape) for name, kern in kernels.items()},
        )
    return exp


# ----------------------------------------------------------------------
# Fig. 7 — special case vs cuDNN-like
# ----------------------------------------------------------------------

_PAPER_FIG7 = {1: "6.16x average gain", 3: "6.43x average gain; unmatched "
               "kernel 19% slower", 5: "2.90x average gain"}


def fig7_special(kernel_size: int,
                 arch: GPUArchitecture = KEPLER_K40M,
                 jobs: Optional[Union[int, str]] = None) -> Experiment:
    """Special-case convolution performance (paper Fig. 7a/b/c)."""
    registry = default_registry()
    kernels: Dict[str, object] = {
        "cuDNN": registry.get("implicit-gemm").build(None, arch),
        "ours": registry.get("special").build(None, arch),
    }
    if kernel_size == 3:
        kernels["unmatched"] = registry.get("special").build(
            None, arch, matched=False)
    sub = {1: "a", 3: "b", 5: "c"}[kernel_size]
    exp = Experiment(
        exp_id="fig7%s" % sub,
        title="Special case (C=1), %dx%d filter" % (kernel_size, kernel_size),
        unit="GFlop/s",
        columns=list(kernels),
        paper_expectation=_PAPER_FIG7[kernel_size],
    )
    exp.rows = compare_on_sweep(kernels, special_case_sweep(kernel_size),
                                jobs=jobs)
    return exp


# ----------------------------------------------------------------------
# Fig. 8 — general case vs cuDNN-like
# ----------------------------------------------------------------------

_PAPER_FIG8 = {3: "30.5% average improvement", 5: "45.3% average improvement",
               7: "30.8% average improvement"}


def fig8_general(kernel_size: int,
                 arch: GPUArchitecture = KEPLER_K40M,
                 jobs: Optional[Union[int, str]] = None) -> Experiment:
    """General-case convolution performance (paper Fig. 8a/b/c)."""
    registry = default_registry()
    kernels = {
        "cuDNN": registry.get("implicit-gemm").build(None, arch),
        "ours": registry.get("general").build(None, arch),
    }
    sub = {3: "a", 5: "b", 7: "c"}[kernel_size]
    exp = Experiment(
        exp_id="fig8%s" % sub,
        title="General case, %dx%d filter" % (kernel_size, kernel_size),
        unit="GFlop/s",
        columns=list(kernels),
        paper_expectation=_PAPER_FIG8[kernel_size] + "; may lose only at 32x32",
    )
    exp.rows = compare_on_sweep(kernels, general_case_sweep(kernel_size),
                                jobs=jobs)
    return exp


# ----------------------------------------------------------------------
# Table 1 — best general-case configurations by exploration
# ----------------------------------------------------------------------

def table1(arch: GPUArchitecture = KEPLER_K40M,
           jobs: Optional[Union[int, str]] = None) -> Experiment:
    """Design-space exploration versus the paper's Table 1."""
    from repro.core.dse import default_general_problem, reproduce_table1

    exp = Experiment(
        exp_id="table1",
        title="Best general-case configurations (predicted GFlop/s)",
        unit="GFlop/s",
        columns=["paper config", "explored best"],
        paper_expectation=(
            "K=3: W32 H4 FTB64 WT16 FT4 CSH2; K=5: W32 H8 FTB32 WT8 FT8 "
            "CSH1; K=7: W64 H4 FTB32 WT8 FT8 CSH1"
        ),
    )
    notes = []
    for row in reproduce_table1(arch, jobs=jobs):
        exp.add(
            "K=%d" % row.kernel_size,
            {"paper config": row.paper_gflops, "explored best": row.ours_gflops},
        )
        c = row.ours
        notes.append(
            "K=%d explored: W%d H%d FTB%d WT%d FT%d CSH%d"
            % (row.kernel_size, c.w, c.h, c.ftb, c.wt, c.ft, c.csh)
        )
    exp.notes = "; ".join(notes)
    return exp


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

def ablation_unmatched(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Matched vs unmatched W_CD for both kernels (Sec. 5.1 prediction:
    the general case degrades more, since SM holds image and filters)."""
    exp = Experiment(
        exp_id="ablation-unmatched",
        title="Cost of ignoring the bank-width model",
        unit="GFlop/s",
        columns=["matched", "unmatched"],
        paper_expectation="special case loses 19%; general case loses more",
    )
    sp = ConvProblem.square(2048, 3, channels=1, filters=32)
    exp.add("special 3x3", {
        "matched": SpecialCaseKernel(arch).gflops(sp),
        "unmatched": SpecialCaseKernel(arch, matched=False).gflops(sp),
    })
    gp = ConvProblem.square(128, 3, channels=64, filters=128)
    exp.add("general 3x3", {
        "matched": GeneralCaseKernel(arch).gflops(gp),
        "unmatched": GeneralCaseKernel(arch, matched=False).gflops(gp),
    })
    return exp


def ablation_bank_policy(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """The paper's serialize-on-same-bank model vs hardware word-merge.

    Reported as serialized cycles per shared-memory warp request (1.0 =
    conflict-free): the end-to-end time of the gmem-bound special kernel
    hides the difference, but the bank model sees it directly.
    """
    exp = Experiment(
        exp_id="ablation-bank-policy",
        title="SM cycles per warp request under the two conflict policies",
        unit="cycles/request",
        columns=["word-merge", "paper-policy"],
        paper_expectation=(
            "the paper's stricter model serializes unmatched same-bank "
            "accesses (2 cycles); hardware merges them into one word "
            "delivery (1 cycle at half utilization)"
        ),
    )
    p = ConvProblem.square(2048, 3, channels=1, filters=32)
    for matched, label in ((True, "matched"), (False, "unmatched")):
        exp.add(label, {
            "word-merge": SpecialCaseKernel(
                arch, matched=matched,
                bank_policy=BankConflictPolicy.WORD_MERGE,
            ).cost(p).ledger.smem_conflict_overhead,
            "paper-policy": SpecialCaseKernel(
                arch, matched=matched,
                bank_policy=BankConflictPolicy.PAPER,
            ).cost(p).ledger.smem_conflict_overhead,
        })
    return exp


def ablation_writeback(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Sec. 4.2: 'the writing back phase consumes very little time'."""
    exp = Experiment(
        exp_id="ablation-writeback",
        title="Uncoalesced writeback share of general-case execution time",
        unit="%",
        columns=["write share"],
        paper_expectation="small enough to leave unoptimized",
    )
    kernel = GeneralCaseKernel(arch)
    model = TimingModel(arch)
    for k in (3, 5, 7):
        p = ConvProblem.square(128, k, channels=64, filters=128)
        cost = kernel.cost(p)
        led = cost.ledger
        total = model.evaluate(cost).total
        t_wb = led.gmem_write_bytes_moved / (
            arch.sustained_gmem_bandwidth_gbs * 1e9
        )
        exp.add("K=%d" % k, {"write share": 100.0 * t_wb / total})
    return exp


def ablation_prefetch(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Software prefetching on/off (Algorithms 1-2's overlap mechanism)."""
    exp = Experiment(
        exp_id="ablation-prefetch",
        title="Effect of software prefetching on modeled time",
        unit="GFlop/s",
        columns=["prefetch", "no prefetch"],
        paper_expectation="prefetching overlaps GM loads with compute",
    )
    from repro.core.config import GeneralCaseConfig

    model = TimingModel(arch)
    # A CSH=4 variant needs 20+ KB of shared memory per block, capping
    # residency at ~8 warps/SM — the regime where prefetching matters.
    low_occ = GeneralCaseConfig(w=32, h=8, ftb=32, wt=8, ft=8, csh=4)
    cases = [
        ("special 3x3", SpecialCaseKernel(arch),
         ConvProblem.square(2048, 3, channels=1, filters=32)),
        ("general 3x3", GeneralCaseKernel(arch),
         ConvProblem.square(128, 3, channels=64, filters=128)),
        ("general 5x5 low-occupancy", GeneralCaseKernel(arch, config=low_occ),
         ConvProblem.square(128, 5, channels=64, filters=128)),
    ]
    for label, kernel, problem in cases:
        cost = kernel.cost(problem)
        without = dataclasses.replace(cost, software_prefetch=False)
        exp.add(label, {
            "prefetch": model.evaluate(cost).gflops(problem.flops),
            "no prefetch": model.evaluate(without).gflops(problem.flops),
        })
    return exp


def ablation_thread_layout(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Contiguous output pixels per thread vs blocked-GEMM layout:
    the SM image-traffic factor (W_T + K - 1)/(W_T * K) of Sec. 4.2."""
    from repro.core.analysis import sm_image_traffic_ratio
    from repro.core.config import TABLE1_CONFIGS

    exp = Experiment(
        exp_id="ablation-thread-layout",
        title="SM image traffic relative to GEMM-style layout",
        unit="ratio",
        columns=["(WT+K-1)/(WT*K)"],
        paper_expectation="well below 1: one register row feeds K rounds",
    )
    for k, cfg in sorted(TABLE1_CONFIGS.items()):
        exp.add("K=%d (WT=%d)" % (k, cfg.wt),
                {"(WT+K-1)/(WT*K)": sm_image_traffic_ratio(cfg, k)})
    return exp


# ----------------------------------------------------------------------
# Extensions (paper Sec. 6 future work)
# ----------------------------------------------------------------------

def extension_short_dtypes() -> Experiment:
    """Sec. 6: short data types are mismatched even on 4-byte banks."""
    from repro.gpu.arch import MAXWELL_GM204

    exp = Experiment(
        exp_id="ext-short-dtypes",
        title="Matched-access bandwidth gain by data type (kernel framing)",
        unit="x",
        columns=["Kepler K40m", "Maxwell GM204"],
        paper_expectation=(
            "fp16/int8 benefit from the model on 4-byte-bank devices too"
        ),
    )
    for width, label in ((4, "float"), (2, "half"), (1, "char")):
        exp.add(label, {
            "Kepler K40m": smem_bandwidth_gain(KEPLER_K40M, width),
            "Maxwell GM204": smem_bandwidth_gain(MAXWELL_GM204, width),
        })
    return exp


def extension_all_methods(arch: GPUArchitecture = KEPLER_K40M,
                          jobs: Optional[Union[int, str]] = None) -> Experiment:
    """All convolution methods on VGG-like layers (related-work context:
    FFT and Winograd win only in their niches; direct stays general)."""
    display = {"general": "ours", "implicit-gemm": "cuDNN-like",
               "im2col": "im2col", "naive": "naive", "fft": "FFT",
               "winograd": "Winograd"}
    built = registry_kernels(arch=arch, names=tuple(display))
    kernels = {display[name]: kernel for name, kernel in built.items()}
    exp = Experiment(
        exp_id="ext-all-methods",
        title="Every implemented method on VGG-like 3x3 layers",
        unit="GFlop/s (direct-method flops)",
        columns=list(kernels),
        paper_expectation="direct (ours) competitive everywhere; FFT pays "
        "padded-filter transforms at batch 1; Winograd strong on 3x3",
    )
    exp.rows = compare_on_sweep(kernels, vgg_layers(), jobs=jobs)
    return exp


def extension_fp16_conv(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Sec. 6 end-to-end: the special-case kernel on short data types.

    With half/char elements the mismatch factor doubles/quadruples, and
    so does the cost of ignoring the model: the matched kernel scales
    with the smaller elements while the unmatched one barely moves.
    """
    from repro.core.bankwidth import DataType

    exp = Experiment(
        exp_id="ext-dtype-conv",
        title="Special-case 3x3 convolution by data type (N=2048, F=32)",
        unit="GFlop/s",
        columns=["matched", "unmatched", "penalty %"],
        paper_expectation=(
            "short data types make bank-width matching more valuable "
            "(Sec. 6); the unmatched penalty grows with n"
        ),
    )
    p = ConvProblem.square(2048, 3, channels=1, filters=32)
    for dtype in (DataType.FLOAT, DataType.HALF, DataType.CHAR):
        m = SpecialCaseKernel(arch, dtype=dtype).gflops(p)
        u = SpecialCaseKernel(arch, dtype=dtype, matched=False).gflops(p)
        exp.add("%s (n=%d)" % (dtype.label,
                               SpecialCaseKernel(arch, dtype=dtype).n),
                {"matched": m, "unmatched": u, "penalty %": 100 * (1 - u / m)})
    return exp


def extension_backend_portfolio() -> Experiment:
    """The whole registered backend portfolio, Kepler versus Pascal.

    One row per registered backend on a single-channel 3x3 workload
    (the one shape every built-in backend can serve), priced through the
    uniform ``ConvBackend.timing`` surface.  A backend whose
    ``supports`` rejects the problem on an architecture reports 0.0 —
    the registry's per-arch applicability, as a figure.
    """
    registry = default_registry()
    archs = (KEPLER_K40M, PASCAL_P100)
    exp = Experiment(
        exp_id="ext-backend-portfolio",
        title="Registered backends across architectures (N=512, K=3, C=1, F=32)",
        unit="GFlop/s",
        columns=[a.name for a in archs],
        paper_expectation=(
            "the paper's kernels lead on Kepler; on Pascal's 4-byte "
            "banks (Chang & Onishi, 2022) float data is already matched"
        ),
    )
    p = ConvProblem.square(512, 3, channels=1, filters=32)
    for backend in registry:
        values = {}
        for arch in archs:
            if backend.supports(p, arch):
                values[arch.name] = backend.timing(
                    p, arch=arch).gflops(p.flops)
            else:
                values[arch.name] = 0.0
        exp.add(backend.name, values)
    return exp


def ablation_adaptive_config(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Fixed Table 1 configs vs per-problem selection on small images.

    The paper concedes losses at 32x32; a per-problem tile selector
    (same palette idea as cuDNN's) removes them.
    """
    exp = Experiment(
        exp_id="ablation-adaptive-config",
        title="Fixed Table 1 vs adaptive tile selection (small images)",
        unit="GFlop/s",
        columns=["fixed", "adaptive", "cuDNN"],
        paper_expectation="adaptive selection removes the 32x32 losses",
    )
    registry = default_registry()
    fixed = registry.get("general").build(None, arch)
    adaptive = registry.get("general").build(None, arch, auto_config=True)
    cudnn = registry.get("implicit-gemm").build(None, arch)
    for n, c, f, k in ((32, 128, 128, 3), (32, 256, 256, 7),
                       (64, 128, 128, 5), (128, 128, 128, 3)):
        p = ConvProblem.square(n, k, channels=c, filters=f)
        exp.add("N=%d,K=%d,C=%d,F=%d" % (n, k, c, f), {
            "fixed": fixed.gflops(p),
            "adaptive": adaptive.gflops(p),
            "cuDNN": cudnn.gflops(p),
        })
    return exp


def extension_stencil(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Sec. 6: the kernels applied to another application (Jacobi)."""
    from repro.apps.stencil import JacobiStencil

    exp = Experiment(
        exp_id="ext-stencil",
        title="Jacobi relaxation throughput (10 sweeps)",
        unit="Gupdates/s",
        columns=["matched", "unmatched"],
        paper_expectation="bank-width matching carries over to stencils",
    )
    for n in (1024, 2048, 4096):
        exp.add("%dx%d 5-point" % (n, n), {
            "matched": JacobiStencil(arch).updates_per_second(n, n) / 1e9,
            "unmatched": JacobiStencil(arch, matched=False)
            .updates_per_second(n, n) / 1e9,
        })
    exp.add("2048x2048 9-point", {
        "matched": JacobiStencil(arch, points=9).updates_per_second(2048, 2048) / 1e9,
        "unmatched": JacobiStencil(arch, points=9, matched=False)
        .updates_per_second(2048, 2048) / 1e9,
    })
    return exp


def extension_training(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """CNN training passes mapped onto the paper's kernels.

    Forward and input-gradient passes run on the general-case kernel;
    the weight gradient of the deeper layers maps onto the special-case
    kernel per input channel (see conv.gradients).
    """
    from repro.conv.gradients import input_gradient_problem, weight_gradient_problem
    from repro.gpu.timing import TimingModel

    exp = Experiment(
        exp_id="ext-training",
        title="Training-step time per pass on the paper's kernels",
        unit="ms",
        columns=["forward", "dgrad", "wgrad"],
        paper_expectation=(
            "both training phases are served by the two kernels "
            "(wgrad per channel on the special kernel where the "
            "gradient maps fit constant memory)"
        ),
    )
    general = GeneralCaseKernel(arch, auto_config=True)
    model = TimingModel(arch)
    # The wgrad-as-special-case mapping needs the gradient map to fit
    # constant memory AND the K x (K+n-1) register window to fit the
    # ISA limit — i.e. OH <= ~14: the deepest CNN layers.
    layers = [
        ("late 16x16x512", ConvProblem.square(16, 3, channels=512, filters=64)),
        ("late 14x14x256", ConvProblem.square(14, 3, channels=256, filters=32)),
        ("late 12x12x128", ConvProblem.square(12, 3, channels=128, filters=16)),
    ]
    for label, p in layers:
        fwd = general.predict(p, model).total * 1e3
        dgrad = general.predict(input_gradient_problem(p), model).total * 1e3
        # All C per-channel convolutions batch into one launch (the
        # z grid dimension), exactly as a real wgrad kernel would.
        wg_problem = weight_gradient_problem(p, arch.const_memory_size)
        # A 3x3-output problem wants the narrowest legal block, and even
        # then most of the block is wasted — the table quantifies why
        # production libraries ship dedicated wgrad kernels.
        from repro.core.config import SpecialCaseConfig

        wg_kernel = SpecialCaseKernel(
            arch, config=SpecialCaseConfig(block_w=64, block_h=4))
        wg_cost = wg_kernel.cost(wg_problem)
        wg_cost.ledger.scale(p.channels)
        wg_cost = dataclasses.replace(
            wg_cost,
            launch=dataclasses.replace(
                wg_cost.launch,
                grid=Dim3(wg_cost.launch.grid.x, wg_cost.launch.grid.y,
                          p.channels),
            ),
        )
        wgrad = model.evaluate(wg_cost).total * 1e3
        exp.add(label, {"forward": fwd, "dgrad": dgrad, "wgrad": wgrad})
    return exp


def extension_fft_batch(arch: GPUArchitecture = KEPLER_K40M) -> Experiment:
    """Sec. 1's FFT-batch argument, quantified.

    "In order to reuse the Fourier transform of the filters, the batch
    size should be big enough": at batch 1 the filter transforms bury
    FFT convolution; the crossover against the paper's direct kernel
    appears at a moderate batch.  Rates are normalized by the
    direct-method operation count (so FFT can exceed machine peak — it
    executes fewer actual flops).
    """
    from repro.conv.batching import BatchedKernel

    exp = Experiment(
        exp_id="ext-fft-batch",
        title="Direct (ours) vs FFT convolution as the batch grows "
              "(N=64, K=5, C=128, F=128)",
        unit="GFlop/s (direct-method flops)",
        columns=["ours", "FFT"],
        paper_expectation=(
            "FFT needs a big batch to amortize the filter transforms "
            "(Sec. 1); direct convolution is batch-insensitive"
        ),
    )
    registry = default_registry()
    p = ConvProblem.square(64, 5, channels=128, filters=128)
    for batch in (1, 2, 4, 8, 16, 32, 64):
        exp.add("batch=%d" % batch, {
            "ours": BatchedKernel(
                registry.get("general").build(None, arch), batch).gflops(p),
            "FFT": BatchedKernel(
                registry.get("fft").build(None, arch), batch).gflops(p),
        })
    return exp


def extension_arch_port() -> Experiment:
    """Sec. 6: the kernels ported across architectures.

    The same special-case kernel, auto-vectorized per device: n = 2 on
    Kepler's 8-byte banks, n = 1 on Fermi/Maxwell for float.  Absolute
    rates follow each machine's bandwidth/compute; the matched/unmatched
    gap exists only where the bank widths are mismatched.
    """
    from repro.gpu.arch import ARCHITECTURES

    exp = Experiment(
        exp_id="ext-arch-port",
        title="Special-case 3x3 kernel across architectures (N=2048, F=16)",
        unit="GFlop/s",
        columns=["matched", "unmatched", "gap %"],
        paper_expectation=(
            "the kernel design ports; only Kepler pays for ignoring the "
            "bank-width model with float data"
        ),
    )
    p = ConvProblem.square(2048, 3, channels=1, filters=16)
    for name in ("kepler", "fermi", "maxwell"):
        arch = ARCHITECTURES[name]
        m = SpecialCaseKernel(arch).gflops(p)
        u = SpecialCaseKernel(arch, matched=False).gflops(p)
        exp.add("%s (n=%d)" % (arch.name, SpecialCaseKernel(arch).n),
                {"matched": m, "unmatched": u, "gap %": 100 * (1 - u / m)})
    return exp


#: Experiment id -> builder, for the benchmark suite and examples.
ALL_EXPERIMENTS = {
    "fig1": fig1_bank_patterns,
    "fig2": fig2_gemm,
    "fig7a": lambda arch=KEPLER_K40M, jobs=None: fig7_special(1, arch, jobs),
    "fig7b": lambda arch=KEPLER_K40M, jobs=None: fig7_special(3, arch, jobs),
    "fig7c": lambda arch=KEPLER_K40M, jobs=None: fig7_special(5, arch, jobs),
    "fig8a": lambda arch=KEPLER_K40M, jobs=None: fig8_general(3, arch, jobs),
    "fig8b": lambda arch=KEPLER_K40M, jobs=None: fig8_general(5, arch, jobs),
    "fig8c": lambda arch=KEPLER_K40M, jobs=None: fig8_general(7, arch, jobs),
    "table1": table1,
    "ablation-unmatched": ablation_unmatched,
    "ablation-bank-policy": ablation_bank_policy,
    "ablation-writeback": ablation_writeback,
    "ablation-prefetch": ablation_prefetch,
    "ablation-thread-layout": ablation_thread_layout,
    "ext-short-dtypes": extension_short_dtypes,
    "ext-all-methods": extension_all_methods,
    "ext-dtype-conv": extension_fp16_conv,
    "ext-backend-portfolio": extension_backend_portfolio,
    "ablation-adaptive-config": ablation_adaptive_config,
    "ext-stencil": extension_stencil,
    "ext-training": extension_training,
    "ext-fft-batch": extension_fft_batch,
    "ext-arch-port": extension_arch_port,
}
