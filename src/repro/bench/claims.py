"""The paper's quantitative claims as checkable data.

Each :class:`PaperClaim` cites where the paper makes a claim, what it
claims, and a check that regenerates the corresponding quantity from
the library and decides whether the reproduction supports it (within
the documented bands of EXPERIMENTS.md).  ``python -m repro claims``
runs them all.

This is the machine-readable version of EXPERIMENTS.md's summary table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["PaperClaim", "ClaimResult", "PAPER_CLAIMS", "verify_claims",
           "format_claim_results"]


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative statement from the paper."""

    claim_id: str
    section: str
    statement: str
    paper_value: str
    check: Callable[[], "ClaimResult"]


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of regenerating one claim."""

    measured: str
    supported: bool
    note: str = ""


# ----------------------------------------------------------------------
# Checks (lazy imports keep `import repro` light).
# ----------------------------------------------------------------------

def _check_bankwidth_gain() -> ClaimResult:
    from repro.core.bankwidth import smem_bandwidth_gain
    from repro.gpu.arch import KEPLER_K40M

    gain = smem_bandwidth_gain(KEPLER_K40M, 4)
    return ClaimResult(measured="%.2fx" % gain,
                       supported=abs(gain - 2.0) < 0.01)


def _check_magma_slowdown() -> ClaimResult:
    from repro.baselines.gemm import GemmShape, cublas_like_gemm, magma_fermi_gemm

    s = GemmShape.square(4096)
    ratio = magma_fermi_gemm().time_ms(s) / cublas_like_gemm().time_ms(s)
    return ClaimResult(measured="%.2fx" % ratio,
                       supported=1.6 < ratio < 3.2)


def _check_magma_saving() -> ClaimResult:
    from repro.baselines.gemm import GemmShape, magma_fermi_gemm, magma_matched_gemm

    s = GemmShape.square(4096)
    saving = 1 - magma_matched_gemm().time_ms(s) / magma_fermi_gemm().time_ms(s)
    return ClaimResult(measured="%.0f%%" % (100 * saving),
                       supported=0.25 < saving < 0.55)


def _check_special_average() -> ClaimResult:
    from repro.bench.figures import fig7_special

    means = [fig7_special(k).mean_ratio("ours", "cuDNN") for k in (1, 3, 5)]
    avg = float(np.mean(means))
    return ClaimResult(
        measured="%.2fx" % avg, supported=3.0 < avg < 12.0,
        note="sweep-mix dependent; per-size means %.1f/%.1f/%.1f"
        % tuple(means),
    )


def _check_f1_speedup() -> ClaimResult:
    from repro.baselines.implicit_gemm import ImplicitGemmKernel
    from repro.conv.tensors import ConvProblem
    from repro.core.special import SpecialCaseKernel

    p = ConvProblem.square(2048, 3, channels=1, filters=1)
    ratio = SpecialCaseKernel().gflops(p) / ImplicitGemmKernel().gflops(p)
    return ClaimResult(measured="%.1fx" % ratio, supported=ratio > 10.0)


def _check_unmatched_penalty() -> ClaimResult:
    from repro.conv.tensors import ConvProblem
    from repro.core.special import SpecialCaseKernel

    p = ConvProblem.square(2048, 3, channels=1, filters=32)
    penalty = 1 - (SpecialCaseKernel(matched=False).gflops(p)
                   / SpecialCaseKernel().gflops(p))
    return ClaimResult(measured="%.1f%%" % (100 * penalty),
                       supported=0.10 < penalty < 0.30)


def _check_general_average() -> ClaimResult:
    from repro.bench.figures import fig8_general

    means = [fig8_general(k).mean_ratio("ours", "cuDNN") for k in (3, 5, 7)]
    avg = float(np.mean(means)) - 1
    return ClaimResult(measured="+%.1f%%" % (100 * avg),
                       supported=0.20 < avg < 0.55)


def _check_small_image_caveat() -> ClaimResult:
    from repro.baselines.implicit_gemm import ImplicitGemmKernel
    from repro.conv.tensors import ConvProblem
    from repro.core.general import GeneralCaseKernel

    p = ConvProblem.square(32, 3, channels=128, filters=128)
    ratio = GeneralCaseKernel().gflops(p) / ImplicitGemmKernel().gflops(p)
    return ClaimResult(measured="%.2fx at 32x32 (K=3)" % ratio,
                       supported=0.8 < ratio < 1.2)


def _check_peak_fraction() -> ClaimResult:
    from repro.bench.figures import fig8_general

    peak = max(max(fig8_general(k).series("ours")) for k in (3, 5))
    frac = peak / 4290.0
    return ClaimResult(measured="%.0f GFlop/s (%.0f%% of peak)" % (peak, 100 * frac),
                       supported=0.40 < frac < 0.75)


def _check_gm_optimality() -> ClaimResult:
    from repro.conv.tensors import ConvProblem
    from repro.core.analysis import audit_special_kernel
    from repro.core.special import SpecialCaseKernel

    p = ConvProblem.square(2048, 3, channels=1, filters=16)
    audit = audit_special_kernel(SpecialCaseKernel(), p)
    return ClaimResult(
        measured="%.2fx compulsory reads (halo model %.2fx)"
        % (audit.overhead, audit.expected_overhead),
        supported=audit.near_optimal and audit.conflict_free,
    )


def _check_writeback_cheap() -> ClaimResult:
    from repro.bench.figures import ablation_writeback

    exp = ablation_writeback()
    worst = max(r.values["write share"] for r in exp.rows)
    return ClaimResult(measured="%.1f%% of time at worst" % worst,
                       supported=worst < 10.0)


def _check_sm_reduction_factor() -> ClaimResult:
    from repro.core.analysis import sm_image_traffic_ratio
    from repro.core.config import TABLE1_CONFIGS

    r3 = sm_image_traffic_ratio(TABLE1_CONFIGS[3], 3)
    return ClaimResult(measured="%.3f for K=3 (WT=16)" % r3,
                       supported=abs(r3 - 0.375) < 1e-9)


def _check_table1_competitive() -> ClaimResult:
    from repro.core.dse import reproduce_table1

    rows = reproduce_table1(kernel_sizes=(3,))
    gap = rows[0].paper_gflops / rows[0].ours_gflops
    return ClaimResult(measured="paper config at %.0f%% of explored best (K=3)"
                       % (100 * gap), supported=gap > 0.8)


def _check_short_dtypes() -> ClaimResult:
    from repro.core.bankwidth import smem_bandwidth_gain
    from repro.gpu.arch import MAXWELL_GM204

    half = smem_bandwidth_gain(MAXWELL_GM204, 2)
    char = smem_bandwidth_gain(MAXWELL_GM204, 1)
    return ClaimResult(measured="half %.0fx, char %.0fx on 4B banks" % (half, char),
                       supported=half == 2.0 and char == 4.0)


#: Every quantitative claim in the paper, in reading order.
PAPER_CLAIMS: List[PaperClaim] = [
    PaperClaim("bankwidth-gain", "Sec. 2.1 / Fig. 1",
               "matching W_CD to the 8-byte banks yields n-fold SM bandwidth",
               "2x for float", _check_bankwidth_gain),
    PaperClaim("magma-slowdown", "Sec. 2.1 / Fig. 2",
               "MAGMA (Fermi-tuned) is much slower than cuBLAS on Kepler",
               "2.4x", _check_magma_slowdown),
    PaperClaim("magma-saving", "Sec. 2.1 / Fig. 2",
               "bank-width matching recovers a large share of MAGMA's time",
               "36%", _check_magma_saving),
    PaperClaim("special-average", "Sec. 5.1 / Fig. 7",
               "special-case kernel beats cuDNN across filters",
               "5.16x average", _check_special_average),
    PaperClaim("f1-speedup", "Sec. 5.1",
               "more than 10x faster than cuDNN when F = 1",
               ">10x", _check_f1_speedup),
    PaperClaim("unmatched-penalty", "Sec. 5.1 / Fig. 7b",
               "the unmatched kernel loses measurably (3x3 filter)",
               "19%", _check_unmatched_penalty),
    PaperClaim("general-average", "Sec. 5.2 / Fig. 8",
               "general-case kernel beats cuDNN on average",
               "+35.5%", _check_general_average),
    PaperClaim("small-image-caveat", "Sec. 5.2",
               "only very small (32x32) images may be a little slower",
               "slightly below parity", _check_small_image_caveat),
    PaperClaim("peak-fraction", "Sec. 5.2",
               "peak throughput is a large fraction of machine peak",
               "2020 GFlop/s (47%)", _check_peak_fraction),
    PaperClaim("gm-optimality", "Sec. 3.2",
               "special kernel is (almost) communication-optimal in GM reads",
               "each block pixel read once + small halo", _check_gm_optimality),
    PaperClaim("writeback-cheap", "Sec. 4.2",
               "the uncoalesced writeback consumes very little time",
               "negligible", _check_writeback_cheap),
    PaperClaim("sm-reduction", "Sec. 4.2",
               "SM image traffic reduced by (WT+K-1)/(WT*K)",
               "0.375 for K=3", _check_sm_reduction_factor),
    PaperClaim("table1-best", "Sec. 5.2 / Table 1",
               "the tabulated configurations are the best by exploration",
               "six-parameter tuples", _check_table1_competitive),
    PaperClaim("short-dtypes", "Sec. 6",
               "the model benefits short data types on 4-byte-bank devices",
               "applies to fp16/int8", _check_short_dtypes),
]


def verify_claims(ids: Optional[Sequence[str]] = None) -> List[tuple]:
    """Run (a subset of) the claims; returns (claim, result) pairs."""
    selected = [c for c in PAPER_CLAIMS if ids is None or c.claim_id in ids]
    return [(claim, claim.check()) for claim in selected]


def format_claim_results(pairs) -> str:
    """Render claim outcomes as an aligned table."""
    lines = []
    header = "%-20s %-22s %-24s %-9s" % ("claim", "paper", "measured", "verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for claim, result in pairs:
        verdict = "SUPPORTED" if result.supported else "DIVERGES"
        lines.append("%-20s %-22s %-24s %-9s"
                     % (claim.claim_id, claim.paper_value, result.measured,
                        verdict))
        if result.note:
            lines.append("    note: %s" % result.note)
    supported = sum(1 for _, r in pairs if r.supported)
    lines.append("%d/%d claims supported" % (supported, len(pairs)))
    return "\n".join(lines)
