"""repro.fleet: a multi-engine serving fleet on the virtual clock.

One :class:`FleetEngine` fronts N :class:`~repro.serve.engine.ServeEngine`
replicas with shape-affinity routing (:class:`FleetRouter`), a shared
plan-cache tier with versioned invalidation and read-side checksum
quarantine (:class:`SharedPlanCache`), bounded-queue admission control
with priority classes and load shedding (:class:`AdmissionController`),
per-replica circuit breakers with automatic failover
(:class:`HealthTracker`), and fleet-wide SLO accounting with
degradation levels (:class:`FleetStats`).  Replay is deterministic:
with no shedding, fleet responses are bit-identical to a single engine
serially serving the same trace, at any ``jobs`` degree — and the
contract survives injected faults (``FleetEngine(chaos=...)``, see
docs/RESILIENCE.md): every *served* response under chaos is
bit-identical to the fault-free replay.
"""

from repro.fleet.admission import (
    DEFAULT_SHED_RECORD_CAP,
    AdmissionController,
    ShedRecord,
)
from repro.fleet.engine import (
    MAX_QUEUE_DEPTH,
    MAX_REPLICAS,
    FleetConfig,
    FleetEngine,
    FleetResult,
    check_queue_depth,
    check_replicas,
)
from repro.fleet.health import (
    DEGRADATION_LEVELS,
    CircuitBreaker,
    HealthTracker,
)
from repro.fleet.router import FleetRouter, shape_hash
from repro.fleet.shared_cache import (
    SharedPlanCache,
    cache_version_token,
    plan_checksum,
)
from repro.fleet.slo import FleetStats, format_fleet_stats

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DEFAULT_SHED_RECORD_CAP",
    "DEGRADATION_LEVELS",
    "ShedRecord",
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "FleetRouter",
    "FleetStats",
    "HealthTracker",
    "SharedPlanCache",
    "MAX_QUEUE_DEPTH",
    "MAX_REPLICAS",
    "cache_version_token",
    "check_queue_depth",
    "check_replicas",
    "format_fleet_stats",
    "plan_checksum",
    "shape_hash",
]
