"""repro.fleet: a multi-engine serving fleet on the virtual clock.

One :class:`FleetEngine` fronts N :class:`~repro.serve.engine.ServeEngine`
replicas with shape-affinity routing (:class:`FleetRouter`), a shared
plan-cache tier with versioned invalidation (:class:`SharedPlanCache`),
bounded-queue admission control with priority classes and load shedding
(:class:`AdmissionController`), and fleet-wide SLO accounting
(:class:`FleetStats`).  Replay is deterministic: with no shedding, fleet
responses are bit-identical to a single engine serially serving the
same trace, at any ``jobs`` degree.
"""

from repro.fleet.admission import AdmissionController, ShedRecord
from repro.fleet.engine import (
    MAX_QUEUE_DEPTH,
    MAX_REPLICAS,
    FleetConfig,
    FleetEngine,
    FleetResult,
    check_queue_depth,
    check_replicas,
)
from repro.fleet.router import FleetRouter, shape_hash
from repro.fleet.shared_cache import SharedPlanCache, cache_version_token
from repro.fleet.slo import FleetStats, format_fleet_stats

__all__ = [
    "AdmissionController",
    "ShedRecord",
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "FleetRouter",
    "FleetStats",
    "SharedPlanCache",
    "MAX_QUEUE_DEPTH",
    "MAX_REPLICAS",
    "cache_version_token",
    "check_queue_depth",
    "check_replicas",
    "format_fleet_stats",
    "shape_hash",
]
