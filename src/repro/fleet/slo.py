"""Fleet-level SLO accounting on the telemetry registry.

The single-engine stats surface answers "how did this engine do"; the
SLO surface answers the operator's question: *is the fleet meeting its
latency objective, and when it is not, who pays?*  Everything lands in
one :class:`~repro.obs.metrics.Registry` so `repro obs`, the Prometheus
exporter, and the Perfetto trace all see the same series:

* ``fleet_latency_seconds`` — fleet-wide request latency histogram,
  the source of the headline p50/p95/p99;
* ``fleet_replica_latency_seconds{replica}`` — the same, per replica,
  so one slow replica cannot hide inside the fleet aggregate;
* ``fleet_requests_total{replica}`` / ``fleet_deadline_miss_total
  {replica}`` — served and deadline-missed counts;
* shed and affinity series come from the admission controller and the
  router (same registry) — the snapshot stitches all of it into one
  JSON-serializable dict.

Deadline *misses* are requests that were served but completed after
their absolute deadline; requests shed at admission never reach here
(they are accounted by ``fleet_shed_total``).  ``deadline_miss_rate``
is misses over served-with-deadline, so traces without deadlines report
0.0 rather than poisoning the SLO with an empty denominator.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import Registry
from repro.serve.request import ConvRequest, ConvResponse

__all__ = ["FleetStats", "format_fleet_stats"]


class FleetStats:
    """Registry-backed accumulator the fleet feeds as responses land."""

    def __init__(self, registry: Optional[Registry] = None):
        self.registry = registry if registry is not None else Registry()
        reg = self.registry
        self._served = reg.counter(
            "fleet_requests_total", "Requests served, by replica",
            labelnames=("replica",))
        self._latency = reg.histogram(
            "fleet_latency_seconds",
            "Fleet-wide modeled request latency (arrival to completion)")
        self._replica_latency = reg.histogram(
            "fleet_replica_latency_seconds",
            "Per-replica modeled request latency",
            labelnames=("replica",))
        self._deadline_misses = reg.counter(
            "fleet_deadline_miss_total",
            "Served requests that completed after their deadline, by replica",
            labelnames=("replica",))
        self._with_deadline = reg.counter(
            "fleet_deadline_carrying_total",
            "Served requests that carried a completion deadline")
        self._makespan = reg.gauge(
            "fleet_modeled_makespan_seconds",
            "Max replica device-timeline position after the last replay")

    # ------------------------------------------------------------------
    def record_response(self, replica: int, request: ConvRequest,
                        response: ConvResponse) -> None:
        self._served.inc(replica=replica)
        self._latency.observe(response.latency_s)
        self._replica_latency.observe(response.latency_s, replica=replica)
        if request.deadline_s is not None:
            self._with_deadline.inc()
            if response.completed_s > request.deadline_s:
                self._deadline_misses.inc(replica=replica)

    def record_makespan(self, makespan_s: float) -> None:
        self._makespan.set(makespan_s)

    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        return int(round(self._served.total()))

    @property
    def deadline_misses(self) -> int:
        return int(round(self._deadline_misses.total()))

    @property
    def deadline_miss_rate(self) -> float:
        carrying = self._with_deadline.total()
        return self.deadline_misses / carrying if carrying else 0.0

    @property
    def makespan_s(self) -> float:
        return self._makespan.value()

    @property
    def sustained_rps(self) -> float:
        """Served requests per modeled second of fleet makespan.

        The fleet's replicas run concurrently on the virtual clock, so
        the honest throughput denominator is the *slowest* replica's
        timeline position, not the sum of busy times.
        """
        makespan = self.makespan_s
        return self.served / makespan if makespan > 0 else 0.0

    def _replica_block(self, replica: int) -> dict:
        label = str(replica)
        return {
            "served": int(round(self._served.value(replica=label))),
            "latency_p50_s": self._replica_latency.percentile(
                50, replica=label),
            "latency_p95_s": self._replica_latency.percentile(
                95, replica=label),
            "latency_p99_s": self._replica_latency.percentile(
                99, replica=label),
            "deadline_misses": int(round(
                self._deadline_misses.value(replica=label))),
        }

    def snapshot(
        self,
        n_replicas: int,
        admission_stats: Optional[dict] = None,
        router_stats: Optional[dict] = None,
        shared_cache_stats: Optional[dict] = None,
        health_stats: Optional[dict] = None,
    ) -> dict:
        snap = {
            "served": self.served,
            "latency_mean_s": self._latency.mean(),
            "latency_max_s": self._latency.max(),
            "latency_p50_s": self._latency.percentile(50),
            "latency_p95_s": self._latency.percentile(95),
            "latency_p99_s": self._latency.percentile(99),
            # Estimates (not exact order statistics) once the latency
            # reservoir truncates; see Histogram.is_estimated.
            "latency_estimated": self._latency.is_estimated(),
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "modeled_makespan_s": self.makespan_s,
            "sustained_rps": self.sustained_rps,
            "replicas": {
                str(r): self._replica_block(r) for r in range(n_replicas)
            },
        }
        if admission_stats is not None:
            snap["admission"] = dict(admission_stats)
        if router_stats is not None:
            snap["router"] = dict(router_stats)
        if shared_cache_stats is not None:
            snap["shared_plan_cache"] = dict(shared_cache_stats)
        if health_stats is not None:
            snap["health"] = dict(health_stats)
            snap["degradation"] = health_stats.get("degradation", "healthy")
        return snap


def format_fleet_stats(snap: dict) -> str:
    """Human-readable rendering of a :meth:`FleetStats.snapshot` dict."""
    lines = []
    lines.append("fleet served %d requests across %d replicas"
                 % (snap["served"], len(snap["replicas"])))
    lines.append("modeled makespan      : %.6f s" % snap["modeled_makespan_s"])
    lines.append("sustained throughput  : %.0f req/modeled-s"
                 % snap["sustained_rps"])
    lines.append("latency p50/p95/p99   : %.2e / %.2e / %.2e s"
                 % (snap["latency_p50_s"], snap["latency_p95_s"],
                    snap["latency_p99_s"]))
    lines.append("deadline misses       : %d (rate %.4f)"
                 % (snap["deadline_misses"], snap["deadline_miss_rate"]))
    if "admission" in snap:
        adm = snap["admission"]
        shed = ", ".join("%s=%d" % (k, v)
                         for k, v in sorted(adm["shed_by_reason"].items()))
        lines.append("admitted / shed       : %d / %d (shed rate %.4f%s)"
                     % (adm["admitted"], adm["shed"], adm["shed_rate"],
                        ("; " + shed) if shed else ""))
    if "router" in snap:
        rt = snap["router"]
        lines.append("router affinity       : %.4f hit rate "
                     "(%d home, %d spilled)"
                     % (rt["affinity_hit_rate"], rt["affinity_hits"],
                        rt["spills"]))
    if "shared_plan_cache" in snap:
        sc = snap["shared_plan_cache"]
        lines.append("shared plan cache     : %d entries, hit rate %.3f "
                     "(%d hits, %d misses, %d publishes, %d invalidations)"
                     % (sc["entries"], sc["hit_rate"], sc["hits"],
                        sc["misses"], sc["publishes"], sc["invalidations"]))
    if "health" in snap:
        health = snap["health"]
        open_breakers = sum(1 for state in health["breakers"].values()
                            if state == "open")
        lines.append("health                : %s (%d open breakers, "
                     "%d failures, %d failovers, %d hedges)"
                     % (health["degradation"], open_breakers,
                        health["failures"], health["failovers"],
                        health["hedges"]))
    for replica, block in sorted(snap["replicas"].items(),
                                 key=lambda kv: int(kv[0])):
        lines.append(
            "  replica %s: served %d, p99 %.2e s, deadline misses %d"
            % (replica, block["served"], block["latency_p99_s"],
               block["deadline_misses"]))
    return "\n".join(lines)
