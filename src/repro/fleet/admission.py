"""Admission control: bounded queues, priority classes, load shedding.

The fleet runs on the same virtual clock as the engines it fronts, so
"queue depth" has an exact, reproducible meaning: a request admitted at
virtual time ``t`` occupies its replica's batcher for at most
``window_s`` seconds (the batching deadline — after that the group has
flushed to the device).  The controller therefore models each replica's
occupancy as the count of admitted arrivals inside the sliding window
``(t - window_s, t]`` and refuses admission past ``queue_depth``.  The
model is an upper bound (a group that fills ``max_batch`` flushes
early), which errs on the side of shedding before a replica drowns —
the conservative direction for an admission controller.

Priority classes (:data:`~repro.serve.request.PRIORITY_CLASSES`) order
the degradation:

* ``critical`` — always admitted to its affinity replica, even past
  the bound (backpressure never blocks the real-time lane);
* ``standard`` — spills to the least-loaded replica when its home is
  full, shed only when the whole fleet is at the bound;
* ``batch`` — shed as soon as its home replica is full (it never
  spills and never displaces cache-hot capacity).

A request whose absolute deadline has *already passed* on arrival is
shed immediately (reason ``"expired"``) — serving it would burn device
time producing an answer nobody is waiting for.  Requests shed for
queue pressure carry reason ``"overload"``, and a request the fleet
admitted but could not serve even after failover (every retry round
exhausted) is accounted here too, reason ``"failed"`` — shedding is the
single ledger of unanswered requests.  Every shed increments the
``fleet_shed_total{reason,priority}`` counter — the shed rate is an SLO
headline, not a log line.

The per-request :class:`ShedRecord` detail is kept in a bounded ring
buffer (``shed_record_cap``, default 10k): a long-lived fleet under
sustained overload must not grow memory without bound.  The aggregate
counters stay exact forever; only the per-request detail ages out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import ReproError
from repro.obs.metrics import Registry
from repro.serve.request import PRIORITY_CLASSES, ConvRequest

from repro.fleet.router import FleetRouter

__all__ = ["AdmissionController", "ShedRecord", "DEFAULT_SHED_RECORD_CAP"]

#: Default bound on retained per-request shed detail records.
DEFAULT_SHED_RECORD_CAP = 10_000


@dataclass(frozen=True)
class ShedRecord:
    """One request the fleet did not answer, and why."""

    req_id: int
    reason: str                  # "expired" | "overload" | "failed"
    priority: str
    arrival_s: float


class AdmissionController:
    """Sliding-window queue bounds + priority-ordered shedding."""

    def __init__(
        self,
        router: FleetRouter,
        queue_depth: int,
        window_s: float,
        registry: Optional[Registry] = None,
        shed_record_cap: int = DEFAULT_SHED_RECORD_CAP,
    ):
        if queue_depth < 1:
            raise ReproError("queue depth must be at least 1, got %d"
                             % queue_depth)
        if window_s < 0:
            raise ReproError("admission window must be non-negative")
        if shed_record_cap < 1:
            raise ReproError(
                "shed record cap must be at least 1, got %d"
                % shed_record_cap)
        self.router = router
        self.queue_depth = queue_depth
        self.window_s = window_s
        self.shed_record_cap = shed_record_cap
        self.registry = registry if registry is not None else Registry()
        self._windows = [deque() for _ in range(router.n_replicas)]
        self._admitted = self.registry.counter(
            "fleet_admitted_total", "Requests admitted, by replica",
            labelnames=("replica",))
        self._shed = self.registry.counter(
            "fleet_shed_total", "Requests shed, by reason and priority",
            labelnames=("reason", "priority"))
        self._depth_gauge = self.registry.gauge(
            "fleet_queue_depth",
            "Modeled sliding-window queue occupancy, by replica",
            labelnames=("replica",))
        # Ring buffer: aggregate counters stay exact; per-request
        # detail is bounded so sustained overload cannot grow memory.
        self.shed_records: Deque[ShedRecord] = deque(maxlen=shed_record_cap)

    # ------------------------------------------------------------------
    def depths(self, now: float) -> List[int]:
        """Per-replica modeled occupancy at virtual time ``now``.

        Arrivals older than the admission window have flushed to the
        device and no longer exert backpressure.
        """
        horizon = now - self.window_s
        out = []
        for replica, window in enumerate(self._windows):
            while window and window[0] <= horizon:
                window.popleft()
            out.append(len(window))
            self._depth_gauge.set(len(window), replica=replica)
        return out

    def admit(self, request: ConvRequest) -> Optional[int]:
        """Route one arrival; returns its replica, or None if shed.

        Arrivals must be offered in non-decreasing virtual-time order
        (the fleet replays traces sorted by arrival, like the engine).
        """
        if request.priority not in PRIORITY_CLASSES:
            raise ReproError(
                "unknown priority %r; priority classes: %s"
                % (request.priority, ", ".join(PRIORITY_CLASSES)))
        now = request.arrival_s
        if request.deadline_s is not None and request.deadline_s <= now:
            self._record_shed(request, "expired")
            return None
        replica = self.router.route(
            request.problem, self.depths(now), self.queue_depth,
            priority=request.priority,
        )
        if replica is None:
            self._record_shed(request, "overload")
            return None
        self._windows[replica].append(now)
        self._admitted.inc(replica=replica)
        self._depth_gauge.set(len(self._windows[replica]), replica=replica)
        return replica

    def record_abandoned(self, request: ConvRequest) -> None:
        """Account a request admitted but never served (failover
        exhausted every retry round) — reason ``"failed"``."""
        self._record_shed(request, "failed")

    def _record_shed(self, request: ConvRequest, reason: str) -> None:
        self._shed.inc(reason=reason, priority=request.priority)
        self.shed_records.append(ShedRecord(
            req_id=request.req_id, reason=reason,
            priority=request.priority, arrival_s=request.arrival_s,
        ))

    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        return int(round(self._admitted.total()))

    @property
    def shed(self) -> int:
        return int(round(self._shed.total()))

    @property
    def shed_rate(self) -> float:
        """Sheds over offered requests (0.0 before any arrival)."""
        offered = self.admitted + self.shed
        return self.shed / offered if offered else 0.0

    def stats(self) -> dict:
        return {
            "queue_depth": self.queue_depth,
            "window_s": self.window_s,
            "shed_record_cap": self.shed_record_cap,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "shed_by_reason": {
                "%s/%s" % (labels["reason"], labels["priority"]):
                    int(round(value))
                for labels, value in self._shed.series()
            },
        }
