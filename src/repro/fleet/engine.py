"""The fleet engine: N serving replicas behind one deterministic front.

:class:`FleetEngine` replays a request trace through ``replicas``
independent :class:`~repro.serve.engine.ServeEngine` instances:

1. **Route + admit** (parent, virtual-time order) — every arrival is
   hashed to its shape-affinity replica, bounded by the admission
   window, spilled or shed per its priority class
   (:mod:`repro.fleet.router`, :mod:`repro.fleet.admission`).
2. **Pre-plan** (parent) — each distinct admitted shape is planned once
   through the two cache tiers: the fleet-local LRU, then the
   :class:`~repro.fleet.shared_cache.SharedPlanCache`, and only then
   the design-space explorer.  The winning plans are shipped to the
   replicas so every replica starts hot.
3. **Replay with failover** — each replica serves its sub-trace through
   :func:`repro.parallel.parallel_map` (one work item per replica;
   ``jobs=1`` runs the identical code in-process).  A shard attempt
   that *fails* — a crashed or wedged replica, a dead pool worker, or
   an injected fault from an installed :class:`~repro.chaos.injector.
   FaultInjector` — feeds the replica's circuit breaker
   (:mod:`repro.fleet.health`) and is re-routed whole to a healthy
   survivor, bounded by ``failover_retries`` rounds with exponential
   virtual-clock backoff.  Because every replica builds an identical
   fresh engine from the same seeds, a failed-over shard's responses
   are bit-identical to what the failed replica would have produced —
   failover moves work, never changes answers.  Stragglers can be
   hedged (``hedge=True``): a shard whose modeled clock exceeds
   ``hedge_factor`` x the median is speculatively re-dispatched and the
   faster attempt bounds the makespan.
4. **Reassemble + account** — responses are stitched back into request
   order by id with an exactly-once guard (a request can never be
   answered twice, and an admitted request that every failover round
   failed to serve is *accounted*, as a ``failed`` shed, never silently
   lost), and the SLO surface (:mod:`repro.fleet.slo`) records latency
   percentiles, deadline misses, the fleet makespan, and the current
   degradation level.

Determinism contract: with a queue bound loose enough that nothing is
shed, the fleet's responses are **bit-identical** to a single
``ServeEngine`` serially replaying the same trace — same outputs, same
winning backends — because routing only partitions the trace and every
replica runs the same deterministic planning and execution stack.  The
contract survives chaos: an installed fault plan is seeded, so two runs
with the same plan fail and recover identically, and every *served*
response stays bit-identical to the fault-free replay.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan
from repro.errors import ReproError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.obs.exporters import write_chrome_trace
from repro.obs.metrics import Registry
from repro.obs.snapshot import merge_registry_snapshot, worker_snapshot
from repro.obs.tracing import Tracer, VIRTUAL_TRACK
from repro.parallel import ParallelFailure, parallel_map
from repro.serve.dispatch import Dispatcher
from repro.serve.engine import ServeEngine
from repro.serve.plan_cache import PlanCache
from repro.serve.request import ConvRequest, ConvResponse, plan_key
from repro.fleet.admission import AdmissionController, ShedRecord
from repro.fleet.health import HealthTracker
from repro.fleet.router import FleetRouter
from repro.fleet.shared_cache import SharedPlanCache, cache_version_token
from repro.fleet.slo import FleetStats, format_fleet_stats

__all__ = [
    "MAX_REPLICAS",
    "MAX_QUEUE_DEPTH",
    "check_replicas",
    "check_queue_depth",
    "FleetConfig",
    "FleetResult",
    "FleetEngine",
]

#: Replica-count bound: past this, per-replica traffic is too thin for
#: shape affinity to keep any cache hot.
MAX_REPLICAS = 64

#: Admission queue-depth bound per replica.
MAX_QUEUE_DEPTH = 4096


def check_replicas(replicas: int) -> int:
    """Validate a replica count; the error names the valid range."""
    if not isinstance(replicas, int) or not 1 <= replicas <= MAX_REPLICAS:
        raise ReproError(
            "invalid replica count %r; valid range: 1..%d"
            % (replicas, MAX_REPLICAS))
    return replicas


def check_queue_depth(queue_depth: int) -> int:
    """Validate a per-replica queue depth; the error names the range."""
    if (not isinstance(queue_depth, int)
            or not 1 <= queue_depth <= MAX_QUEUE_DEPTH):
        raise ReproError(
            "invalid queue depth %r; valid range: 1..%d"
            % (queue_depth, MAX_QUEUE_DEPTH))
    return queue_depth


@dataclass
class FleetConfig:
    """Everything needed to (re)build the fleet and its replicas.

    The per-replica fields mirror :class:`~repro.serve.engine.ServeEngine`
    so a fleet of one is configured exactly like a single engine.  The
    resilience fields govern recovery (docs/RESILIENCE.md): how many
    failover rounds a failed shard gets (``failover_retries``), the
    virtual-clock backoff between rounds (``retry_backoff_s``), the
    circuit-breaker trip point and cool-down (``breaker_threshold`` /
    ``breaker_cooldown_s``), transient plan-build retries
    (``plan_retries``), and straggler hedging (``hedge`` /
    ``hedge_factor``).
    """

    arch: GPUArchitecture = KEPLER_K40M
    replicas: int = 4
    deadline_s: float = 1e-3
    max_batch: int = 32
    cache_capacity: int = 128
    executor: str = "reference"
    backends: Optional[Tuple[str, ...]] = None
    queue_depth: int = 64
    jobs: Optional[Union[int, str]] = None
    failover_retries: int = 2
    retry_backoff_s: float = 1e-3
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.05
    plan_retries: int = 2
    hedge: bool = False
    hedge_factor: float = 4.0
    shed_record_cap: int = 10_000

    def __post_init__(self):
        check_replicas(self.replicas)
        check_queue_depth(self.queue_depth)
        if self.backends is not None:
            self.backends = tuple(self.backends)
        if self.failover_retries < 0:
            raise ReproError("failover_retries must be >= 0, got %d"
                             % self.failover_retries)
        if self.retry_backoff_s < 0:
            raise ReproError("retry_backoff_s must be non-negative")
        if self.hedge_factor <= 1.0:
            raise ReproError("hedge_factor must be > 1.0, got %g"
                             % self.hedge_factor)
        if self.plan_retries < 0:
            raise ReproError("plan_retries must be >= 0, got %d"
                             % self.plan_retries)
        if self.breaker_threshold < 1:
            raise ReproError("breaker_threshold must be >= 1, got %d"
                             % self.breaker_threshold)
        if self.breaker_cooldown_s <= 0:
            raise ReproError("breaker_cooldown_s must be positive, got %g"
                             % self.breaker_cooldown_s)
        if self.shed_record_cap < 1:
            raise ReproError("shed record cap must be >= 1, got %d"
                             % self.shed_record_cap)

    def engine_kwargs(self) -> dict:
        """Constructor kwargs for one replica's ServeEngine."""
        return {
            "arch": self.arch,
            "deadline_s": self.deadline_s,
            "max_batch": self.max_batch,
            "cache_capacity": self.cache_capacity,
            "executor": self.executor,
            "backends": self.backends,
        }


@dataclass
class FleetResult:
    """One trace replay: responses aligned with the input requests.

    ``responses[i]`` is the response for ``requests[i]`` or ``None`` if
    it was shed; ``assignments[i]`` is its replica (or ``None``).
    ``shed`` covers every unanswered request: refused at admission
    (``expired`` / ``overload``) or abandoned after exhausting failover
    rounds (``failed``) — nothing goes missing without a record.
    """

    responses: List[Optional[ConvResponse]]
    assignments: List[Optional[int]]
    shed: List[ShedRecord] = field(default_factory=list)
    failovers: int = 0
    hedges: int = 0

    @property
    def served(self) -> int:
        return sum(1 for r in self.responses if r is not None)

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    @property
    def abandoned(self) -> List[ShedRecord]:
        """Requests admitted but never served (failover exhausted)."""
        return [record for record in self.shed if record.reason == "failed"]


def _serve_replica_shard(payload) -> dict:
    """Replay one replica's sub-trace; module-level so pools pickle it.

    Runs against a replica-private registry/tracer and ships both back
    as a snapshot, so fleet telemetry is complete and identical whether
    this runs in-process (``jobs=1``) or in a pool worker.

    ``directives`` (from an installed fault injector) simulate this
    attempt's share of the chaos plan: a ``crash`` serves ``after``
    requests and then loses the whole attempt, a ``wedge`` returns
    nothing at all (the modeled worker-timeout), ``slow`` inflates the
    reported clock, and ``drop_obs`` loses the telemetry snapshot in
    transit.  Failures come back as *structured outcomes* (a dict with
    a ``failed`` reason), never exceptions, so the parent's failover
    loop — not the pool's retry machinery — owns recovery.
    """
    replica, engine_kwargs, requests, seeds, directives = payload
    directives = directives or {}
    fault = directives.get("fault")
    if fault == "wedge":
        return {"replica": replica, "failed": "wedge"}
    registry = Registry()
    tracer = Tracer()
    engine = ServeEngine(registry=registry, tracer=tracer, **engine_kwargs)
    for key, plan in seeds:
        engine.plan_cache.put(key, plan)
    if fault == "crash":
        # Mid-flight loss: serve a prefix, then die with every response
        # of the attempt (including the prefix's) unrecoverable.
        prefix = sorted(requests, key=lambda r: r.arrival_s)
        for request in prefix[:directives.get("after", 0)]:
            engine.submit(request)
        return {"replica": replica, "failed": "crash",
                "served_before_crash": min(directives.get("after", 0),
                                           len(prefix))}
    responses = engine.serve_trace(requests)
    clock_s = engine.clock_s
    if fault == "slow":
        clock_s *= directives.get("factor", 4.0)
    return {
        "replica": replica,
        "responses": responses,
        "clock_s": clock_s,
        "slow": fault == "slow",
        "stats": engine.stats(),
        "obs": (None if directives.get("drop_obs")
                else worker_snapshot(registry, tracer)),
    }


class FleetEngine:
    """Shape-affinity-routed fleet of serving replicas."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        shared_cache: Optional[SharedPlanCache] = None,
        chaos: Union[None, str, FaultPlan, FaultInjector] = None,
    ):
        self.config = config if config is not None else FleetConfig()
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.chaos = self._resolve_chaos(chaos)
        self.router = FleetRouter(self.config.replicas,
                                  registry=self.registry)
        # The admission window equals the batching deadline: that is
        # how long an admitted request can occupy its replica's queue
        # before the batcher is guaranteed to have flushed it.
        self.admission = AdmissionController(
            self.router, queue_depth=self.config.queue_depth,
            window_s=self.config.deadline_s, registry=self.registry,
            shed_record_cap=self.config.shed_record_cap)
        self.shared_cache = (shared_cache if shared_cache is not None
                             else SharedPlanCache(registry=self.registry))
        self.health = HealthTracker(
            self.config.replicas, registry=self.registry,
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s)
        self.slo = FleetStats(registry=self.registry)
        # Parent-side planner: its PlanCache is the fleet-local tier,
        # consulted before the shared tier on every distinct shape.
        self._planner = Dispatcher(
            self.config.arch,
            cache=PlanCache(self.config.cache_capacity,
                            registry=self.registry),
            backends=self.config.backends,
            registry=self.registry, tracer=tracer,
            chaos=self.chaos, plan_retries=self.config.plan_retries,
        )
        if self.chaos is not None:
            self.shared_cache.install_chaos(self.chaos)
        self._cache_token = cache_version_token(
            self.config.arch, self._planner.backends)
        self._last_engine_stats: Dict[int, dict] = {}
        # The fleet's monotone virtual clock: breaker cool-downs and
        # failover backoff live on it.  Each replay advances it by the
        # replay's makespan; advance_clock models idle time in between.
        self._epoch_s = 0.0

    def _resolve_chaos(self, chaos) -> Optional[FaultInjector]:
        if chaos is None:
            chaos = FaultPlan.from_env()
        if chaos is None:
            return None
        if isinstance(chaos, str):
            chaos = FaultPlan.parse(chaos)
        if isinstance(chaos, FaultPlan):
            chaos = FaultInjector(chaos, self.config.replicas)
        if not isinstance(chaos, FaultInjector):
            raise ReproError(
                "chaos must be a spec string, FaultPlan, or FaultInjector; "
                "got %r" % (type(chaos).__name__,))
        return chaos

    # ------------------------------------------------------------------
    # Virtual clock
    # ------------------------------------------------------------------
    @property
    def clock_s(self) -> float:
        """The fleet's virtual-clock position (breaker timeline)."""
        return self._epoch_s

    def advance_clock(self, dt_s: float) -> float:
        """Model idle virtual time (e.g. to let breakers cool down)."""
        if dt_s < 0:
            raise ReproError("cannot advance the clock backwards")
        self._epoch_s += dt_s
        return self._epoch_s

    # ------------------------------------------------------------------
    # Planning (two cache tiers)
    # ------------------------------------------------------------------
    @property
    def cache_token(self) -> str:
        """Version token the shared tier keys this fleet's plans under."""
        return self._cache_token

    def plan_for(self, problem):
        """Plan one shape: local tier, then shared tier, then the DSE.

        Transient build failures (injected or real) are retried up to
        ``plan_retries`` times by the planner before surfacing.
        """
        key = plan_key(problem, self.config.arch)
        plan = self._planner.cache.lookup(key)
        if plan is not None:
            return plan
        plan = self.shared_cache.get_or_build(
            self._cache_token, key,
            lambda: self._planner.build_plan_retrying(problem))
        self._planner.cache.put(key, plan)
        return plan

    def invalidate_plans(self, reason: str = "manual") -> int:
        """Drop both cache tiers (e.g. after a preset change)."""
        dropped = self.shared_cache.invalidate(reason)
        self._planner.cache.clear()
        return dropped

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def serve_trace(self, requests: Sequence[ConvRequest]) -> FleetResult:
        """Replay a trace through the fleet; see the module docstring."""
        reqs = list(requests)
        by_req_id = {r.req_id: r for r in reqs}
        if len(by_req_id) != len(reqs):
            raise ReproError("fleet traces need unique request ids")
        shed_before = self.admission.shed
        failovers_before = self.health.failovers
        hedges_before = self.health.hedges
        self.health.begin_replay()

        # Phase 1: route + admit in virtual-time order.
        shards: List[List[ConvRequest]] = [
            [] for _ in range(self.config.replicas)]
        assignment: Dict[int, Optional[int]] = {}
        for request in sorted(reqs, key=lambda r: r.arrival_s):
            replica = self.admission.admit(request)
            assignment[request.req_id] = replica
            if replica is not None:
                shards[replica].append(request)

        # Phase 2: pre-plan each replica's distinct shapes through the
        # local -> shared cache tiers, and seed the replicas with the
        # winners so they replan nothing.
        seeds: List[List[Tuple[tuple, object]]] = []
        for shard in shards:
            seen = {}
            for request in shard:
                key = plan_key(request.problem, self.config.arch)
                if key not in seen:
                    seen[key] = self.plan_for(request.problem)
            seeds.append(list(seen.items()))
        try:
            pickle.dumps(seeds)
        except Exception:
            # Unpicklable plans cannot ride to pool workers; replicas
            # will rebuild them (deterministically identical).
            seeds = [[] for _ in shards]

        # Phase 3: replay with failover (see _replay_with_failover).
        engine_kwargs = self.config.engine_kwargs()
        work = [(replica, shard, seeds[replica])
                for replica, shard in enumerate(shards) if shard]
        region_start_s = self.tracer.now_s() if self.tracer else 0.0
        responses_by_id, makespan, abandoned = self._replay_with_failover(
            work, engine_kwargs, by_req_id, region_start_s)

        # Phase 4: account the leftovers and reassemble.
        for request in abandoned:
            self.admission.record_abandoned(request)
        self.slo.record_makespan(makespan)
        self._epoch_s += makespan
        shed_new = self.admission.shed - shed_before
        records = list(self.admission.shed_records)
        return FleetResult(
            responses=[responses_by_id.get(r.req_id) for r in reqs],
            assignments=[assignment[r.req_id] for r in reqs],
            shed=records[len(records) - min(shed_new, len(records)):],
            failovers=self.health.failovers - failovers_before,
            hedges=self.health.hedges - hedges_before,
        )

    # ------------------------------------------------------------------
    def _replay_with_failover(self, work, engine_kwargs, by_req_id,
                              region_start_s):
        """Phase 3: dispatch shards, absorbing failures round by round.

        Returns ``(responses_by_id, makespan, abandoned_requests)``.
        Invariants: a request id is answered at most once (exactly-once
        guard) and a shard is attempted at most ``1 + failover_retries``
        times, each retry on a breaker-approved replica with
        exponential virtual-clock backoff.
        """
        now = self._epoch_s
        loads = {replica: len(shard) for replica, shard, _ in work}
        abandoned: List[ConvRequest] = []

        # Breaker-aware initial placement: a shard whose home replica
        # is breaker-open fails over before it is ever dispatched.
        pending = []
        for replica, shard, seed in work:
            if self.health.allow(replica, now):
                pending.append((replica, shard, seed))
                continue
            target = self._failover_target(replica, now, loads)
            if target is None:
                abandoned.extend(shard)
                continue
            self.health.record_failover("breaker-open")
            loads[target] = loads.get(target, 0) + len(shard)
            pending.append((target, shard, seed))

        responses_by_id: Dict[int, ConvResponse] = {}
        makespan = 0.0
        round_no = 0
        while pending:
            payloads = []
            for replica, shard, seed in pending:
                directives = (self.chaos.replica_directives(replica)
                              if self.chaos is not None else None)
                payloads.append(
                    (replica, engine_kwargs, shard, seed, directives))
            results = parallel_map(
                _serve_replica_shard, payloads,
                jobs=self.config.jobs, merge_obs=False, on_error="return",
            )
            failed = []
            succeeded = []
            for (replica, shard, seed), res in zip(pending, results):
                if isinstance(res, ParallelFailure):
                    reason = "pool"
                elif res.get("failed"):
                    reason = res["failed"]
                else:
                    reason = None
                if reason is not None:
                    self.health.record_failure(replica, reason, now)
                    failed.append((replica, shard, seed, reason))
                    continue
                self.health.record_success(replica, now)
                self._absorb_result(res, by_req_id, responses_by_id,
                                    region_start_s)
                succeeded.append((replica, shard, seed, res))
            makespan = max(
                [makespan]
                + [self._effective_clock(item, engine_kwargs, now, loads)
                   for item in succeeded])
            if not failed:
                break
            round_no += 1
            if round_no > self.config.failover_retries:
                for _, shard, _, _ in failed:
                    abandoned.extend(shard)
                break
            now += self.config.retry_backoff_s * (2 ** (round_no - 1))
            pending = []
            for replica, shard, seed, reason in failed:
                target = self._failover_target(replica, now, loads)
                if target is None:
                    abandoned.extend(shard)
                    continue
                self.health.record_failover(reason)
                loads[target] = loads.get(target, 0) + len(shard)
                pending.append((target, shard, seed))
        return responses_by_id, makespan, abandoned

    def _effective_clock(self, item, engine_kwargs, now, loads) -> float:
        """A successful shard's makespan contribution, hedging included.

        With hedging enabled, a straggler shard (injected ``slow`` or a
        clock past ``hedge_factor`` x its unhedged siblings') is
        speculatively re-served on a healthy peer; the faster attempt's
        clock bounds the makespan.  Responses are NOT taken from the
        hedge — both attempts are bit-identical by construction, so the
        primary's already-absorbed responses stand and the exactly-once
        guarantee is never at risk.
        """
        replica, shard, seed, res = item
        if not self.config.hedge or not res.get("slow"):
            return res["clock_s"]
        target = self._failover_target(replica, now, loads)
        if target is None:
            return res["clock_s"]
        self.health.record_hedge()
        directives = (self.chaos.replica_directives(target)
                      if self.chaos is not None else None)
        hedge = _serve_replica_shard(
            (target, engine_kwargs, shard, seed, directives))
        if hedge.get("failed") or not hedge.get("responses"):
            return res["clock_s"]
        return min(res["clock_s"], hedge["clock_s"])

    def _failover_target(self, failed: int, now: float,
                         loads: Dict[int, int]) -> Optional[int]:
        """The survivor a failed shard re-routes to, or None.

        Deterministic: the least-loaded breaker-approved replica other
        than the failed one (ties break toward the lowest index); the
        failed replica itself is retried only when it is the sole
        approved replica left.
        """
        candidates = [r for r in range(self.config.replicas)
                      if r != failed and self.health.allow(r, now)]
        if not candidates:
            return failed if self.health.allow(failed, now) else None
        return min(candidates, key=lambda r: (loads.get(r, 0), r))

    def _absorb_result(self, res, by_req_id, responses_by_id,
                       region_start_s) -> None:
        """Fold one successful shard attempt into the fleet surfaces."""
        replica = res["replica"]
        if res["obs"] is None:
            # The snapshot was lost in transit (obs-drop fault): count
            # it and keep serving — telemetry loss must never fail a
            # request.
            self.health.record_obs_drop()
        else:
            self._merge_replica_obs(replica, res["obs"], region_start_s)
        self._last_engine_stats[replica] = res["stats"]
        for response in res["responses"]:
            if response.req_id in responses_by_id:
                raise ReproError(
                    "duplicate response for request %d (exactly-once "
                    "reassembly violated)" % response.req_id)
            request = by_req_id[response.req_id]
            self.slo.record_response(replica, request, response)
            responses_by_id[response.req_id] = response

    def _merge_replica_obs(self, replica: int, snapshot: dict,
                           offset_s: float) -> None:
        """Fold a replica's telemetry into the fleet surfaces.

        Counters/histograms sum into fleet-wide totals; virtual spans
        land on per-replica track names (``replica3/kernel``) so the
        Perfetto export shows each replica's modeled timeline.
        """
        merge_registry_snapshot(snapshot["registry"], registry=self.registry)
        if self.tracer is None:
            return
        for entry in snapshot["tracer"].get("spans", ()):
            virtual = entry["track"] == VIRTUAL_TRACK
            category = entry["category"]
            if virtual:
                category = "replica%d/%s" % (replica, category)
            args = dict(entry.get("args", {}))
            args["replica"] = replica
            self.tracer.add_span(
                entry["name"], category,
                entry["start_s"] + (0.0 if virtual else offset_s),
                entry["duration_s"], track=entry["track"],
                args=args, depth=entry.get("depth", 0),
            )

    # ------------------------------------------------------------------
    # Stats / export
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serializable fleet snapshot (SLOs, admission, caches)."""
        snap = self.slo.snapshot(
            self.config.replicas,
            admission_stats=self.admission.stats(),
            router_stats=self.router.stats(),
            shared_cache_stats=self.shared_cache.stats(),
            health_stats=self.health.stats(self._epoch_s),
        )
        for replica, engine_stats in self._last_engine_stats.items():
            snap["replicas"][str(replica)]["engine"] = {
                "mean_batch_size": engine_stats["mean_batch_size"],
                "throughput_rps": engine_stats["throughput_rps"],
                "plan_cache_hit_rate":
                    engine_stats["plan_cache"]["hit_rate"],
            }
        return snap

    def format_stats(self) -> str:
        return format_fleet_stats(self.stats())

    def export_trace(self, path: str) -> dict:
        """Write the fleet's merged span log as Chrome trace-event JSON."""
        if self.tracer is None:
            raise ReproError(
                "fleet has no tracer; construct with tracer=... to trace")
        return write_chrome_trace(path, self.tracer, registry=self.registry)
