"""The fleet engine: N serving replicas behind one deterministic front.

:class:`FleetEngine` replays a request trace through ``replicas``
independent :class:`~repro.serve.engine.ServeEngine` instances:

1. **Route + admit** (parent, virtual-time order) — every arrival is
   hashed to its shape-affinity replica, bounded by the admission
   window, spilled or shed per its priority class
   (:mod:`repro.fleet.router`, :mod:`repro.fleet.admission`).
2. **Pre-plan** (parent) — each distinct admitted shape is planned once
   through the two cache tiers: the fleet-local LRU, then the
   :class:`~repro.fleet.shared_cache.SharedPlanCache`, and only then
   the design-space explorer.  The winning plans are shipped to the
   replicas so every replica starts hot.
3. **Replay** — each replica serves its sub-trace through
   :func:`repro.parallel.parallel_map` (one work item per replica;
   ``jobs=1`` runs the identical code in-process), with per-replica
   telemetry snapshots merged back into the fleet's registry and
   tracer — replica spans appear in the Perfetto export on
   ``replica<i>/...`` tracks.
4. **Reassemble + account** — responses are stitched back into request
   order by id (bit-identical at any ``jobs`` degree), and the SLO
   surface (:mod:`repro.fleet.slo`) records latency percentiles,
   deadline misses, and the fleet makespan.

Determinism contract: with a queue bound loose enough that nothing is
shed, the fleet's responses are **bit-identical** to a single
``ServeEngine`` serially replaying the same trace — same outputs, same
winning backends — because routing only partitions the trace and every
replica runs the same deterministic planning and execution stack.
Batching composition (and therefore latency metadata) legitimately
differs: each replica batches only the requests routed to it.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.obs.exporters import write_chrome_trace
from repro.obs.metrics import Registry
from repro.obs.snapshot import merge_registry_snapshot, worker_snapshot
from repro.obs.tracing import Tracer, VIRTUAL_TRACK
from repro.parallel import parallel_map
from repro.serve.dispatch import Dispatcher
from repro.serve.engine import ServeEngine
from repro.serve.plan_cache import PlanCache
from repro.serve.request import ConvRequest, ConvResponse, plan_key
from repro.fleet.admission import AdmissionController, ShedRecord
from repro.fleet.router import FleetRouter
from repro.fleet.shared_cache import SharedPlanCache, cache_version_token
from repro.fleet.slo import FleetStats, format_fleet_stats

__all__ = [
    "MAX_REPLICAS",
    "MAX_QUEUE_DEPTH",
    "check_replicas",
    "check_queue_depth",
    "FleetConfig",
    "FleetResult",
    "FleetEngine",
]

#: Replica-count bound: past this, per-replica traffic is too thin for
#: shape affinity to keep any cache hot.
MAX_REPLICAS = 64

#: Admission queue-depth bound per replica.
MAX_QUEUE_DEPTH = 4096


def check_replicas(replicas: int) -> int:
    """Validate a replica count; the error names the valid range."""
    if not isinstance(replicas, int) or not 1 <= replicas <= MAX_REPLICAS:
        raise ReproError(
            "invalid replica count %r; valid range: 1..%d"
            % (replicas, MAX_REPLICAS))
    return replicas


def check_queue_depth(queue_depth: int) -> int:
    """Validate a per-replica queue depth; the error names the range."""
    if (not isinstance(queue_depth, int)
            or not 1 <= queue_depth <= MAX_QUEUE_DEPTH):
        raise ReproError(
            "invalid queue depth %r; valid range: 1..%d"
            % (queue_depth, MAX_QUEUE_DEPTH))
    return queue_depth


@dataclass
class FleetConfig:
    """Everything needed to (re)build the fleet and its replicas.

    The per-replica fields mirror :class:`~repro.serve.engine.ServeEngine`
    so a fleet of one is configured exactly like a single engine.
    """

    arch: GPUArchitecture = KEPLER_K40M
    replicas: int = 4
    deadline_s: float = 1e-3
    max_batch: int = 32
    cache_capacity: int = 128
    executor: str = "reference"
    backends: Optional[Tuple[str, ...]] = None
    queue_depth: int = 64
    jobs: Optional[Union[int, str]] = None

    def __post_init__(self):
        check_replicas(self.replicas)
        check_queue_depth(self.queue_depth)
        if self.backends is not None:
            self.backends = tuple(self.backends)

    def engine_kwargs(self) -> dict:
        """Constructor kwargs for one replica's ServeEngine."""
        return {
            "arch": self.arch,
            "deadline_s": self.deadline_s,
            "max_batch": self.max_batch,
            "cache_capacity": self.cache_capacity,
            "executor": self.executor,
            "backends": self.backends,
        }


@dataclass
class FleetResult:
    """One trace replay: responses aligned with the input requests.

    ``responses[i]`` is the response for ``requests[i]`` or ``None`` if
    it was shed; ``assignments[i]`` is its replica (or ``None``).
    """

    responses: List[Optional[ConvResponse]]
    assignments: List[Optional[int]]
    shed: List[ShedRecord] = field(default_factory=list)

    @property
    def served(self) -> int:
        return sum(1 for r in self.responses if r is not None)

    @property
    def shed_count(self) -> int:
        return len(self.shed)


def _serve_replica_shard(payload) -> dict:
    """Replay one replica's sub-trace; module-level so pools pickle it.

    Runs against a replica-private registry/tracer and ships both back
    as a snapshot, so fleet telemetry is complete and identical whether
    this runs in-process (``jobs=1``) or in a pool worker.
    """
    replica, engine_kwargs, requests, seeds = payload
    registry = Registry()
    tracer = Tracer()
    engine = ServeEngine(registry=registry, tracer=tracer, **engine_kwargs)
    for key, plan in seeds:
        engine.plan_cache.put(key, plan)
    responses = engine.serve_trace(requests)
    return {
        "replica": replica,
        "responses": responses,
        "clock_s": engine.clock_s,
        "stats": engine.stats(),
        "obs": worker_snapshot(registry, tracer),
    }


class FleetEngine:
    """Shape-affinity-routed fleet of serving replicas."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        shared_cache: Optional[SharedPlanCache] = None,
    ):
        self.config = config if config is not None else FleetConfig()
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.router = FleetRouter(self.config.replicas,
                                  registry=self.registry)
        # The admission window equals the batching deadline: that is
        # how long an admitted request can occupy its replica's queue
        # before the batcher is guaranteed to have flushed it.
        self.admission = AdmissionController(
            self.router, queue_depth=self.config.queue_depth,
            window_s=self.config.deadline_s, registry=self.registry)
        self.shared_cache = (shared_cache if shared_cache is not None
                             else SharedPlanCache(registry=self.registry))
        self.slo = FleetStats(registry=self.registry)
        # Parent-side planner: its PlanCache is the fleet-local tier,
        # consulted before the shared tier on every distinct shape.
        self._planner = Dispatcher(
            self.config.arch,
            cache=PlanCache(self.config.cache_capacity,
                            registry=self.registry),
            backends=self.config.backends,
            registry=self.registry, tracer=tracer,
        )
        self._cache_token = cache_version_token(
            self.config.arch, self._planner.backends)
        self._last_engine_stats: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Planning (two cache tiers)
    # ------------------------------------------------------------------
    @property
    def cache_token(self) -> str:
        """Version token the shared tier keys this fleet's plans under."""
        return self._cache_token

    def plan_for(self, problem):
        """Plan one shape: local tier, then shared tier, then the DSE."""
        key = plan_key(problem, self.config.arch)
        plan = self._planner.cache.lookup(key)
        if plan is not None:
            return plan
        plan = self.shared_cache.get_or_build(
            self._cache_token, key,
            lambda: self._planner.build_plan(problem))
        self._planner.cache.put(key, plan)
        return plan

    def invalidate_plans(self, reason: str = "manual") -> int:
        """Drop both cache tiers (e.g. after a preset change)."""
        dropped = self.shared_cache.invalidate(reason)
        self._planner.cache.clear()
        return dropped

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def serve_trace(self, requests: Sequence[ConvRequest]) -> FleetResult:
        """Replay a trace through the fleet; see the module docstring."""
        reqs = list(requests)
        by_req_id = {r.req_id: r for r in reqs}
        if len(by_req_id) != len(reqs):
            raise ReproError("fleet traces need unique request ids")
        shed_mark = len(self.admission.shed_records)

        # Phase 1: route + admit in virtual-time order.
        shards: List[List[ConvRequest]] = [
            [] for _ in range(self.config.replicas)]
        assignment: Dict[int, Optional[int]] = {}
        for request in sorted(reqs, key=lambda r: r.arrival_s):
            replica = self.admission.admit(request)
            assignment[request.req_id] = replica
            if replica is not None:
                shards[replica].append(request)

        # Phase 2: pre-plan each replica's distinct shapes through the
        # local -> shared cache tiers, and seed the replicas with the
        # winners so they replan nothing.
        seeds: List[List[Tuple[tuple, object]]] = []
        for shard in shards:
            seen = {}
            for request in shard:
                key = plan_key(request.problem, self.config.arch)
                if key not in seen:
                    seen[key] = self.plan_for(request.problem)
            seeds.append(list(seen.items()))

        # Phase 3: replay each replica (in-process when jobs=1, via the
        # process pool otherwise — same worker function either way).
        payloads = []
        engine_kwargs = self.config.engine_kwargs()
        for replica, shard in enumerate(shards):
            if not shard:
                continue
            payloads.append(
                (replica, engine_kwargs, shard, seeds[replica]))
        try:
            pickle.dumps(seeds)
        except Exception:
            # Unpicklable plans cannot ride to pool workers; replicas
            # will rebuild them (deterministically identical).
            payloads = [(r, kw, shard, []) for r, kw, shard, _ in payloads]
        region_start_s = self.tracer.now_s() if self.tracer else 0.0
        results = parallel_map(
            _serve_replica_shard, payloads,
            jobs=self.config.jobs, merge_obs=False,
        )

        # Phase 4: merge telemetry, account SLOs, reassemble.
        responses_by_id: Dict[int, ConvResponse] = {}
        makespan = 0.0
        for res in results:
            replica = res["replica"]
            self._merge_replica_obs(replica, res["obs"], region_start_s)
            self._last_engine_stats[replica] = res["stats"]
            makespan = max(makespan, res["clock_s"])
            for response in res["responses"]:
                request = by_req_id[response.req_id]
                self.slo.record_response(replica, request, response)
                responses_by_id[response.req_id] = response
        self.slo.record_makespan(makespan)
        return FleetResult(
            responses=[responses_by_id.get(r.req_id) for r in reqs],
            assignments=[assignment[r.req_id] for r in reqs],
            shed=self.admission.shed_records[shed_mark:],
        )

    def _merge_replica_obs(self, replica: int, snapshot: dict,
                           offset_s: float) -> None:
        """Fold a replica's telemetry into the fleet surfaces.

        Counters/histograms sum into fleet-wide totals; virtual spans
        land on per-replica track names (``replica3/kernel``) so the
        Perfetto export shows each replica's modeled timeline.
        """
        merge_registry_snapshot(snapshot["registry"], registry=self.registry)
        if self.tracer is None:
            return
        for entry in snapshot["tracer"].get("spans", ()):
            virtual = entry["track"] == VIRTUAL_TRACK
            category = entry["category"]
            if virtual:
                category = "replica%d/%s" % (replica, category)
            args = dict(entry.get("args", {}))
            args["replica"] = replica
            self.tracer.add_span(
                entry["name"], category,
                entry["start_s"] + (0.0 if virtual else offset_s),
                entry["duration_s"], track=entry["track"],
                args=args, depth=entry.get("depth", 0),
            )

    # ------------------------------------------------------------------
    # Stats / export
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serializable fleet snapshot (SLOs, admission, caches)."""
        snap = self.slo.snapshot(
            self.config.replicas,
            admission_stats=self.admission.stats(),
            router_stats=self.router.stats(),
            shared_cache_stats=self.shared_cache.stats(),
        )
        for replica, engine_stats in self._last_engine_stats.items():
            snap["replicas"][str(replica)]["engine"] = {
                "mean_batch_size": engine_stats["mean_batch_size"],
                "throughput_rps": engine_stats["throughput_rps"],
                "plan_cache_hit_rate":
                    engine_stats["plan_cache"]["hit_rate"],
            }
        return snap

    def format_stats(self) -> str:
        return format_fleet_stats(self.stats())

    def export_trace(self, path: str) -> dict:
        """Write the fleet's merged span log as Chrome trace-event JSON."""
        if self.tracer is None:
            raise ReproError(
                "fleet has no tracer; construct with tracer=... to trace")
        return write_chrome_trace(path, self.tracer, registry=self.registry)
