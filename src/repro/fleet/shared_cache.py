"""The fleet's shared plan-cache tier with versioned invalidation.

Every replica keeps its own LRU :class:`~repro.serve.plan_cache.PlanCache`
(the *local* tier, hot because the router pins shapes to replicas); the
fleet keeps one :class:`SharedPlanCache` above them (the *shared* tier).
A shape that misses locally — a cold replica, a spilled request, an LRU
eviction — is looked up here before the design-space explorer runs, so
the fleet pays the planning cost for a shape once, not once per replica.

Entries are keyed by ``(version token, plan key)``.  The token (see
:func:`cache_version_token`) digests everything a cached plan depends
on: the package version, the architecture preset's resource parameters,
and the enabled backend portfolio.  Change any of those — a new arch
preset, a different ``--backends`` subset, an upgrade that retunes the
cost model — and old entries become unreachable instead of silently
serving stale plans.  :meth:`SharedPlanCache.invalidate` additionally
drops everything on demand (e.g. an operator rolling a config change).

The shared tier is also the fleet's one *trusted-at-a-distance* store:
a corrupted entry would poison every replica at once.  So each entry
carries a content checksum (BLAKE2 over the plan's pickled bytes),
validated on every lookup; a mismatch **quarantines** the entry — it is
dropped, counted (``fleet_shared_cache_corruptions_total``), and
rebuilt by the next ``get_or_build`` — never served.  An installed
:class:`~repro.chaos.injector.FaultInjector` exercises exactly these
paths: ``cache-corrupt`` tampers a stored checksum, ``version-skew``
makes a lookup surface as stale (dropped and counted under
``fleet_shared_cache_skew_total``).
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.chaos.plan import FaultKind
from repro.errors import ReproError
from repro.gpu.arch import GPUArchitecture
from repro.obs.metrics import Registry

__all__ = ["SharedPlanCache", "cache_version_token", "plan_checksum"]


def plan_checksum(plan: object) -> Optional[str]:
    """Content digest of a plan, or None when it cannot be pickled.

    Unpicklable plans skip validation (there are no bytes to rot in
    transit for an object that never leaves this process).
    """
    try:
        blob = pickle.dumps(plan)
    except Exception:
        return None
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def cache_version_token(
    arch: GPUArchitecture,
    backends: Optional[Sequence[str]] = None,
) -> str:
    """Digest of everything a cached plan's validity depends on.

    Walks the architecture preset's dataclass fields rather than just
    its name, so editing a preset in place (say, re-tuning Pascal's
    bank width) invalidates as reliably as renaming it.
    """
    import repro

    parts = ["repro=%s" % getattr(repro, "__version__", "?")]
    if is_dataclass(arch):
        for f in sorted(fields(arch), key=lambda f: f.name):
            parts.append("%s=%r" % (f.name, getattr(arch, f.name, None)))
    else:
        parts.append("arch=%r" % (getattr(arch, "name", arch),))
    parts.append("backends=%s" % ",".join(sorted(backends or ())))
    blob = "|".join(parts)
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


class SharedPlanCache:
    """Bounded LRU of kernel plans shared by every replica in a fleet."""

    def __init__(self, capacity: int = 1024,
                 registry: Optional[Registry] = None):
        if capacity < 1:
            raise ReproError("shared plan cache capacity must be at least 1")
        self.capacity = capacity
        self.registry = registry if registry is not None else Registry()
        self._entries: "OrderedDict[Tuple[str, Tuple], object]" = OrderedDict()
        self._hits = self.registry.counter(
            "fleet_shared_cache_hits_total",
            "Shared-tier lookups served from cache")
        self._misses = self.registry.counter(
            "fleet_shared_cache_misses_total",
            "Shared-tier lookups that missed")
        self._publishes = self.registry.counter(
            "fleet_shared_cache_publishes_total",
            "Plans published into the shared tier")
        self._invalidations = self.registry.counter(
            "fleet_shared_cache_invalidations_total",
            "Explicit whole-tier invalidations, by reason",
            labelnames=("reason",))
        self._evictions = self.registry.counter(
            "fleet_shared_cache_evictions_total",
            "LRU evictions from the shared tier")
        self._entries_gauge = self.registry.gauge(
            "fleet_shared_cache_entries", "Plans currently in the shared tier")
        self._corruptions = self.registry.counter(
            "fleet_shared_cache_corruptions_total",
            "Entries quarantined after a read-side checksum mismatch")
        self._skews = self.registry.counter(
            "fleet_shared_cache_skew_total",
            "Entries dropped as version-skewed on lookup")
        self._chaos = None

    # ------------------------------------------------------------------
    def install_chaos(self, injector) -> None:
        """Attach a fault injector (cache-corrupt / version-skew hooks)."""
        self._chaos = injector

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, token: str, key: Tuple) -> Optional[object]:
        """Return the shared plan for (token, key), or None on a miss.

        A plan published under a different version token never hits —
        that is the versioned-invalidation contract.  Every hit is
        checksum-validated before it is served: an entry whose stored
        digest no longer matches its content is quarantined (dropped
        and counted) and reported as a miss, so the caller rebuilds.
        """
        full_key = (token, key)
        entry = self._entries.get(full_key)
        if entry is None:
            self._misses.inc()
            return None
        plan, checksum = entry
        if (self._chaos is not None
                and self._chaos.take(FaultKind.VERSION_SKEW) is not None):
            # Injected skew: the entry surfaces under a token that no
            # longer describes this fleet — unreachable, by contract.
            del self._entries[full_key]
            self._skews.inc()
            self._misses.inc()
            self._entries_gauge.set(len(self._entries))
            return None
        if checksum is not None and plan_checksum(plan) != checksum:
            del self._entries[full_key]
            self._corruptions.inc()
            self._misses.inc()
            self._entries_gauge.set(len(self._entries))
            return None
        self._entries.move_to_end(full_key)
        self._hits.inc()
        return plan

    def publish(self, token: str, key: Tuple, plan: object) -> None:
        """Insert (or refresh) a plan under the given version token."""
        full_key = (token, key)
        checksum = plan_checksum(plan)
        if (self._chaos is not None
                and self._chaos.take(FaultKind.CACHE_CORRUPT) is not None):
            # Injected rot: damage the stored digest so the read-side
            # validation must catch it (the plan object itself is left
            # alone — a corrupted entry must never be *served*).
            checksum = "corrupt!" + (checksum or "")
        if full_key in self._entries:
            self._entries.move_to_end(full_key)
        self._entries[full_key] = (plan, checksum)
        self._publishes.inc()
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._entries_gauge.set(len(self._entries))

    def get_or_build(self, token: str, key: Tuple,
                     build: Callable[[], object]) -> object:
        """Shared-tier memoization: lookup, else build and publish."""
        plan = self.lookup(token, key)
        if plan is None:
            plan = build()
            self.publish(token, key, plan)
        return plan

    def invalidate(self, reason: str = "manual") -> int:
        """Drop every entry; returns the number invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        self._invalidations.inc(reason=reason)
        self._entries_gauge.set(0)
        return dropped

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(round(self._hits.total()))

    @property
    def misses(self) -> int:
        return int(round(self._misses.total()))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "publishes": int(round(self._publishes.total())),
            "evictions": int(round(self._evictions.total())),
            "invalidations": int(round(self._invalidations.total())),
            "corruptions": int(round(self._corruptions.total())),
            "version_skews": int(round(self._skews.total())),
            "hit_rate": self.hit_rate,
        }
