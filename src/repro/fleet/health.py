"""Replica health: circuit breakers, failure accounting, degradation.

Every replica gets a :class:`CircuitBreaker` on the fleet's *virtual*
clock (the same modeled-seconds unit the engines keep), so breaker
behavior is exactly reproducible — no wall-clock racing:

* **closed** — traffic flows; consecutive failures are counted and
  reset on any success.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  the replica receives no new shards until ``cooldown_s`` virtual
  seconds pass.
* **half-open** — after the cool-down, one probe shard is allowed:
  success closes the breaker, failure re-opens it (and restarts the
  cool-down).

The :class:`HealthTracker` owns one breaker per replica plus the obs
series operators page on:

* ``fleet_replica_failures_total{replica,reason}`` — every failed
  shard attempt, by reason (``crash`` / ``wedge`` / ``pool``);
* ``fleet_failovers_total{reason}`` — shards re-routed off a failed or
  breaker-opened replica;
* ``fleet_breaker_transitions_total{replica,to}`` — breaker state
  changes;
* ``fleet_breaker_state{replica}`` gauge — 0 closed, 1 half-open,
  2 open;
* ``fleet_hedges_total`` / ``fleet_obs_dropped_total`` — hedged
  straggler dispatches and tolerated telemetry losses.

The **degradation level** summarizes all of it for the SLO surface:
``healthy`` (no open breakers, nothing failed over in the last replay),
``degraded`` (failovers happened or a minority of breakers are open),
``critical`` (half or more of the replicas are breaker-open).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs.metrics import Registry

__all__ = ["CircuitBreaker", "HealthTracker", "DEGRADATION_LEVELS"]

#: Degradation levels, best to worst.
DEGRADATION_LEVELS = ("healthy", "degraded", "critical")

_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure breaker on a caller-supplied virtual clock."""

    def __init__(self, failure_threshold: int = 3,
                 cooldown_s: float = 0.05):
        if failure_threshold < 1:
            raise ReproError(
                "breaker failure threshold must be >= 1, got %d"
                % failure_threshold)
        if cooldown_s <= 0:
            raise ReproError("breaker cooldown must be positive, got %g"
                             % cooldown_s)
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at_s = 0.0

    # ------------------------------------------------------------------
    def state(self, now_s: float) -> str:
        """The breaker state at virtual time ``now_s``.

        An open breaker whose cool-down has elapsed reports (and
        becomes) half-open — the transition is lazy but deterministic,
        because it depends only on ``now_s``.
        """
        if (self._state == "open"
                and now_s >= self._opened_at_s + self.cooldown_s):
            self._state = "half-open"
        return self._state

    def allow(self, now_s: float) -> bool:
        """May this replica receive a shard at ``now_s``?

        Closed and half-open allow (half-open is the probe); open
        refuses.
        """
        return self.state(now_s) != "open"

    def record_success(self, now_s: float) -> Optional[str]:
        """A shard attempt succeeded; returns a new state or None."""
        prior = self.state(now_s)
        self._consecutive_failures = 0
        if prior != "closed":
            self._state = "closed"
            return "closed"
        return None

    def record_failure(self, now_s: float) -> Optional[str]:
        """A shard attempt failed; returns a new state or None."""
        prior = self.state(now_s)
        self._consecutive_failures += 1
        if prior == "half-open":
            # The probe failed: straight back to open, fresh cool-down.
            self._state = "open"
            self._opened_at_s = now_s
            return "open"
        if (prior == "closed"
                and self._consecutive_failures >= self.failure_threshold):
            self._state = "open"
            self._opened_at_s = now_s
            return "open"
        return None

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures


class HealthTracker:
    """Per-replica breakers plus the fleet's failure/recovery series."""

    def __init__(
        self,
        n_replicas: int,
        registry: Optional[Registry] = None,
        failure_threshold: int = 3,
        cooldown_s: float = 0.05,
    ):
        if n_replicas < 1:
            raise ReproError("health tracker needs at least 1 replica")
        self.n_replicas = n_replicas
        self.registry = registry if registry is not None else Registry()
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(failure_threshold=failure_threshold,
                           cooldown_s=cooldown_s)
            for _ in range(n_replicas)
        ]
        self._failures = self.registry.counter(
            "fleet_replica_failures_total",
            "Failed shard attempts, by replica and reason",
            labelnames=("replica", "reason"))
        self._failovers = self.registry.counter(
            "fleet_failovers_total",
            "Shards re-routed off a failed or breaker-open replica, "
            "by reason",
            labelnames=("reason",))
        self._transitions = self.registry.counter(
            "fleet_breaker_transitions_total",
            "Circuit-breaker state transitions, by replica and new state",
            labelnames=("replica", "to"))
        self._state_gauge = self.registry.gauge(
            "fleet_breaker_state",
            "Breaker state by replica: 0 closed, 1 half-open, 2 open",
            labelnames=("replica",))
        self._hedges = self.registry.counter(
            "fleet_hedges_total",
            "Hedged dispatches of straggler-replica shards")
        self._obs_dropped = self.registry.counter(
            "fleet_obs_dropped_total",
            "Replica telemetry snapshots dropped and tolerated")
        self._failovers_last_replay = 0

    # ------------------------------------------------------------------
    def begin_replay(self) -> None:
        """Reset the per-replay failover count (degradation input)."""
        self._failovers_last_replay = 0

    def allow(self, replica: int, now_s: float) -> bool:
        return self.breakers[replica].allow(now_s)

    def record_success(self, replica: int, now_s: float) -> None:
        transition = self.breakers[replica].record_success(now_s)
        self._note_transition(replica, transition, now_s)

    def record_failure(self, replica: int, reason: str,
                       now_s: float) -> None:
        self._failures.inc(replica=replica, reason=reason)
        transition = self.breakers[replica].record_failure(now_s)
        self._note_transition(replica, transition, now_s)

    def record_failover(self, reason: str) -> None:
        self._failovers.inc(reason=reason)
        self._failovers_last_replay += 1

    def record_hedge(self) -> None:
        self._hedges.inc()

    def record_obs_drop(self) -> None:
        self._obs_dropped.inc()

    def _note_transition(self, replica: int, transition: Optional[str],
                         now_s: float) -> None:
        if transition is not None:
            self._transitions.inc(replica=replica, to=transition)
        self._state_gauge.set(
            _STATE_VALUES[self.breakers[replica].state(now_s)],
            replica=replica)

    # ------------------------------------------------------------------
    def states(self, now_s: float) -> Dict[int, str]:
        return {replica: breaker.state(now_s)
                for replica, breaker in enumerate(self.breakers)}

    def open_count(self, now_s: float) -> int:
        return sum(1 for state in self.states(now_s).values()
                   if state == "open")

    def degradation(self, now_s: float) -> str:
        """The fleet's current level: healthy / degraded / critical."""
        open_breakers = self.open_count(now_s)
        if open_breakers * 2 >= self.n_replicas:
            return "critical"
        if open_breakers or self._failovers_last_replay:
            return "degraded"
        return "healthy"

    @property
    def failovers(self) -> int:
        return int(round(self._failovers.total()))

    @property
    def failures(self) -> int:
        return int(round(self._failures.total()))

    @property
    def hedges(self) -> int:
        return int(round(self._hedges.total()))

    @property
    def obs_dropped(self) -> int:
        return int(round(self._obs_dropped.total()))

    def stats(self, now_s: float) -> dict:
        """JSON-serializable health snapshot for the SLO surface."""
        return {
            "degradation": self.degradation(now_s),
            "breakers": {str(replica): state
                         for replica, state in self.states(now_s).items()},
            "failures": self.failures,
            "failures_by_reason": {
                "%s/%s" % (labels["replica"], labels["reason"]):
                    int(round(value))
                for labels, value in self._failures.series()
            },
            "failovers": self.failovers,
            "failovers_by_reason": {
                labels["reason"]: int(round(value))
                for labels, value in self._failovers.series()
            },
            "hedges": self.hedges,
            "obs_dropped": self.obs_dropped,
        }
