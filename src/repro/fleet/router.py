"""Shape-affinity routing: hash problem shapes to engine replicas.

The whole point of running N replicas instead of one bigger engine is
that each replica's plan cache (and batcher) stays *hot* for the shapes
it owns: planning a shape runs the design-space explorer, so scattering
the same shape across replicas multiplies that cost by N and dilutes
batching.  The router therefore assigns every
:class:`~repro.conv.tensors.ConvProblem` a stable home replica by
hashing its shape with a seeded BLAKE2 digest — *not* Python's
``hash()``, whose string salting varies per process and would break
the fleet's cross-process determinism guarantee.

Routing degrades under load in priority order (see
:mod:`repro.fleet.admission` for the class semantics):

* the affinity replica has room (or the request is ``critical``) —
  routed home, an **affinity hit**;
* the affinity replica is full and the class may spill (``standard``) —
  routed to the least-loaded replica with room, a **spill**;
* nowhere has room (or the class never spills, ``batch``) — the router
  returns ``None`` and the admission controller sheds the request.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.conv.tensors import ConvProblem
from repro.errors import ReproError
from repro.obs.metrics import Registry

__all__ = ["FleetRouter", "shape_hash"]


def shape_hash(problem: ConvProblem, salt: str = "") -> int:
    """A process-stable 64-bit hash of a problem shape.

    Deterministic across processes and Python versions (unlike
    ``hash()`` on anything containing a string), so a trace routes
    identically in the fleet parent, in pool workers, and in CI.

    Generalized axes (stride, dilation, groups, layout) extend the
    hashed blob only when non-default, so every default-axis shape
    keeps the exact replica assignment it had before the axes existed.
    """
    axes = ""
    if not problem.has_default_axes:
        axes = "|s%d|d%d|g%d|%s" % (
            problem.stride, problem.dilation, problem.groups,
            problem.layout.value,
        )
    blob = "%d|%d|%d|%d|%d|%s%s|%s" % (
        problem.height, problem.width, problem.channels, problem.filters,
        problem.kernel_size, problem.padding.value, axes, salt,
    )
    digest = hashlib.blake2b(blob.encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class FleetRouter:
    """Stable shape-to-replica assignment with load-aware spilling."""

    def __init__(self, n_replicas: int,
                 registry: Optional[Registry] = None):
        if n_replicas < 1:
            raise ReproError("a fleet needs at least 1 replica, got %d"
                             % n_replicas)
        self.n_replicas = n_replicas
        self.registry = registry if registry is not None else Registry()
        self._affinity_hits = self.registry.counter(
            "fleet_router_affinity_hits_total",
            "Requests routed to their shape-affinity replica")
        self._spills = self.registry.counter(
            "fleet_router_spills_total",
            "Requests routed off-affinity to the least-loaded replica")

    # ------------------------------------------------------------------
    def affinity(self, problem: ConvProblem) -> int:
        """The replica this shape calls home."""
        return shape_hash(problem) % self.n_replicas

    def route(
        self,
        problem: ConvProblem,
        depths: List[int],
        queue_depth: int,
        priority: str = "standard",
    ) -> Optional[int]:
        """Pick a replica for one request, or ``None`` to shed.

        ``depths`` is the per-replica modeled queue occupancy at the
        request's arrival time; ``queue_depth`` is the admission bound.
        """
        if len(depths) != self.n_replicas:
            raise ReproError(
                "got %d queue depths for %d replicas"
                % (len(depths), self.n_replicas))
        target = self.affinity(problem)
        if priority == "critical" or depths[target] < queue_depth:
            self._affinity_hits.inc()
            return target
        if priority == "batch":
            # Batch-class work never spills: chasing a cold replica's
            # queue would evict cache-hot interactive capacity for work
            # that tolerates shedding.
            return None
        spill = min(range(self.n_replicas), key=lambda r: (depths[r], r))
        if depths[spill] < queue_depth:
            self._spills.inc()
            return spill
        return None

    # ------------------------------------------------------------------
    @property
    def affinity_hits(self) -> int:
        return int(round(self._affinity_hits.total()))

    @property
    def spills(self) -> int:
        return int(round(self._spills.total()))

    @property
    def affinity_hit_rate(self) -> float:
        """Affinity hits over routed requests (1.0 before any routing)."""
        routed = self.affinity_hits + self.spills
        return self.affinity_hits / routed if routed else 1.0

    def stats(self) -> dict:
        return {
            "replicas": self.n_replicas,
            "affinity_hits": self.affinity_hits,
            "spills": self.spills,
            "affinity_hit_rate": self.affinity_hit_rate,
        }
