"""repro.parallel — sharded process-pool execution for sweep-shaped work.

Every enumerate-and-evaluate hot path in the repo (design-space
exploration in :mod:`repro.core.dse`, figure sweeps in
:mod:`repro.bench`, batch dispatch in :mod:`repro.serve.dispatch`) fans
out through one primitive, :func:`parallel_map`, which guarantees
result order and telemetry totals identical to the serial path — see
docs/PARALLEL.md for the executor semantics and the determinism
contract, and :mod:`repro.obs.snapshot` for how worker telemetry is
merged back losslessly.

Quick start::

    from repro.parallel import parallel_map, resolve_jobs

    jobs = resolve_jobs()          # --jobs arg > REPRO_JOBS env > 1
    results = parallel_map(fn, items, jobs=jobs)
"""

from repro.parallel.executor import (
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    JOBS_ENV_VAR,
    ParallelFailure,
    parallel_map,
    resolve_jobs,
    shard,
    shutdown_pools,
)

__all__ = [
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT_S",
    "JOBS_ENV_VAR",
    "ParallelFailure",
    "parallel_map",
    "resolve_jobs",
    "shard",
    "shutdown_pools",
]
