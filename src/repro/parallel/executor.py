"""Process-pool work-queue executor with deterministic sharding.

:func:`parallel_map` is the one primitive every sweep-shaped hot path
in the repo fans out through (DSE candidate ranking, figure sweeps,
batch dispatch).  Its contract:

* **Determinism** — items are split into contiguous shards
  (:func:`shard`), each shard is evaluated in item order, and results
  are reassembled in input order regardless of which worker finished
  first.  For a pure ``fn``, ``parallel_map(fn, items, jobs=n)``
  returns exactly ``[fn(x) for x in items]`` for every ``n``.
* **Degree selection** — ``jobs`` comes from the explicit argument,
  else the ``REPRO_JOBS`` environment variable, else 1 (serial).
  ``jobs=1`` runs fully in-process: no pool, no pickling, bit-identical
  to the pre-parallel code path.
* **Telemetry completeness** — each worker chunk runs against a fresh
  process-local :mod:`repro.obs` registry/tracer; the resulting
  snapshot travels back with the results and is merged into the
  parent's live surfaces (see :mod:`repro.obs.snapshot`), so counter
  totals under ``jobs>1`` equal the serial totals.
* **Graceful degradation** — anything that prevents the pool from
  working (no ``multiprocessing`` support, an unpicklable ``fn``,
  running inside a daemonic pool worker, a chunk exhausting its
  retries) falls back to in-process serial evaluation of the affected
  items instead of failing the sweep.
* **Bounded failure handling** — each shard gets ``timeout_s`` to
  complete and ``retries`` re-submissions with exponential backoff; a
  timed-out pool is discarded (its workers may be wedged) and rebuilt.
  Every retry, timeout, and pool restart increments an obs counter
  (``parallel_retries_total`` / ``parallel_timeouts_total`` /
  ``parallel_pool_restarts_total``) on the process-wide registry, so
  executor trouble is visible in every stats dump — and because the
  counters live on the ordinary registry, a nested caller's worker
  snapshot carries them up in the standard merge.
* **Structured failure outcomes** — ``on_error="return"`` converts a
  per-item exception into a :class:`ParallelFailure` placeholder at
  that item's position instead of raising, so orchestration layers
  (the serving fleet's failover loop) can own recovery per item.

Worker pools are cached per job count and reused across calls, so a
sweep that calls :func:`parallel_map` hundreds of times pays the fork
cost once.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ParallelError

__all__ = [
    "DEFAULT_TIMEOUT_S",
    "DEFAULT_RETRIES",
    "DEFAULT_BACKOFF_S",
    "JOBS_ENV_VAR",
    "ParallelFailure",
    "resolve_jobs",
    "shard",
    "parallel_map",
    "shutdown_pools",
]


@dataclass(frozen=True)
class ParallelFailure:
    """Placeholder for one item whose evaluation raised.

    Returned (in the item's position) by ``parallel_map(...,
    on_error="return")`` so a caller can tell exactly which items
    failed, with what, without losing the survivors.
    """

    index: int            # position of the failed item in the input
    error: str            # str(exception)
    exc_type: str = "Exception"

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Per-shard wall-clock budget before the shard is retried/fallen back.
DEFAULT_TIMEOUT_S = 300.0

#: Re-submissions of a failed or timed-out shard before serial fallback.
DEFAULT_RETRIES = 2

#: Base of the exponential backoff between shard retries.
DEFAULT_BACKOFF_S = 0.05

#: Shards per worker: small enough to amortize dispatch overhead, large
#: enough that an uneven shard does not serialize the tail.
_SHARDS_PER_WORKER = 4

_POOLS: dict = {}            # job count -> live multiprocessing.Pool
_ATEXIT_REGISTERED = False


# ----------------------------------------------------------------------
# Degree selection
# ----------------------------------------------------------------------

def resolve_jobs(jobs: Optional[Union[int, str]] = None) -> int:
    """The effective worker count: argument > ``REPRO_JOBS`` > 1.

    ``"auto"`` (or 0) selects ``os.cpu_count()``.  Invalid values raise
    :class:`~repro.errors.ParallelError` so a typo'd environment never
    silently serializes a sweep.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        jobs = raw
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ParallelError(
                    "invalid job count %r (expected a positive integer, "
                    "0, or 'auto')" % (jobs,))
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ParallelError("job count must be >= 1, got %d" % jobs)
    return jobs


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------

def shard(items: Sequence, shards: int) -> List[list]:
    """Split ``items`` into at most ``shards`` contiguous, near-equal
    runs — deterministically, preserving order, never returning an
    empty shard.  ``shard(range(5), 3)`` is ``[[0, 1], [2, 3], [4]]``.
    """
    if shards < 1:
        raise ParallelError("shard count must be >= 1, got %d" % shards)
    items = list(items)
    if not items:
        return []
    shards = min(shards, len(items))
    base, extra = divmod(len(items), shards)
    out, start = [], 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _run_chunk(payload):
    """Evaluate one shard in a worker process.

    Runs against a fresh process-local obs surface so the returned
    snapshot contains exactly this shard's telemetry — pools are reused
    across calls and must not leak a previous shard's counters.
    """
    fn, chunk, want_obs = payload
    if want_obs:
        from repro.obs.metrics import reset_registry
        from repro.obs.snapshot import worker_snapshot
        from repro.obs.tracing import reset_tracer

        registry = reset_registry()
        tracer = reset_tracer()
        results = [fn(item) for item in chunk]
        return results, worker_snapshot(registry, tracer)
    return [fn(item) for item in chunk], None


def _eval_items(fn, items, on_error: str, base: int = 0) -> list:
    """In-process evaluation honoring the ``on_error`` policy.

    ``base`` is the global index of ``items[0]`` so a chunk's failures
    report input positions, not chunk-local ones.
    """
    if on_error == "raise":
        return [fn(item) for item in items]
    out = []
    for offset, item in enumerate(items):
        try:
            out.append(fn(item))
        except Exception as exc:
            out.append(ParallelFailure(
                index=base + offset, error=str(exc),
                exc_type=type(exc).__name__))
    return out


def _executor_counters():
    """The executor's failure-handling counters, on the live registry.

    Fetched lazily per call: worker processes reset their registry per
    chunk, and these counters must land on whichever registry is live
    so snapshot merges carry them to the parent like any other series.
    """
    from repro.obs.metrics import get_registry

    registry = get_registry()
    return (
        registry.counter(
            "parallel_retries_total",
            "Shard re-submissions after a failed or timed-out attempt"),
        registry.counter(
            "parallel_timeouts_total",
            "Shard attempts that exceeded their wall-clock budget"),
        registry.counter(
            "parallel_pool_restarts_total",
            "Worker pools discarded (and rebuilt) after a timeout"),
    )


def _in_worker() -> bool:
    """True when already inside a daemonic pool worker (no nesting)."""
    try:
        import multiprocessing
        return bool(multiprocessing.current_process().daemon)
    except Exception:
        return True


# ----------------------------------------------------------------------
# Pool management
# ----------------------------------------------------------------------

def _get_pool(jobs: int):
    """The cached pool for this job count, or None if pools don't work."""
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(jobs)
    if pool is not None:
        return pool
    try:
        import multiprocessing
        pool = multiprocessing.Pool(processes=jobs)
    except Exception:
        return None
    _POOLS[jobs] = pool
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_pools)
        _ATEXIT_REGISTERED = True
    return pool


def _discard_pool(jobs: int) -> None:
    """Terminate a pool whose workers may be wedged (post-timeout)."""
    pool = _POOLS.pop(jobs, None)
    if pool is not None:
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass


def shutdown_pools() -> None:
    """Terminate every cached worker pool (atexit / test teardown)."""
    for jobs in list(_POOLS):
        _discard_pool(jobs)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------

def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: Optional[Union[int, str]] = None,
    *,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    merge_obs: bool = True,
    on_error: str = "raise",
) -> list:
    """``[fn(x) for x in items]``, fanned out over a process pool.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one) and pure with respect to the result
    ordering guarantee; see the module docstring for the full contract.
    Worker exceptions are retried per shard and, after ``retries``
    re-submissions, re-raised from an in-process serial evaluation of
    that shard — so a deterministic error in ``fn`` surfaces with its
    natural traceback no matter the degree.  With ``on_error="return"``
    they are not re-raised: each failing item yields a
    :class:`ParallelFailure` in its position instead.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if retries < 0:
        raise ParallelError("retries must be >= 0, got %d" % retries)
    if timeout_s is not None and timeout_s <= 0:
        raise ParallelError("timeout_s must be positive or None")
    if on_error not in ("raise", "return"):
        raise ParallelError(
            "on_error must be 'raise' or 'return', got %r" % (on_error,))
    if jobs <= 1 or len(items) < 2 or _in_worker():
        return _eval_items(fn, items, on_error)
    try:
        pickle.dumps(fn)
    except Exception:
        # Closures, lambdas, locally-defined callables: stay serial.
        return _eval_items(fn, items, on_error)
    pool = _get_pool(jobs)
    if pool is None:
        return _eval_items(fn, items, on_error)
    retry_counter, timeout_counter, restart_counter = _executor_counters()

    chunks = shard(items, jobs * _SHARDS_PER_WORKER)
    merge_from = None
    if merge_obs:
        from repro.obs.snapshot import merge_worker_snapshot
        from repro.obs.tracing import get_tracer

        merge_from = merge_worker_snapshot
        region_start_s = get_tracer().now_s()

    bases = []
    next_base = 0
    for chunk in chunks:
        bases.append(next_base)
        next_base += len(chunk)
    pending = [pool.apply_async(_run_chunk, ((fn, chunk, merge_obs),))
               for chunk in chunks]
    results: List[list] = [None] * len(chunks)
    for index, chunk in enumerate(chunks):
        outcome = None
        for attempt in range(retries + 1):
            handle = pending[index] if attempt == 0 else None
            if handle is None:
                retry_counter.inc()
                time.sleep(backoff_s * (2 ** (attempt - 1)))
                pool = _get_pool(jobs)
                if pool is None:
                    break
                handle = pool.apply_async(
                    _run_chunk, ((fn, chunk, merge_obs),))
            try:
                outcome = handle.get(timeout_s)
                break
            except Exception as exc:
                if isinstance(exc, _timeout_error()):
                    # The worker may be wedged mid-task; a retry on the
                    # same pool could queue behind it forever.
                    timeout_counter.inc()
                    restart_counter.inc()
                    _discard_pool(jobs)
                    pending = pending[:index + 1] + [None] * (
                        len(chunks) - index - 1)
                outcome = None
        if outcome is None:
            # Retries exhausted (or the pool died): evaluate this shard
            # in-process.  A deterministic exception in fn surfaces
            # here with its natural traceback (or as ParallelFailure
            # placeholders under on_error="return"); telemetry lands
            # directly on the live surfaces.
            results[index] = _eval_items(fn, chunk, on_error,
                                         base=bases[index])
            continue
        chunk_results, obs_snapshot = outcome
        if merge_from is not None and obs_snapshot is not None:
            merge_from(obs_snapshot, offset_s=region_start_s,
                       extra_args={"shard": index})
        results[index] = chunk_results
    return [value for chunk_results in results for value in chunk_results]


def _timeout_error():
    """The executor's wait-timeout exception type (import-light)."""
    import multiprocessing
    return multiprocessing.TimeoutError
