"""Algorithm 1 executed instruction-by-instruction on the SIMT
interpreter (:mod:`repro.gpu.device`).

This is the audit twin of :class:`~repro.core.special.SpecialCaseKernel`:
the same thread layout, circular shared-memory row window, register
window, constant-memory filter broadcasts and prefetch schedule — but
*executed*, with every warp's byte addresses observed by the memory
models as they happen, instead of being costed analytically per site.

``run_traced`` returns both the convolution output (verified exact) and
the executed-trace :class:`~repro.gpu.trace.KernelCost`; the test suite
checks the latter against ``SpecialCaseKernel.cost()`` counter by
counter.  To keep the audit exact the kernel requires an aligned
problem: the output extent must tile the block grid exactly (no partial
blocks, no predicated edges).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.conv.tensors import ConvProblem
from repro.core.bankwidth import matched_vector
from repro.core.config import SpecialCaseConfig
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.device import DeviceExecutor
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3
from repro.gpu.trace import KernelCost
from repro.obs.perf.profiler import maybe_profile

__all__ = ["InterpretedSpecialKernel"]


class InterpretedSpecialKernel:
    """Executable Algorithm 1 with a fully observed memory trace."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config: SpecialCaseConfig = SpecialCaseConfig(block_w=64, block_h=4),
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        self.arch = arch
        self.config = config
        self.bank_policy = bank_policy
        self.n = matched_vector(arch).n if matched else 1
        self.name = "special-interpreted[%s,n=%d]" % (arch.name, self.n)

    # ------------------------------------------------------------------
    def run_traced(
        self, image: np.ndarray, filters: np.ndarray
    ) -> Tuple[np.ndarray, KernelCost]:
        img = np.asarray(image, dtype=np.float32)
        flt = np.asarray(filters, dtype=np.float32)
        if img.ndim != 2:
            raise ShapeError("image must be 2-D (H, W)")
        if flt.ndim == 2:
            flt = flt[np.newaxis]
        if flt.ndim != 3 or flt.shape[1] != flt.shape[2]:
            raise ShapeError("filters must be (F, K, K)")

        k = flt.shape[1]
        f_count = flt.shape[0]
        cfg = self.config
        n = self.n
        cfg.validate(k, n, self.arch.warp_size)

        problem = ConvProblem(
            height=img.shape[0], width=img.shape[1], channels=1,
            filters=f_count, kernel_size=k,
        )
        oh, ow = problem.out_height, problem.out_width
        if oh % cfg.block_h or ow % cfg.block_w:
            raise ConfigurationError(
                "the audit kernel needs the %dx%d output to tile the "
                "%dx%d block exactly" % (oh, ow, cfg.block_h, cfg.block_w)
            )

        ex = DeviceExecutor(self.arch, self.bank_policy)
        g_img = ex.alloc_global(img, "image")
        g_out = ex.alloc_global(np.zeros(f_count * oh * ow, np.float32), "out")
        c_flt = ex.alloc_constant(flt, "filters")

        blocks_y = oh // cfg.block_h
        blocks_x = ow // cfg.block_w
        threads = cfg.threads(n)
        img_w = problem.width

        # Opt-in sampling (REPRO_PROFILE=1): the per-block interpreter
        # loop is the simulator's hottest Python path.
        with maybe_profile("simt.special"):
            for by in range(blocks_y):
                for bx in range(blocks_x):
                    ex.run_block(
                        self._block_program, (bx, by), threads,
                        g_img, g_out, c_flt,
                        bx * cfg.block_w, by * cfg.block_h,
                        img_w, oh, ow, k, f_count,
                    )

        cost = ex.finish(
            name=self.name,
            registers_per_thread=cfg.registers_per_thread(k, n),
            grid=Dim3(x=blocks_x, y=blocks_y),
            software_prefetch=True,
        )
        out = g_out.data.reshape(f_count, oh, ow)
        return out, cost

    # ------------------------------------------------------------------
    def _block_program(self, block, g_img, g_out, c_flt,
                       in_x0, in_y0, img_w, oh, ow, k, f_count):
        cfg = self.config
        n = self.n
        w, h = cfg.block_w, cfg.block_h
        row_floats = cfg.smem_row_floats(k, n)
        window_units = 1 + math.ceil((k - 1) / n)
        halo_units = math.ceil((k - 1) / n)
        threads = cfg.threads(n)

        smem = block.shared(k * row_floats, "rows")

        # Per-thread "registers": the K x (window_units*n) pixel window.
        regwin = np.zeros((threads, k, window_units * n), dtype=np.float32)

        def load_row_from_gmem(warp, row):
            """The cooperative global read of one image row (+ halo)."""
            base = (in_y0 + row) * img_w + in_x0
            idx = base + warp.lane * n
            vals = warp.gload(g_img, idx, vector=n, site="gm.load_row")
            halo_vals = None
            if halo_units and warp.warp_id == 0:
                hidx = base + w + np.arange(halo_units, dtype=np.int64) * n
                halo_vals = warp.gload(g_img, hidx, vector=n,
                                       site="gm.load_row_halo")
            return vals, halo_vals

        def store_row_to_smem(warp, slot, vals, halo_vals):
            off = slot * row_floats
            warp.sstore(smem, off + warp.lane * n, vals, vector=n,
                        site="sm.store_row")
            if halo_vals is not None:
                hoff = off + w + np.arange(halo_units, dtype=np.int64) * n
                warp.sstore(smem, hoff, halo_vals, vector=n,
                            site="sm.store_row_halo")

        def load_window_row(warp, slot, dest_row):
            """Each thread reads its K+n-1 pixel slice as vector units."""
            off = slot * row_floats
            for u in range(window_units):
                vals = warp.sload(smem, off + (warp.lane + u) * n, vector=n,
                                  site="sm.load_window")
                regwin[warp.lane, dest_row, u * n:(u + 1) * n] = \
                    np.reshape(vals, (-1, n))

        # Line 1: stage the first K rows.
        for r in range(k):
            for warp in block.warps():
                vals, halo = load_row_from_gmem(warp, r)
                store_row_to_smem(warp, r % k, vals, halo)
        block.sync()

        # Line 3: the first K-1 rows into registers.
        for r in range(k - 1):
            for warp in block.warps():
                load_window_row(warp, r % k, r)

        for out_r in range(h):
            # Line 5: prefetch the next row (predicted off on the last
            # iteration, exactly like the real kernel's bounds check).
            next_row = out_r + k
            prefetched = {}
            if next_row < h + k - 1:
                for warp in block.warps():
                    prefetched[warp.warp_id] = load_row_from_gmem(warp, next_row)

            # Line 6: the latest staged row into the register window.
            for warp in block.warps():
                load_window_row(warp, (out_r + k - 1) % k, k - 1)

            # Lines 7-8: n convolutions per thread per filter.
            for f in range(f_count):
                for warp in block.warps():
                    acc = np.zeros((warp.lane.size, n), dtype=np.float32)
                    for dy in range(k):
                        for dx in range(k):
                            tap = warp.cload(c_flt, f * k * k + dy * k + dx,
                                             site="cm.filter_tap")
                            pix = np.stack(
                                [regwin[warp.lane, dy, dx + j] for j in range(n)],
                                axis=1,
                            )
                            acc = warp.fma(acc, pix, tap[:, np.newaxis])
                    out_base = f * oh * ow + (in_y0 + out_r) * ow + in_x0
                    warp.gstore(g_out, out_base + warp.lane * n, acc,
                                vector=n, site="gm.store_out")

            block.sync()
            # Line 10: the prefetched row replaces the oldest slot.
            if prefetched:
                for warp in block.warps():
                    vals, halo = prefetched[warp.warp_id]
                    store_row_to_smem(warp, out_r % k, vals, halo)
            block.sync()

            # Rotate the register window (pure register movement).
            regwin[:, : k - 1] = regwin[:, 1:]
