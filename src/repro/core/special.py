"""The special-case convolution kernel: one input channel (paper Sec. 3).

The kernel partitions the output plane into ``H x W`` blocks (Fig. 4).
A thread block of ``W / n`` threads sweeps the block top to bottom, one
output row per step (Fig. 5); each thread produces ``n`` contiguous
output pixels per row and keeps a ``K x (K + n - 1)`` pixel window in
registers.  Shared memory holds a circular window of ``K`` image rows;
the next row is prefetched from global memory into registers while the
current row's convolutions execute, and stored to shared memory behind a
barrier (Algorithm 1).  Filters live in constant memory and are read at
the same tap by every thread in a warp — pure broadcasts.

Two entry points:

* :meth:`SpecialCaseKernel.run` executes the algorithm *functionally*
  (exact float32 results, verified against the reference convolution in
  the test suite), faithfully reproducing the circular shared-memory
  window and the register-row rotation;
* :meth:`SpecialCaseKernel.cost` replays every memory access site's
  actual warp address patterns through the bank/coalescing/broadcast
  models and returns the traffic ledger the timing model consumes.

``matched=False`` builds the paper's "unmatched kernel" of Fig. 7b: the
same algorithm with ``n`` forced to 1 (scalar ``float`` accesses), used
to quantify the cost of ignoring the bank-width model.

``dtype`` implements the paper's Sec. 6 future-work extension: for
``half``/``char`` data the mismatch factor grows to 4/8 on Kepler (2/4
on 4-byte-bank devices) and the kernel vectorizes accordingly.  The
data type parameterizes the *cost model* (element widths in every
traced access and in the resource/footprint accounting); functional
execution stays in float32 — the arithmetic is not the object of the
model, the traffic is.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.conv.blocking import BlockGrid
from repro.conv.tensors import ConvProblem, Padding
from repro.core.bankwidth import DataType, matched_vector
from repro.core.config import BEST_SPECIAL_CONFIG, SpecialCaseConfig
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, KernelTracer

__all__ = ["SpecialCaseKernel"]

_F32 = 4  # bytes per float


class SpecialCaseKernel:
    """Communication-optimized direct convolution for C = 1 (Sec. 3)."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config: SpecialCaseConfig = BEST_SPECIAL_CONFIG,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        dtype: DataType = DataType.FLOAT,
    ):
        self.arch = arch
        self.config = config
        self.matched = matched
        self.bank_policy = bank_policy
        self.dtype = dtype
        self.elem_bytes = dtype.width
        self.n = matched_vector(arch, dtype.width).n if matched else 1
        self.name = "special[%s,%s,n=%d]" % (arch.name, dtype.label, self.n)

    # ------------------------------------------------------------------
    def _check_problem(self, problem: ConvProblem) -> ConvProblem:
        if problem.channels != 1:
            raise ConfigurationError(
                "the special-case kernel handles one input channel, got %d"
                % problem.channels
            )
        valid = problem.as_valid()
        self.config.validate(valid.kernel_size, self.n, self.arch.warp_size)
        cm_bytes = valid.filters * valid.kernel_size ** 2 * self.elem_bytes
        if cm_bytes > self.arch.const_memory_size:
            raise ConfigurationError(
                "filters need %d bytes of constant memory, %s has %d"
                % (cm_bytes, self.arch.name, self.arch.const_memory_size)
            )
        return valid

    def launch_config(self, problem: ConvProblem) -> LaunchConfig:
        valid = self._check_problem(problem)
        grid = BlockGrid(valid, self.config.block_spec())
        k = valid.kernel_size
        s, d = valid.stride, valid.dilation
        return LaunchConfig(
            grid=Dim3(x=grid.blocks_x, y=grid.blocks_y),
            block=Dim3(x=self.config.threads(self.n)),
            registers_per_thread=self.config.registers_per_thread(
                k, self.n, s, d),
            smem_per_block=self.config.smem_bytes(
                k, self.n, self.elem_bytes, s, d),
        )

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: Optional[ConvProblem] = None,
    ) -> np.ndarray:
        """Execute Algorithm 1 and return the ``(F, OH, OW)`` output.

        Without ``problem`` the shape is inferred from the arrays with
        default axes; a full problem brings stride/dilation and NHWC
        layout along (always C = 1).
        """
        if problem is None:
            img = np.asarray(image, dtype=np.float32)
            if img.ndim == 3:
                if img.shape[0] != 1:
                    raise ShapeError("special-case kernel takes a single-channel image")
                img = img[0]
            if img.ndim != 2:
                raise ShapeError("image must be 2-D (H, W)")
            flt = np.asarray(filters, dtype=np.float32)
            if flt.ndim == 2:
                flt = flt[np.newaxis]
            if flt.ndim == 4:
                if flt.shape[1] != 1:
                    raise ShapeError("filters must have one channel")
                flt = flt[:, 0]
            if flt.ndim != 3 or flt.shape[1] != flt.shape[2]:
                raise ShapeError("filters must be (F, K, K) with square taps")

            problem = ConvProblem(
                height=img.shape[0],
                width=img.shape[1],
                channels=1,
                filters=flt.shape[0],
                kernel_size=flt.shape[1],
                padding=padding,
            )
        else:
            img = problem.chw_image(image)[0]
            flt = problem.check_filters(filters)[:, 0]
        valid = self._check_problem(problem)
        padded = problem.padded_image(img)[0]

        k = valid.kernel_size
        s, d = valid.stride, valid.dilation
        cfg = self.config
        grid = BlockGrid(valid, cfg.block_spec())
        out = np.empty((valid.filters, valid.out_height, valid.out_width),
                       dtype=np.float32)

        for view in grid:
            tile = view.extract(padded)          # block footprint incl. halo
            if s == 1 and d == 1:
                block_out = self._run_block(tile, flt, k)
            else:
                block_out = self._run_block_general(tile, flt, k, s, d)
            out[
                :,
                view.out_y0 : view.out_y0 + view.out_rows,
                view.out_x0 : view.out_x0 + view.out_cols,
            ] = block_out[:, : view.out_rows, : view.out_cols]
        return problem.layout_output(out)

    def _run_block(self, tile: np.ndarray, flt: np.ndarray, k: int) -> np.ndarray:
        """One thread block's sweep, with the circular SM row window.

        ``tile`` has ``H + K - 1`` rows; rows are staged through a
        K-slot circular buffer exactly as Algorithm 1 does, and the
        per-thread register window is modeled as the K - 1 retained rows
        plus the freshly loaded one.
        """
        cfg = self.config
        h, w = cfg.block_h, cfg.block_w
        f_count = flt.shape[0]
        block_out = np.zeros((f_count, h, w), dtype=np.float32)

        # Line 1: the first K rows of the block into shared memory.
        smem = [tile[r].copy() for r in range(k)]
        # Line 3: the first K - 1 rows into the threads' registers.
        reg_rows = [smem[r].copy() for r in range(k - 1)]

        for out_r in range(h):
            # Line 5: prefetch the next image row into registers.
            next_row_idx = out_r + k
            if next_row_idx < tile.shape[0]:
                prefetched = tile[next_row_idx].copy()
            else:
                prefetched = None
            # Line 6: the latest row from shared memory into registers.
            latest = smem[(out_r + k - 1) % k].copy()
            window = reg_rows + [latest]
            # Lines 7-8: n convolutions per thread for every filter.
            for f in range(f_count):
                acc = np.zeros(w, dtype=np.float32)
                for dy in range(k):
                    row = window[dy]
                    for dx in range(k):
                        acc += row[dx : dx + w] * flt[f, dy, dx]
                block_out[f, out_r] = acc
            # Line 10: the prefetched row replaces the oldest SM row.
            if prefetched is not None:
                smem[out_r % k] = prefetched
            reg_rows = window[1:]
        return block_out

    def _run_block_general(self, tile: np.ndarray, flt: np.ndarray, k: int,
                           stride: int, dilation: int) -> np.ndarray:
        """One block's sweep with strided output rows and dilated taps.

        The circular-window bookkeeping of :meth:`_run_block` assumes one
        fresh input row per output row; with stride the window advances
        ``stride`` rows per step and with dilation the tapped rows are
        ``dilation`` apart, so this path indexes the staged tile
        directly — the traffic model accounts for the changed reuse.
        """
        cfg = self.config
        h, w = cfg.block_h, cfg.block_w
        f_count = flt.shape[0]
        block_out = np.zeros((f_count, h, w), dtype=np.float32)
        for out_r in range(h):
            for f in range(f_count):
                acc = np.zeros(w, dtype=np.float32)
                for dy in range(k):
                    row = tile[out_r * stride + dy * dilation]
                    for dx in range(k):
                        lo = dx * dilation
                        acc += (row[lo : lo + (w - 1) * stride + 1 : stride]
                                * flt[f, dy, dx])
                block_out[f, out_r] = acc
        return block_out

    # ------------------------------------------------------------------
    # Traced cost
    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        """Replay the kernel's access sites through the memory models."""
        valid = self._check_problem(problem)
        cfg = self.config
        k = valid.kernel_size
        n = self.n
        launch = self.launch_config(problem)
        blocks = launch.total_blocks
        threads = cfg.threads(n)
        warps = math.ceil(threads / self.arch.warp_size)
        h = cfg.block_h
        f_count = valid.filters

        tracer = KernelTracer(self.arch, self.bank_policy)
        lanes = np.arange(self.arch.warp_size, dtype=np.int64)
        elem = self.elem_bytes
        unit = n * elem
        s, d = valid.stride, valid.dilation
        span = valid.span

        # K initial + (H - 1) prefetched rows at stride 1; strided blocks
        # advance s input rows per output row under the same span window.
        rows_per_block = (h - 1) * s + span
        footprint = (cfg.block_w - 1) * s + span   # input floats per row
        row_pattern = lanes * unit
        if s == 1:
            # --- global loads of image rows (coalesced vector units) ------
            tracer.gmem_read(
                row_pattern, unit, count=float(warps * rows_per_block * blocks),
                site="gm.load_row",
            )
            halo_units = math.ceil((span - 1) / n)
            if halo_units:
                halo_pattern = cfg.block_w * elem + np.arange(halo_units) * unit
                tracer.gmem_read(
                    halo_pattern, unit, count=float(rows_per_block * blocks),
                    site="gm.load_row_halo",
                )
        else:
            # Strided blocks still stage their full contiguous footprint
            # row (every s-th pixel plus dilated halo is in range), so the
            # cooperative load stays vectorized; the warp count changes.
            total_units = math.ceil(footprint / n)
            full_rounds = total_units // self.arch.warp_size
            tail_units = total_units % self.arch.warp_size
            if full_rounds:
                tracer.gmem_read(
                    row_pattern, unit,
                    count=float(full_rounds * rows_per_block * blocks),
                    site="gm.load_row",
                )
            if tail_units:
                tracer.gmem_read(
                    lanes[:tail_units] * unit, unit,
                    count=float(rows_per_block * blocks),
                    site="gm.load_row_halo",
                )

        # --- shared-memory staging of those rows -------------------------
        if s == 1:
            tracer.smem_write(
                row_pattern, unit, count=float(warps * rows_per_block * blocks),
                site="sm.store_row",
            )
            if halo_units:
                halo_sm = cfg.block_w * elem + np.arange(halo_units) * unit
                tracer.smem_write(
                    halo_sm, unit, count=float(rows_per_block * blocks),
                    site="sm.store_row_halo",
                )
        else:
            if full_rounds:
                tracer.smem_write(
                    row_pattern, unit,
                    count=float(full_rounds * rows_per_block * blocks),
                    site="sm.store_row",
                )
            if tail_units:
                tracer.smem_write(
                    lanes[:tail_units] * unit, unit,
                    count=float(rows_per_block * blocks),
                    site="sm.store_row_halo",
                )

        # --- per-iteration register loads from shared memory --------------
        # Each thread reads its (n-1)*s + span pixel row slice as vector
        # units (line 6); the initial priming rows are read the same way
        # (line 3).  Tap rows d apart with the window advancing s rows per
        # output row reuse k - s/d register rows (all k when s = 1, d = 1).
        slice_floats = (n - 1) * s + span
        window_units = math.ceil(slice_floats / n)
        fresh_taps = s // d if (s % d == 0 and s // d < k) else k
        row_reads = (k - fresh_taps) + h * fresh_taps
        for u in range(window_units):
            pattern = lanes * (n * s * elem) + u * unit
            tracer.smem_read(
                pattern, unit, count=float(warps * row_reads * blocks),
                site="sm.load_window",
            )

        # --- constant-memory filter taps: one broadcast per FMA round -----
        cm = self.arch
        working_set = f_count * k * k * elem
        hit = tracer.cmem.hit_rate(working_set)
        broadcasts = float(warps * h * f_count * k * k * blocks)
        tracer.cmem_read(np.zeros(cm.warp_size, dtype=np.int64), count=broadcasts,
                         site="cm.filter_tap")
        if hit < 1.0:
            # Constant-cache misses fall through to DRAM, once per miss.
            miss_reads = broadcasts * (1.0 - hit)
            tracer.gmem_read(np.zeros(1, dtype=np.int64), elem, count=miss_reads,
                             site="gm.cm_miss")

        # --- compute -------------------------------------------------------
        tracer.flops(2.0 * k * k * f_count * cfg.block_w * h * blocks)

        # --- output writeback (vector units, coalesced) ---------------------
        ow = valid.out_width
        write_pattern = lanes * unit
        if (ow * elem) % self.arch.gmem_transaction_size:
            # Output rows are generally not segment-aligned (OW = N-K+1);
            # sample an offset base as well and average implicitly by
            # splitting the count across the two alignments.
            tracer.gmem_write(write_pattern, unit,
                              count=float(warps * h * f_count * blocks) / 2.0,
                              site="gm.store_out")
            tracer.gmem_write(write_pattern + unit, unit,
                              count=float(warps * h * f_count * blocks) / 2.0,
                              site="gm.store_out_misaligned")
        else:
            tracer.gmem_write(write_pattern, unit,
                              count=float(warps * h * f_count * blocks),
                              site="gm.store_out")

        # --- barriers: two per row iteration plus the initial one -----------
        tracer.sync(float((2 * h + 1) * blocks))

        return tracer.finish(
            name=self.name, launch=launch, software_prefetch=True,
        )

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        """Estimated execution time for this kernel on ``problem``."""
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        """Achieved GFlop/s normalized by the nominal operation count."""
        return self.predict(problem, model).gflops(problem.flops)
