"""Algorithm 2 executed instruction-by-instruction on the SIMT
interpreter — the audit twin of
:class:`~repro.core.general.GeneralCaseKernel`.

The executed program reproduces the full Fig. 6 dataflow: cooperative
staging of ``C_SH`` channels of image blocks and transposed+padded
filters into shared memory, the ``TX x TY`` thread grid with the filter
dimension fastest, per-thread ``W_T + K - 1`` register rows feeding
``K`` FMA rounds, the vectorized conflict-free operand reads, and the
uncoalesced writeback.  Every access is observed by the memory models.

The analytic cost model makes two sampling simplifications the executed
trace does not: it prices the strided filter loads with four alignment
variants, and it allows fractional warp-request counts for cooperative
staging.  The audit therefore checks compute/barrier counters exactly
and the traffic counters within a tolerance band
(``tests/gpu/test_interpreter_audit_general.py``).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.conv.tensors import ConvProblem
from repro.core.bankwidth import matched_vector
from repro.core.config import GeneralCaseConfig
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.device import DeviceExecutor
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3
from repro.gpu.trace import KernelCost
from repro.obs.perf.profiler import maybe_profile

__all__ = ["InterpretedGeneralKernel"]


class InterpretedGeneralKernel:
    """Executable Algorithm 2 with a fully observed memory trace."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config: GeneralCaseConfig = GeneralCaseConfig(
            w=32, h=4, ftb=16, wt=16, ft=4, csh=2),
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        self.arch = arch
        self.config = config
        self.bank_policy = bank_policy
        self.n = matched_vector(arch).n if matched else 1
        self.name = "general-interpreted[%s,n=%d]" % (arch.name, self.n)

    # ------------------------------------------------------------------
    def run_traced(
        self, image: np.ndarray, filters: np.ndarray
    ) -> Tuple[np.ndarray, KernelCost]:
        img = np.asarray(image, dtype=np.float32)
        flt = np.asarray(filters, dtype=np.float32)
        if img.ndim != 3:
            raise ShapeError("image must be (C, H, W)")
        if flt.ndim != 4 or flt.shape[1] != img.shape[0]:
            raise ShapeError("filters must be (F, C, K, K) matching the image")
        k = flt.shape[2]
        if flt.shape[3] != k:
            raise ShapeError("filters must be square")

        cfg = self.config
        n = self.n
        cfg.validate(k, n, self.arch.warp_size)

        c_total, f_total = img.shape[0], flt.shape[0]
        problem = ConvProblem(
            height=img.shape[1], width=img.shape[2], channels=c_total,
            filters=f_total, kernel_size=k,
        )
        oh, ow = problem.out_height, problem.out_width
        if oh % cfg.h or ow % cfg.w:
            raise ConfigurationError(
                "the audit kernel needs the %dx%d output to tile the "
                "%dx%d block exactly" % (oh, ow, cfg.h, cfg.w))
        if f_total % cfg.ftb or c_total % cfg.csh:
            raise ConfigurationError(
                "the audit kernel needs F %% FTB == 0 and C %% CSH == 0")

        ex = DeviceExecutor(self.arch, self.bank_policy)
        g_img = ex.alloc_global(img, "image")
        g_flt = ex.alloc_global(flt, "filters")
        g_out = ex.alloc_global(np.zeros(f_total * oh * ow, np.float32), "out")

        blocks_y = oh // cfg.h
        blocks_x = ow // cfg.w
        fgroups = f_total // cfg.ftb
        # Opt-in sampling (REPRO_PROFILE=1): the per-block interpreter
        # loop is the simulator's hottest Python path.
        with maybe_profile("simt.general"):
            for fg in range(fgroups):
                for by in range(blocks_y):
                    for bx in range(blocks_x):
                        ex.run_block(
                            self._block_program, (bx, by), cfg.threads,
                            g_img, g_flt, g_out,
                            bx * cfg.w, by * cfg.h, fg,
                            problem, k,
                        )

        cost = ex.finish(
            name=self.name,
            registers_per_thread=cfg.registers_per_thread(k, n),
            grid=Dim3(x=fgroups, y=blocks_y * blocks_x),
            software_prefetch=True,
        )
        return g_out.data.reshape(f_total, oh, ow), cost

    # ------------------------------------------------------------------
    def _block_program(self, block, g_img, g_flt, g_out,
                       in_x0, in_y0, fg, problem, k):
        cfg = self.config
        n = self.n
        h, w = cfg.h, cfg.w
        img_h, img_w = problem.height, problem.width
        oh, ow = problem.out_height, problem.out_width
        c_total = problem.channels
        row_floats = w + k - 1
        img_rows = h + k - 1
        pad = cfg.smem_filter_pad(n)
        flt_row = cfg.ftb + pad
        taps = k * k

        sh_img = block.shared(cfg.csh * img_rows * row_floats, "shImg")
        sh_flt = block.shared(cfg.csh * taps * flt_row, "shFlt")

        threads = cfg.threads
        tx_of = np.arange(threads) % cfg.tx
        ty_of = np.arange(threads) // cfg.tx
        rows_of_ty = (np.arange(cfg.ty) * cfg.wt) // w
        cols_of_ty = (np.arange(cfg.ty) * cfg.wt) % w

        racc = np.zeros((threads, cfg.ft, cfg.wt), dtype=np.float32)

        def stage_image_chunk(c_lo):
            """Cooperative load of CSH channels of the image block."""
            units_per_row = math.ceil(row_floats / n)
            for ci in range(cfg.csh):
                c = c_lo + ci
                for r in range(img_rows):
                    gbase = c * img_h * img_w + (in_y0 + r) * img_w + in_x0
                    sbase = (ci * img_rows + r) * row_floats
                    done = 0
                    for warp in block.warps():
                        while done < units_per_row:
                            take = min(32, units_per_row - done)
                            lanes = np.arange(done, done + take)
                            vals = warp.gload(g_img, gbase + lanes * n,
                                              vector=n, site="gm.load_image")
                            warp.sstore(sh_img, sbase + lanes * n, vals,
                                        vector=n, site="sm.store_image")
                            done += take
                        break  # one warp streams the row; others next row

        def stage_filter_chunk(c_lo):
            """Load FTB filters' CSH*K*K values; store transposed+padded."""
            run = cfg.csh * taps
            stage = np.empty((cfg.ftb, run), dtype=np.float32)
            for warp in block.warps():
                for f_local in range(cfg.ftb):
                    f = fg * cfg.ftb + f_local
                    gbase = (f * c_total + c_lo) * taps
                    done = 0
                    while done < run:
                        take = min(32, run - done)
                        idx = gbase + np.arange(done, done + take)
                        stage[f_local, done:done + take] = warp.gload(
                            g_flt, idx, site="gm.load_filter")
                        done += take
                break
            # Transposed store: lane l covers (tap t, filter f), f fastest.
            total = cfg.ftb * run
            done = 0
            for warp in block.warps():
                while done < total:
                    take = min(32, total - done)
                    l = np.arange(done, done + take)
                    t_idx = l // cfg.ftb
                    f_idx = l % cfg.ftb
                    addr = t_idx * flt_row + f_idx
                    warp.sstore(sh_flt, addr, stage[f_idx, t_idx],
                                site="sm.store_filter")
                    done += take
                break

        first = True
        for c_lo in range(0, c_total, cfg.csh):
            stage_image_chunk(c_lo)
            stage_filter_chunk(c_lo)
            block.sync()
            if first:
                block.sync()   # Algorithm 2 line 6 (initial extra barrier)
                first = False

            for ci in range(cfg.csh):
                for j in range(k):
                    # Line 12: each thread's WT+K-1 register row.
                    rimg = np.zeros((threads, cfg.wt + k - 1), dtype=np.float32)
                    u_img = math.ceil((cfg.wt + k - 1) / n)
                    for warp in block.warps():
                        base = (
                            ci * (h + k - 1)
                            + rows_of_ty[ty_of[warp.lane]] + j
                        ) * row_floats + cols_of_ty[ty_of[warp.lane]]
                        for u in range(u_img):
                            # The tail unit is clamped back to stay in
                            # range (an overlapping aligned vector load);
                            # never below 0, which would mis-slice the
                            # register row when the row is narrower than
                            # one vector unit.
                            off = max(0, min(u * n, cfg.wt + k - 1 - n))
                            vals = warp.sload(sh_img, base + off, vector=n,
                                              site="sm.load_image_row")
                            rimg[warp.lane, off:off + n] = \
                                np.reshape(vals, (-1, n))
                    for kk in range(k):
                        # Line 14: FT filter values, vectorized.
                        rflt = np.zeros((threads, cfg.ft), dtype=np.float32)
                        u_flt = max(1, cfg.ft // n)
                        for warp in block.warps():
                            base = (ci * taps + j * k + kk) * flt_row \
                                + tx_of[warp.lane] * cfg.ft
                            for u in range(u_flt):
                                vals = warp.sload(sh_flt, base + u * n,
                                                  vector=n,
                                                  site="sm.load_filter_row")
                                rflt[warp.lane, u * n:(u + 1) * n] = \
                                    np.reshape(vals, (-1, n))
                        # Line 15: the FMA round.
                        for warp in block.warps():
                            window = rimg[warp.lane][:, kk:kk + cfg.wt]
                            racc[warp.lane] = warp.fma(
                                racc[warp.lane],
                                rflt[warp.lane][:, :, np.newaxis],
                                window[:, np.newaxis, :],
                            )
            block.sync()

        block.sync()           # drain the last prefetch stage (line 19)

        # Line 20: uncoalesced writeback (wide units along WT).
        wide_bytes = 16 if (cfg.wt * 4) % 16 == 0 else n * 4
        wide = wide_bytes // 4
        u_out = math.ceil(cfg.wt / wide)
        for ff in range(cfg.ft):
            for warp in block.warps():
                f_global = fg * cfg.ftb + tx_of[warp.lane] * cfg.ft + ff
                row = rows_of_ty[ty_of[warp.lane]]
                col = cols_of_ty[ty_of[warp.lane]]
                base = f_global * oh * ow + (in_y0 + row) * ow + in_x0 + col
                for u in range(u_out):
                    warp.gstore(
                        g_out, base + u * wide,
                        racc[warp.lane, ff, u * wide:(u + 1) * wide],
                        vector=wide, site="gm.store_out",
                    )
