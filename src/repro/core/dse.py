"""Design-space exploration (paper Sec. 5: "Through design space
exploration, we determined that the best block size ..." and Table 1).

The explorer enumerates kernel configurations over the same axes the
paper tabulates (W, H, F_TB, W_T, F_T, C_SH for the general case; W, H
for the special case), filters out configurations that violate the
divisibility constraints or cannot be resident on the device, evaluates
each survivor with the traced cost model + timing model on a
representative workload, and ranks them.  ``reproduce_table1`` runs the
search for the paper's three filter sizes and reports our best
configuration next to the paper's.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.conv.tensors import ConvProblem
from repro.core.config import GeneralCaseConfig, SpecialCaseConfig, TABLE1_CONFIGS
from repro.errors import ConfigurationError, LaunchConfigError, ResourceError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.timing import TimingModel
from repro.obs.metrics import get_registry
from repro.obs.perf.profiler import maybe_profile
from repro.obs.tracing import get_tracer
from repro.parallel import parallel_map

__all__ = [
    "RankedConfig",
    "enumerate_special_configs",
    "enumerate_general_configs",
    "explore_special",
    "explore_general",
    "best_config",
    "reproduce_table1",
    "DEFAULT_SPECIAL_PROBLEM",
    "default_general_problem",
]

#: Representative workload for ranking special-case configurations: a
#: large grayscale image with a moderate filter bank.
DEFAULT_SPECIAL_PROBLEM = ConvProblem.square(2048, 3, channels=1, filters=16)


def default_general_problem(kernel_size: int) -> ConvProblem:
    """Representative CNN layer for ranking general-case configurations."""
    return ConvProblem.square(128, kernel_size, channels=64, filters=128)


@dataclass(frozen=True)
class RankedConfig:
    """One explored configuration with its predicted performance."""

    config: object              # SpecialCaseConfig or GeneralCaseConfig
    gflops: float
    occupancy: float
    bound_by: str


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------

def enumerate_special_configs(
    widths: Sequence[int] = (64, 128, 256, 512),
    heights: Sequence[int] = (2, 4, 8, 16),
) -> List[SpecialCaseConfig]:
    return [
        SpecialCaseConfig(block_w=w, block_h=h)
        for w, h in itertools.product(widths, heights)
    ]


def enumerate_general_configs(
    kernel_size: int,
    n: int,
    arch: GPUArchitecture = KEPLER_K40M,
    widths: Sequence[int] = (16, 32, 64),
    heights: Sequence[int] = (2, 4, 8),
    ftbs: Sequence[int] = (16, 32, 64, 128),
    wts: Sequence[int] = (4, 8, 16),
    fts: Sequence[int] = (2, 4, 8, 16),
    cshs: Sequence[int] = (1, 2, 4),
) -> List[GeneralCaseConfig]:
    """All constraint-satisfying configurations of the Table 1 axes."""
    survivors = []
    for w, h, ftb, wt, ft, csh in itertools.product(
        widths, heights, ftbs, wts, fts, cshs
    ):
        if ft > ftb or wt > w * h:
            continue
        cfg = GeneralCaseConfig(w=w, h=h, ftb=ftb, wt=wt, ft=ft, csh=csh)
        try:
            cfg.validate(kernel_size, n, arch.warp_size)
        except ConfigurationError:
            continue
        if cfg.threads > arch.max_threads_per_block:
            continue
        if cfg.smem_bytes(kernel_size, n) > arch.smem_per_block_max:
            continue
        regs = cfg.registers_per_thread(kernel_size, n)
        if regs > arch.max_registers_per_thread:
            continue
        if regs * cfg.threads > arch.registers_per_sm:
            # One block alone would not fit the SM's register file.
            continue
        survivors.append(cfg)
    return survivors


# ----------------------------------------------------------------------
# Ranking
# ----------------------------------------------------------------------

def _evaluate_candidate(case, arch, problem, cfg) -> Optional[RankedConfig]:
    """Evaluate one configuration (module-level so workers can pickle it).

    Telemetry goes to the process-local obs surface: the live one when
    called in-process, a worker's snapshot-bound one under
    :func:`repro.parallel.parallel_map` fan-out.
    """
    from repro.core.general import GeneralCaseKernel
    from repro.core.special import SpecialCaseKernel

    if case == "special":
        kernel = SpecialCaseKernel(arch=arch, config=cfg)
    else:
        kernel = GeneralCaseKernel(arch=arch, config=cfg)
    model = TimingModel(arch)
    tracer = get_tracer()
    candidates = get_registry().counter(
        "dse_candidates_total",
        "Design-space candidates evaluated, by kernel case and outcome",
        labelnames=("case", "outcome"))
    # One wall-clock span per candidate evaluation: the DSE is the
    # hot planning path, and per-candidate timing is what reveals
    # where a slow `plan` call actually spent its time.
    with tracer.span("dse:%s %s" % (case, cfg), category="dse") as span:
        try:
            breakdown = kernel.predict(problem, model)
        except (ConfigurationError, LaunchConfigError, ResourceError) as exc:
            span["rejected"] = type(exc).__name__
            candidates.inc(case=case, outcome="rejected")
            return None
        gflops = breakdown.gflops(problem.flops)
        span["gflops"] = gflops
        span["bound_by"] = breakdown.bound_by
        candidates.inc(case=case, outcome="ok")
    return RankedConfig(
        config=cfg,
        gflops=gflops,
        occupancy=breakdown.occupancy_fraction,
        bound_by=breakdown.bound_by,
    )


def _rank(configs, problem, arch, case: str = "general",
          jobs: Optional[Union[int, str]] = None) -> List[RankedConfig]:
    """Evaluate candidates (fanned out over ``jobs`` workers) and sort.

    The parallel path evaluates the same candidates in the same item
    order within contiguous shards and reassembles shard results in
    input order, so the stable sort below sees exactly the sequence the
    serial path produces — rankings are bit-identical for any ``jobs``.
    """
    evaluate = functools.partial(_evaluate_candidate, case, arch, problem)
    # Opt-in sampling (REPRO_PROFILE=1): the candidate loop is the hot
    # planning path; the profiler shows which Python frames dominate it.
    with maybe_profile("dse.rank"):
        results = parallel_map(evaluate, configs, jobs=jobs)
    ranked = [r for r in results if r is not None]
    ranked.sort(key=lambda r: r.gflops, reverse=True)
    return ranked


def explore_special(
    arch: GPUArchitecture = KEPLER_K40M,
    problem: Optional[ConvProblem] = None,
    configs: Optional[Sequence[SpecialCaseConfig]] = None,
    jobs: Optional[Union[int, str]] = None,
) -> List[RankedConfig]:
    """Rank special-case blocks; the paper's answer is W=256, H=8."""
    problem = problem or DEFAULT_SPECIAL_PROBLEM
    configs = configs if configs is not None else enumerate_special_configs()
    return _rank(configs, problem, arch, case="special", jobs=jobs)


def explore_general(
    kernel_size: int,
    arch: GPUArchitecture = KEPLER_K40M,
    problem: Optional[ConvProblem] = None,
    configs: Optional[Sequence[GeneralCaseConfig]] = None,
    jobs: Optional[Union[int, str]] = None,
) -> List[RankedConfig]:
    """Rank general-case configurations for one filter size (Table 1)."""
    from repro.core.bankwidth import matched_vector

    n = matched_vector(arch).n
    problem = problem or default_general_problem(kernel_size)
    if configs is None:
        configs = enumerate_general_configs(kernel_size, n, arch)
    return _rank(configs, problem, arch, case="general", jobs=jobs)


def _general_palette(kernel_size: int, n: int) -> List[GeneralCaseConfig]:
    """The shippable general-case candidates: the Table 1 entry for this
    filter size (or the conservative fallback), every Table 1 config, and
    the narrow-block small-image palette."""
    from repro.core.general import SMALL_IMAGE_CONFIGS, default_config_for

    palette: List[GeneralCaseConfig] = []
    try:
        palette.append(default_config_for(kernel_size, n))
    except ConfigurationError:
        pass
    for cfg in tuple(TABLE1_CONFIGS.values()) + SMALL_IMAGE_CONFIGS:
        if cfg not in palette:
            palette.append(cfg)
    return palette


def best_config(
    problem: ConvProblem,
    arch: GPUArchitecture = KEPLER_K40M,
    case: Optional[str] = None,
    full: bool = False,
    jobs: Optional[Union[int, str]] = None,
) -> RankedConfig:
    """The winning configuration for one concrete problem.

    This is the single entry point callers (the serving plan cache, the
    Table 1 reproduction) should use instead of re-ranking
    ``explore_special`` / ``explore_general`` results themselves.

    Parameters
    ----------
    case:
        ``"special"``, ``"general"`` or ``"depthwise"`` to force a
        kernel family; ``None`` selects the depthwise case for
        ``groups == channels > 1`` problems, the special case for a
        single input channel, and the general case otherwise.
    full:
        For the general case, search the whole Table 1 axis space (the
        slow path ``reproduce_table1`` uses) instead of the shippable
        palette of known-good configurations.
    jobs:
        Worker processes for candidate evaluation (``None`` honors
        ``REPRO_JOBS``, default serial); the ranking is identical for
        every degree.

    Raises
    ------
    ConfigurationError
        If no candidate configuration is valid for the problem.
    """
    if case is None:
        if problem.groups == problem.channels and problem.channels > 1:
            case = "depthwise"
        elif problem.channels == 1:
            case = "special"
        else:
            case = "general"
    if case not in ("special", "general", "depthwise"):
        raise ConfigurationError("unknown kernel case %r" % case)

    # The per-case search lives with the backend now: the registry's
    # "special"/"general"/"depthwise" entries wrap the explorers behind
    # the ConvBackend DSE hook, and this entry point delegates.
    from repro.kernels import default_registry

    return default_registry().get(case).tune(problem, arch, full=full,
                                             jobs=jobs)


@dataclass(frozen=True)
class Table1Row:
    """Our explored best versus the paper's Table 1 for one filter size."""

    kernel_size: int
    paper: GeneralCaseConfig
    ours: GeneralCaseConfig
    ours_gflops: float
    paper_gflops: float

    @property
    def paper_config_rank_gap(self) -> float:
        """Predicted slowdown of the paper's config versus our best."""
        return self.ours_gflops / self.paper_gflops if self.paper_gflops else 0.0


def reproduce_table1(
    arch: GPUArchitecture = KEPLER_K40M,
    kernel_sizes: Sequence[int] = (3, 5, 7),
    jobs: Optional[Union[int, str]] = None,
) -> List[Table1Row]:
    """Regenerate Table 1 by exploration and compare with the paper's.

    ``jobs`` fans the per-filter-size candidate evaluation out over
    worker processes; the produced rows are identical for any degree.
    """
    from repro.core.general import GeneralCaseKernel

    rows = []
    model = TimingModel(arch)
    for k in kernel_sizes:
        problem = default_general_problem(k)
        best = best_config(problem, arch, case="general", full=True,
                           jobs=jobs)
        paper_cfg = TABLE1_CONFIGS[k]
        paper_kernel = GeneralCaseKernel(arch=arch, config=paper_cfg)
        paper_gflops = paper_kernel.predict(problem, model).gflops(problem.flops)
        rows.append(
            Table1Row(
                kernel_size=k,
                paper=paper_cfg,
                ours=best.config,
                ours_gflops=best.gflops,
                paper_gflops=paper_gflops,
            )
        )
    return rows
