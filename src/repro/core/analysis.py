"""Communication analysis (paper Secs. 2.2, 3.2, 4.2).

Closed-form expressions for the data-sharing and traffic claims the
paper makes, plus audits that check the *traced* kernels against those
expressions.  These back the statements:

* an input pixel can be reused up to ``K * K * F`` times (Sec. 2.2);
* the special-case kernel reads each block pixel from global memory
  exactly once — only halo pixels are read more than once, and their
  proportion is small (Sec. 3.2: "(almost) communication-optimal");
* the general-case kernel reduces global-memory traffic by ~``1/K``
  versus GEMM-based methods, and shared-memory image traffic by
  ``(W_T + K - 1) / (W_T * K)`` (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conv.blocking import halo_read_overhead
from repro.conv.tensors import ConvProblem
from repro.core.config import GeneralCaseConfig, SpecialCaseConfig

__all__ = [
    "pixel_reuse_bound",
    "gm_lower_bound_bytes",
    "special_gm_read_overhead",
    "sm_image_traffic_ratio",
    "gm_traffic_ratio_vs_gemm",
    "CommunicationAudit",
    "audit_special_kernel",
    "audit_general_kernel",
]


def pixel_reuse_bound(problem: ConvProblem) -> int:
    """Maximum uses of one input pixel: K * K * F (paper Sec. 2.2)."""
    return problem.max_pixel_reuse


def gm_lower_bound_bytes(problem: ConvProblem) -> int:
    """Compulsory global-memory traffic: read everything once, write once."""
    valid = problem.as_valid()
    return valid.image_bytes + valid.filter_bytes + valid.output_bytes


def special_gm_read_overhead(problem: ConvProblem, config: SpecialCaseConfig) -> float:
    """Read-traffic ratio over the one-read-per-pixel bound (Sec. 3.2).

    Equals the halo overhead of the block partitioning; close to 1.0 for
    the paper's 256 x 8 blocks on large images.
    """
    return halo_read_overhead(problem, config.block_spec())


def sm_image_traffic_ratio(config: GeneralCaseConfig, kernel_size: int) -> float:
    """Shared-memory image traffic relative to GEMM-style kernels.

    The paper's Sec. 4.2 factor ``(W_T + K - 1) / (W_T * K)``: computing
    ``W_T`` *contiguous* pixels per thread reads ``W_T + K - 1`` pixels
    per row instead of ``W_T * K``.
    """
    k = kernel_size
    return (config.wt + k - 1) / (config.wt * k)


def gm_traffic_ratio_vs_gemm(kernel_size: int) -> float:
    """Approximate image global-traffic ratio versus GEMM methods: 1/K.

    One staged image row feeds the convolutions of ``K`` output rows
    (Sec. 4.2), where the implicit-GEMM lowering re-reads it for each.
    """
    return 1.0 / kernel_size


@dataclass(frozen=True)
class CommunicationAudit:
    """Traced traffic versus the analytical expectation for one kernel."""

    kernel: str
    gm_read_bytes: float          # traced DRAM read traffic
    gm_lower_bound: float         # compulsory traffic (reads only)
    overhead: float               # traced / bound
    expected_overhead: float      # the analytic halo/re-read model
    conflict_free: bool           # no shared-memory request serialized
    gm_read_efficiency: float     # useful / moved bytes

    @property
    def matches_model(self) -> bool:
        """Traced traffic within 25% of the analytic prediction.

        The closed-form model assumes perfectly dense transactions; the
        trace additionally pays sector fragmentation on short strided
        runs (e.g. per-filter chunks of ``C_SH * K * K`` floats), which
        accounts for the residual.
        """
        return abs(self.overhead - self.expected_overhead) <= 0.25 * self.expected_overhead

    @property
    def near_optimal(self) -> bool:
        """Within the halo overhead of the one-read-per-pixel bound."""
        return self.overhead <= self.expected_overhead * 1.1


def audit_special_kernel(kernel, problem: ConvProblem) -> CommunicationAudit:
    """Check Sec. 3.2's optimality claim against the traced ledger.

    The analytic expectation is the halo overhead of the block
    partitioning: every pixel inside a block is read exactly once.
    """
    valid = problem.as_valid()
    led = kernel.cost(problem).ledger
    bound = float(valid.image_bytes)  # filters live in constant memory
    expected = special_gm_read_overhead(problem, kernel.config)
    return CommunicationAudit(
        kernel=kernel.name,
        gm_read_bytes=led.gmem_read_bytes_moved,
        gm_lower_bound=bound,
        overhead=led.gmem_read_bytes_moved / bound,
        expected_overhead=expected,
        conflict_free=led.smem_conflict_overhead <= 1.0 + 1e-9,
        gm_read_efficiency=led.gmem_read_efficiency,
    )


def audit_general_kernel(kernel, problem: ConvProblem) -> CommunicationAudit:
    """Traffic audit for the general-case kernel.

    The lower bound is the compulsory unique traffic (image + filters
    once); the analytic expectation adds the decomposition's re-reads —
    the image once per filter group, the filters once per image block
    (Sec. 4.2) — discounted by the same L2 credit the tracer applies,
    plus the block halo overhead on the image term.
    """
    import math

    from repro.conv.blocking import BlockGrid
    from repro.gpu.trace import cross_block_reuse

    valid = problem.as_valid()
    cfg = kernel.config_for(valid)
    led = kernel.cost(problem).ledger

    grid = BlockGrid(valid, cfg.block_spec())
    fgroups = math.ceil(valid.filters / cfg.ftb)
    bound = float(valid.image_bytes + valid.filter_bytes)
    img_reuse = cross_block_reuse(kernel.arch, valid.image_bytes, fgroups)
    flt_reuse = cross_block_reuse(
        kernel.arch, valid.filter_bytes, grid.total_blocks
    )
    halo = halo_read_overhead(valid, cfg.block_spec())
    expected = (
        valid.image_bytes * halo * fgroups / img_reuse
        + valid.filter_bytes * grid.total_blocks / flt_reuse
    ) / bound
    return CommunicationAudit(
        kernel=kernel.name,
        gm_read_bytes=led.gmem_read_bytes_moved,
        gm_lower_bound=bound,
        overhead=led.gmem_read_bytes_moved / bound,
        expected_overhead=expected,
        conflict_free=led.smem_conflict_overhead <= 1.0 + 1e-9,
        gm_read_efficiency=led.gmem_read_efficiency,
    )
