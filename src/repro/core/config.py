"""Kernel tile/blocking configurations (paper Secs. 3.1, 4.1, Table 1).

Both kernels are parameterized by an output-block geometry; the general
case adds the register/shared-memory tiling dimensions of Fig. 6.  The
classes here validate a configuration's internal divisibility
constraints and estimate its static resources (registers per thread,
shared memory per block) so the occupancy calculator and the
design-space explorer can reject configurations that would not be
resident on the device — the same feasibility filter the paper's
"design space exploration" (Sec. 5.1) applies.

``TABLE1_CONFIGS`` reproduces the paper's Table 1 verbatim;
:mod:`repro.core.dse` searches the space independently and the Table 1
benchmark compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conv.blocking import BlockSpec
from repro.errors import ConfigurationError

__all__ = [
    "SpecialCaseConfig",
    "GeneralCaseConfig",
    "BEST_SPECIAL_CONFIG",
    "TABLE1_CONFIGS",
]

#: Registers every thread needs for indices, loop counters, base pointers.
_BOOKKEEPING_REGS = 14


def _round_up(value: int, unit: int) -> int:
    return (value + unit - 1) // unit * unit


@dataclass(frozen=True)
class SpecialCaseConfig:
    """Geometry of the special-case kernel (Sec. 3.1).

    ``block_w`` (the paper's W) output columns by ``block_h`` (H) output
    rows per thread block; each thread produces ``n`` contiguous output
    pixels per row, so the block has ``block_w / n`` threads.
    """

    block_w: int = 256
    block_h: int = 8

    def __post_init__(self):
        if self.block_w < 1 or self.block_h < 1:
            raise ConfigurationError("block extents must be positive")

    def validate(self, kernel_size: int, n: int, warp_size: int = 32) -> None:
        if n < 1:
            raise ConfigurationError("vector width n must be positive")
        if self.block_w % n:
            raise ConfigurationError(
                "block_w=%d must be divisible by n=%d" % (self.block_w, n)
            )
        threads = self.threads(n)
        if threads % warp_size:
            raise ConfigurationError(
                "%d threads per block is not a whole number of warps" % threads
            )
        if kernel_size < 1:
            raise ConfigurationError("kernel_size must be positive")

    def threads(self, n: int) -> int:
        return self.block_w // n

    def block_spec(self) -> BlockSpec:
        return BlockSpec(block_h=self.block_h, block_w=self.block_w)

    def smem_row_floats(self, kernel_size: int, n: int, stride: int = 1,
                        dilation: int = 1) -> int:
        """Floats per staged image row, padded to vector units.

        The block's input-row footprint is ``(W-1)*stride + span`` where
        ``span = dilation*(K-1) + 1``; at the default axes this is the
        paper's ``W + K - 1``.
        """
        footprint = (self.block_w - 1) * stride + dilation * (kernel_size - 1) + 1
        return _round_up(footprint, n)

    def smem_bytes(self, kernel_size: int, n: int, elem_bytes: int = 4,
                   stride: int = 1, dilation: int = 1) -> int:
        """Shared memory per block: a span-row circular window of the tile."""
        span = dilation * (kernel_size - 1) + 1
        return span * self.smem_row_floats(kernel_size, n, stride,
                                           dilation) * elem_bytes

    def registers_per_thread(self, kernel_size: int, n: int, stride: int = 1,
                             dilation: int = 1) -> int:
        """Estimated register demand per thread.

        The K-row pixel window of per-thread row slices (Sec. 3.2), ``n``
        convolution accumulators, the prefetch staging of the thread's
        share of the next ``stride`` rows (n pixels each,
        double-buffered), and bookkeeping.
        """
        k = kernel_size
        row_slice = (n - 1) * stride + dilation * (k - 1) + 1
        window = k * row_slice
        return window + n + 2 * n * stride + _BOOKKEEPING_REGS


@dataclass(frozen=True)
class GeneralCaseConfig:
    """Geometry of the general-case kernel (Sec. 4.1, Fig. 6, Table 1).

    A thread block covers ``ftb`` filters by ``w x h`` output pixels and
    iterates over all C channels, staging ``csh`` channels of image
    blocks and filters in shared memory.  Threads form a ``tx x ty``
    grid with ``tx = ftb / ft`` and ``ty = w * h / wt``; each thread
    accumulates an ``ft x wt`` register tile, its ``wt`` output pixels
    contiguous along the row (the paper's key deviation from blocked
    GEMM).
    """

    w: int
    h: int
    ftb: int
    wt: int
    ft: int
    csh: int

    def __post_init__(self):
        for field_name in ("w", "h", "ftb", "wt", "ft", "csh"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError("%s must be positive" % field_name)

    # ------------------------------------------------------------------
    @property
    def tx(self) -> int:
        return self.ftb // self.ft

    @property
    def ty(self) -> int:
        return (self.w * self.h) // self.wt

    @property
    def threads(self) -> int:
        return self.tx * self.ty

    def block_spec(self) -> BlockSpec:
        return BlockSpec(block_h=self.h, block_w=self.w)

    # ------------------------------------------------------------------
    def validate(self, kernel_size: int, n: int, warp_size: int = 32) -> None:
        if n < 1:
            raise ConfigurationError("vector width n must be positive")
        if self.ftb % self.ft:
            raise ConfigurationError("ftb must be divisible by ft")
        if (self.w * self.h) % self.wt:
            raise ConfigurationError("w*h must be divisible by wt")
        if self.w % self.wt:
            raise ConfigurationError(
                "wt=%d output pixels per thread must stay within one row of w=%d"
                % (self.wt, self.w)
            )
        if self.wt % n or self.ft % n or self.w % n:
            raise ConfigurationError(
                "wt, ft and w must be divisible by the vector width n=%d" % n
            )
        if self.wt + kernel_size - 1 < n:
            # The per-thread register row of wt + k - 1 pixels must hold
            # at least one vector unit, or the kernel's overlapping tail
            # load has nothing in range to clamp back to.
            raise ConfigurationError(
                "register row wt+k-1=%d is narrower than one vector unit n=%d"
                % (self.wt + kernel_size - 1, n)
            )
        if self.threads % warp_size:
            raise ConfigurationError(
                "%d threads per block is not a whole number of warps" % self.threads
            )
        if kernel_size < 1:
            raise ConfigurationError("kernel_size must be positive")

    # ------------------------------------------------------------------
    def smem_filter_pad(self, n: int) -> int:
        """Padding elements appended to the transposed filter rows.

        The filter block is stored transposed (Fig. 6), so rows of
        ``ftb`` values are padded by one vector unit to keep successive
        rows from landing on the same banks (Sec. 4.2).
        """
        return n

    def smem_image_floats(self, kernel_size: int, stride: int = 1,
                          dilation: int = 1) -> int:
        k = kernel_size
        halo = dilation * (k - 1)
        return (self.csh * ((self.h - 1) * stride + halo + 1)
                * ((self.w - 1) * stride + halo + 1))

    def smem_filter_floats(self, kernel_size: int, n: int) -> int:
        k = kernel_size
        return self.csh * k * k * (self.ftb + self.smem_filter_pad(n))

    def smem_bytes(self, kernel_size: int, n: int, elem_bytes: int = 4,
                   stride: int = 1, dilation: int = 1) -> int:
        return elem_bytes * (
            self.smem_image_floats(kernel_size, stride, dilation)
            + self.smem_filter_floats(kernel_size, n)
        )

    def registers_per_thread(self, kernel_size: int, n: int, stride: int = 1,
                             dilation: int = 1) -> int:
        """Estimated register demand per thread (Algorithm 2, line 1).

        ``rAcc[ft][wt]`` accumulators, the ``(wt-1)*stride + span`` image
        row, ``ft`` filter values, the thread's share of the
        double-buffered prefetch staging, and bookkeeping.
        """
        k = kernel_size
        acc = self.ft * self.wt
        row = (self.wt - 1) * stride + dilation * (k - 1) + 1
        flt = self.ft
        prefetch = (
            -(-self.smem_image_floats(k, stride, dilation) // self.threads)
            + -(-self.csh * k * k * self.ftb // self.threads)
        )
        return acc + row + flt + prefetch + _BOOKKEEPING_REGS


#: Best special-case block found by the paper's design space exploration
#: (Sec. 5.1): W = 256, H = 8.
BEST_SPECIAL_CONFIG = SpecialCaseConfig(block_w=256, block_h=8)

#: Paper Table 1: best general-case configurations on the K40m.
TABLE1_CONFIGS = {
    3: GeneralCaseConfig(w=32, h=4, ftb=64, wt=16, ft=4, csh=2),
    5: GeneralCaseConfig(w=32, h=8, ftb=32, wt=8, ft=8, csh=1),
    7: GeneralCaseConfig(w=64, h=4, ftb=32, wt=8, ft=8, csh=1),
}
