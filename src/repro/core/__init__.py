"""The paper's contribution: the bank-width matching model and the two
memory-efficient direct-convolution kernels (special case C = 1 and the
general multi-channel case), plus their communication analysis and the
design-space explorer that regenerates Table 1."""

from repro.core.bankwidth import (
    DataType,
    VectorSpec,
    mismatch_factor,
    matched_vector,
    conventional_pattern,
    matched_pattern,
    smem_bandwidth_gain,
)
from repro.core.config import (
    SpecialCaseConfig,
    GeneralCaseConfig,
    TABLE1_CONFIGS,
    BEST_SPECIAL_CONFIG,
)
from repro.core.special import SpecialCaseKernel
from repro.core.general import GeneralCaseKernel

__all__ = [
    "DataType",
    "VectorSpec",
    "mismatch_factor",
    "matched_vector",
    "conventional_pattern",
    "matched_pattern",
    "smem_bandwidth_gain",
    "SpecialCaseConfig",
    "GeneralCaseConfig",
    "TABLE1_CONFIGS",
    "BEST_SPECIAL_CONFIG",
    "SpecialCaseKernel",
    "GeneralCaseKernel",
]
