"""Depthwise convolution: the special-case kernel's grouped sibling.

Depthwise convolution (``groups == channels``) is ``C`` independent
single-channel convolutions — exactly the paper's Sec. 3 special case,
one instance per channel.  The kernel maps each group to a grid-Z slice
of the special-case launch: block (bx, by, g) convolves channel ``g``
with its ``F/groups`` filters, reusing the C = 1 kernel's circular
shared-memory row window, register blocking and constant-memory filter
broadcasts verbatim.  The 2026 depthwise-serving paper (PAPERS.md)
shows this is where the memory-efficiency analysis matters at cloud
scale: depthwise layers are bandwidth-bound, so the bank/coalescing
model transfers unchanged.

The traced cost is the per-group special-case cost with every traffic
counter scaled by ``groups`` (the groups are literally identical
request streams at different base addresses) under a grid-Z-extended
launch; :meth:`DepthwiseKernel.run_traced` drives the vectorized fast
simulator per group so ``repro audit`` can hold the depthwise path to
the same interpreted-oracle standard as the special case.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.core.bankwidth import DataType
from repro.core.config import BEST_SPECIAL_CONFIG, SpecialCaseConfig
from repro.core.special import SpecialCaseKernel
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, publish_kernel_cost

__all__ = ["DepthwiseKernel"]


class DepthwiseKernel:
    """One special-case convolution per channel, batched over grid Z."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config: SpecialCaseConfig = BEST_SPECIAL_CONFIG,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        dtype: DataType = DataType.FLOAT,
    ):
        self.arch = arch
        self.config = config
        self.matched = matched
        self.bank_policy = bank_policy
        self.dtype = dtype
        self.special = SpecialCaseKernel(
            arch=arch, config=config, matched=matched,
            bank_policy=bank_policy, dtype=dtype,
        )
        self.n = self.special.n
        self.name = "depthwise[%s,%s,n=%d]" % (arch.name, dtype.label, self.n)

    # ------------------------------------------------------------------
    @staticmethod
    def group_problem(problem: ConvProblem) -> ConvProblem:
        """The C = 1 special-case problem one group solves."""
        return replace(
            problem,
            channels=1,
            filters=problem.filters_per_group,
            groups=1,
            layout=Layout.NCHW,
        )

    def _check_problem(self, problem: ConvProblem) -> ConvProblem:
        if problem.groups != problem.channels:
            raise ConfigurationError(
                "the depthwise kernel requires groups == channels "
                "(one channel per group), got %s" % problem.describe())
        # All groups' filters are resident in constant memory at once.
        k = problem.kernel_size
        cm_bytes = problem.filters * k * k * self.special.elem_bytes
        if cm_bytes > self.arch.const_memory_size:
            raise ConfigurationError(
                "filters need %d bytes of constant memory, %s has %d"
                % (cm_bytes, self.arch.name, self.arch.const_memory_size))
        return problem.as_valid()

    def launch_config(self, problem: ConvProblem) -> LaunchConfig:
        valid = self._check_problem(problem)
        g_launch = self.special.launch_config(self.group_problem(valid))
        return replace(g_launch, grid=replace(g_launch.grid, z=valid.groups))

    # ------------------------------------------------------------------
    def _infer_problem(self, image: np.ndarray, filters: np.ndarray,
                       padding: Padding) -> ConvProblem:
        img = np.asarray(image, dtype=np.float32)
        flt = np.asarray(filters, dtype=np.float32)
        if img.ndim != 3:
            raise ShapeError("depthwise image must be (C, H, W)")
        if flt.ndim == 3:
            flt = flt[:, np.newaxis]
        if flt.ndim != 4 or flt.shape[1] != 1:
            raise ShapeError(
                "depthwise filters must be (F, 1, K, K), got %s"
                % (flt.shape,))
        return ConvProblem(
            height=img.shape[1], width=img.shape[2], channels=img.shape[0],
            filters=flt.shape[0], kernel_size=flt.shape[2], padding=padding,
            groups=img.shape[0],
        )

    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: Optional[ConvProblem] = None,
    ) -> np.ndarray:
        """Per-group special-case sweeps, reassembled channel-major."""
        if problem is None:
            problem = self._infer_problem(image, filters, padding)
        valid = self._check_problem(problem)
        img = problem.chw_image(image)
        flt = problem.check_filters(filters)
        fpg = valid.filters_per_group
        gp = self.group_problem(problem)     # keeps the padding mode
        out = np.empty((valid.filters, valid.out_height, valid.out_width),
                       dtype=np.float32)
        for g in range(valid.groups):
            out[g * fpg : (g + 1) * fpg] = self.special.run(
                img[g], flt[g * fpg : (g + 1) * fpg], problem=gp,
            )
        return problem.layout_output(out)

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        """The per-group traced cost scaled to all grid-Z group slices."""
        valid = self._check_problem(problem)
        g_cost = self.special.cost(self.group_problem(valid))
        ledger = g_cost.ledger
        if valid.groups > 1:
            ledger.scale(float(valid.groups))
        launch = replace(g_cost.launch,
                         grid=replace(g_cost.launch.grid, z=valid.groups))
        cost = KernelCost(
            name=self.name,
            launch=launch,
            ledger=ledger,
            software_prefetch=g_cost.software_prefetch,
            launches=g_cost.launches,
        )
        publish_kernel_cost(cost)
        return cost

    def run_traced(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        audit: Optional[bool] = None,
    ) -> Tuple[np.ndarray, KernelCost]:
        """Fast-simulate every group and return (output, executed cost).

        Each group runs through :class:`repro.gpu.fastsim.FastSpecialKernel`
        (aligned shapes, unit stride/dilation — the simulator's domain);
        ``audit=True`` holds every group to the interpreted SIMT oracle.
        """
        from repro.gpu.fastsim import FastSpecialKernel

        img = np.asarray(image, dtype=np.float32)
        flt = np.asarray(filters, dtype=np.float32)
        if flt.ndim == 4:
            if flt.shape[1] != 1:
                raise ShapeError(
                    "depthwise filters must be (F, 1, K, K), got %s"
                    % (flt.shape,))
            flt = flt[:, 0]
        problem = self._infer_problem(img, flt, Padding.VALID)
        valid = self._check_problem(problem)
        fast = FastSpecialKernel(
            arch=self.arch, config=self.config, matched=self.matched,
            bank_policy=self.bank_policy,
        )
        fpg = valid.filters_per_group
        out = np.empty((valid.filters, valid.out_height, valid.out_width),
                       dtype=np.float32)
        merged = None
        for g in range(valid.groups):
            g_out, g_cost = fast.run_traced(
                img[g], flt[g * fpg : (g + 1) * fpg], audit=audit,
            )
            out[g * fpg : (g + 1) * fpg] = g_out
            if merged is None:
                merged = g_cost
            else:
                merged.ledger.merge(g_cost.ledger)
        launch = replace(merged.launch,
                         grid=replace(merged.launch.grid, z=valid.groups))
        return out, KernelCost(
            name=self.name,
            launch=launch,
            ledger=merged.ledger,
            software_prefetch=merged.software_prefetch,
            launches=merged.launches,
        )

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        return self.predict(problem, model).gflops(problem.flops)
