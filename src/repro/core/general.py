"""The general-case convolution kernel: multiple channels (paper Sec. 4).

The kernel uses a 2-D thread-block grid: the X dimension covers groups
of ``F_TB`` filters, the Y dimension covers ``H x W`` output blocks; a
block iterates over all ``C`` channels, staging ``C_SH`` channels of
image blocks and filters in shared memory per step (Fig. 6).  Threads
form a ``TX x TY`` grid with the X (filter) dimension fastest; each
thread accumulates an ``F_T x W_T`` register tile whose ``W_T`` output
pixels are *contiguous along the row* — the paper's central deviation
from blocked GEMM, which lets one register row of ``W_T + K - 1`` pixels
feed ``K`` FMA rounds and cuts shared-memory image traffic by
``(W_T + K - 1) / (W_T * K)`` (Sec. 4.2).

The filter block is stored transposed in shared memory with padding so
that the vectorized filter reads are conflict-free; image reads exploit
the broadcast mechanism (all ``TX`` threads of a row read the same
address).  Global loads are double-buffered (prefetch, Algorithm 2
lines 8-9/17-18); the writeback is uncoalesced by design and the tracer
prices it at store-sector granularity, confirming the paper's judgement
that it is cheap enough to leave unoptimized.
"""

from __future__ import annotations

import functools
import math
from typing import Optional

import numpy as np

from repro.conv.blocking import BlockGrid
from repro.conv.tensors import ConvProblem, Padding
from repro.core.bankwidth import DataType, matched_vector
from repro.core.config import TABLE1_CONFIGS, GeneralCaseConfig
from repro.errors import ConfigurationError, ReproError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import (
    KernelCost,
    KernelTracer,
    cross_block_reuse,
    prepare_batch,
)

__all__ = ["GeneralCaseKernel", "default_config_for", "SMALL_IMAGE_CONFIGS"]

_F32 = 4


def default_config_for(kernel_size: int, n: int) -> GeneralCaseConfig:
    """The Table 1 configuration for ``kernel_size``, or a safe fallback.

    Filter sizes outside Table 1 get a conservative configuration that
    satisfies every divisibility constraint for ``n`` in {1, 2}.
    """
    if kernel_size in TABLE1_CONFIGS:
        return TABLE1_CONFIGS[kernel_size]
    fallback = GeneralCaseConfig(w=32, h=4, ftb=32, wt=8, ft=8, csh=1)
    fallback.validate(kernel_size, n)
    return fallback


#: Narrow-block fallbacks for the adaptive mode: small images cannot
#: fill the Table 1 tiles (the source of the paper's 32x32 caveat), so
#: the selector may trade per-block efficiency for parallelism.
SMALL_IMAGE_CONFIGS = (
    GeneralCaseConfig(w=16, h=8, ftb=32, wt=8, ft=8, csh=2),
    GeneralCaseConfig(w=16, h=4, ftb=64, wt=8, ft=8, csh=2),
    GeneralCaseConfig(w=16, h=4, ftb=32, wt=4, ft=8, csh=2),
    GeneralCaseConfig(w=8, h=8, ftb=32, wt=8, ft=8, csh=2),
)


class GeneralCaseKernel:
    """Communication-reduced direct convolution for arbitrary C (Sec. 4)."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config: Optional[GeneralCaseConfig] = None,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        dtype: DataType = DataType.FLOAT,
        auto_config: bool = False,
    ):
        # ``dtype`` parameterizes the cost model only (paper Sec. 6:
        # short data types raise the mismatch factor); functional
        # execution stays in float32.  ``auto_config`` extends the
        # paper's per-filter-size Table 1 with per-problem selection
        # from a small palette — the natural fix for its 32x32 caveat.
        self.arch = arch
        self._config = config
        self.matched = matched
        self.bank_policy = bank_policy
        self.dtype = dtype
        self.elem_bytes = dtype.width
        self.auto_config = auto_config
        self.n = matched_vector(arch, dtype.width).n if matched else 1
        self.name = "general[%s,%s,n=%d]" % (arch.name, dtype.label, self.n)

    # ------------------------------------------------------------------
    def config_for(self, problem: ConvProblem) -> GeneralCaseConfig:
        if self._config is not None:
            cfg = self._config
        elif self.auto_config:
            cfg = self.select_config(problem)
        else:
            cfg = default_config_for(problem.kernel_size, self.n)
        cfg.validate(problem.kernel_size, self.n, self.arch.warp_size)
        return cfg

    def select_config(self, problem: ConvProblem) -> GeneralCaseConfig:
        """Pick the best-predicted configuration for this problem.

        Candidates are the filter size's Table 1 entry plus the
        narrow-block fallbacks; each is evaluated with the full traced
        cost + timing pipeline (the same machinery as
        :mod:`repro.core.dse`, restricted to a shippable palette).
        """
        from repro.gpu.timing import TimingModel

        k = problem.as_valid().kernel_size
        model = TimingModel(self.arch)
        best_cfg, best_time = None, float("inf")
        for cand in (default_config_for(k, self.n),) + SMALL_IMAGE_CONFIGS:
            try:
                cand.validate(k, self.n, self.arch.warp_size)
            except ConfigurationError:
                continue
            trial = GeneralCaseKernel(
                arch=self.arch, config=cand, matched=self.matched,
                bank_policy=self.bank_policy, dtype=self.dtype,
            )
            try:
                t = model.evaluate(trial.cost(problem)).total
            except ReproError:
                continue
            if t < best_time:
                best_cfg, best_time = cand, t
        if best_cfg is None:
            raise ConfigurationError(
                "no palette configuration is valid for K=%d, n=%d" % (k, self.n)
            )
        return best_cfg

    def _check_problem(self, problem: ConvProblem) -> ConvProblem:
        if problem.groups != 1:
            raise ConfigurationError(
                "the general-case kernel handles ungrouped convolution, "
                "got %s" % problem.describe())
        valid = problem.as_valid()
        if valid.span > min(valid.height, valid.width):
            raise ConfigurationError("filter larger than padded image")
        return valid

    def launch_config(self, problem: ConvProblem) -> LaunchConfig:
        valid = self._check_problem(problem)
        cfg = self.config_for(valid)
        grid = BlockGrid(valid, cfg.block_spec())
        fgroups = math.ceil(valid.filters / cfg.ftb)
        k = valid.kernel_size
        s, d = valid.stride, valid.dilation
        return LaunchConfig(
            grid=Dim3(x=fgroups, y=grid.total_blocks),
            block=Dim3(x=cfg.tx, y=cfg.ty),
            registers_per_thread=cfg.registers_per_thread(k, self.n, s, d),
            smem_per_block=cfg.smem_bytes(k, self.n, self.elem_bytes, s, d),
        )

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: Optional[ConvProblem] = None,
    ) -> np.ndarray:
        """Execute Algorithm 2 and return the ``(F, OH, OW)`` output.

        Without ``problem`` the shape is inferred from the arrays with
        default axes; a full problem brings stride and dilation along
        (grouping is out of scope for this kernel — see the depthwise
        backend).
        """
        if problem is None:
            img = np.asarray(image, dtype=np.float32)
            if img.ndim == 2:
                img = img[np.newaxis]
            flt = np.asarray(filters, dtype=np.float32)
            if flt.ndim == 3:
                flt = flt[:, np.newaxis]
            if img.ndim != 3 or flt.ndim != 4:
                raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
            if flt.shape[1] != img.shape[0]:
                raise ShapeError(
                    "filters have %d channels, image has %d" % (flt.shape[1], img.shape[0])
                )
            if flt.shape[2] != flt.shape[3]:
                raise ShapeError("filters must be square")

            problem = ConvProblem(
                height=img.shape[1],
                width=img.shape[2],
                channels=img.shape[0],
                filters=flt.shape[0],
                kernel_size=flt.shape[2],
                padding=padding,
            )
        else:
            # padded_image canonicalizes to CHW itself; handing it the
            # raw array keeps NHWC inputs single-converted.
            img = image
            flt = problem.check_filters(filters)
        valid = self._check_problem(problem)
        cfg = self.config_for(valid)
        padded = problem.padded_image(img)

        k = valid.kernel_size
        s, d = valid.stride, valid.dilation
        c_total = valid.channels
        f_total = valid.filters
        grid = BlockGrid(valid, cfg.block_spec())
        fgroups = math.ceil(f_total / cfg.ftb)
        out = np.empty((f_total, valid.out_height, valid.out_width),
                       dtype=np.float32)

        # Per-thread-group pixel mapping: group ty covers WT contiguous
        # pixels of row (ty*WT)//W starting at column (ty*WT)%W.
        rows_of_ty = (np.arange(cfg.ty) * cfg.wt) // cfg.w
        cols_of_ty = (np.arange(cfg.ty) * cfg.wt) % cfg.w

        for view in grid:
            # All channels of this block's footprint (zero-filled halo).
            tile = np.stack([view.extract(padded[c]) for c in range(c_total)])
            for fg in range(fgroups):
                f_lo = fg * cfg.ftb
                f_hi = min(f_lo + cfg.ftb, f_total)
                block_out = self._run_block(
                    tile, flt[f_lo:f_hi], cfg, k, rows_of_ty, cols_of_ty,
                    s, d,
                )
                out[
                    f_lo:f_hi,
                    view.out_y0 : view.out_y0 + view.out_rows,
                    view.out_x0 : view.out_x0 + view.out_cols,
                ] = block_out[:, : view.out_rows, : view.out_cols]
        return problem.layout_output(out)

    def _run_block(
        self,
        tile: np.ndarray,
        flt: np.ndarray,
        cfg: GeneralCaseConfig,
        k: int,
        rows_of_ty: np.ndarray,
        cols_of_ty: np.ndarray,
        stride: int = 1,
        dilation: int = 1,
    ) -> np.ndarray:
        """One thread block: Algorithm 2's channel/row/round loop nest.

        ``rAcc`` holds every thread's F_T x W_T register tile, laid out
        as (filters-in-block, ty, wt); the per-round update is the outer
        product of ``rFlt`` (F_T filter taps) with the shifted slice of
        ``rImg`` (the W_T + K - 1 pixel register row — with stride and
        dilation the row widens to ``(W_T-1)*stride + span`` and the
        round slice walks it at the stride).
        """
        f_here = flt.shape[0]
        c_total = tile.shape[0]
        s, d = stride, dilation
        racc = np.zeros((f_here, cfg.ty, cfg.wt), dtype=np.float32)
        row_floats = (cfg.wt - 1) * s + d * (k - 1) + 1
        col_idx = cols_of_ty[:, np.newaxis] * s + np.arange(row_floats)

        # The CSH-channel staging (lines 4-5/17-18) only affects *where*
        # data waits, not the accumulation order: iterate channels in
        # chunks to mirror the loop structure (line 7/10).
        for c_lo in range(0, c_total, cfg.csh):
            for c in range(c_lo, min(c_lo + cfg.csh, c_total)):
                for j in range(k):
                    # Line 12: each thread's register row of pixels.
                    rimg = np.take_along_axis(
                        tile[c][rows_of_ty * s + j * d], col_idx, axis=1
                    )
                    for kk in range(k):
                        # Line 14: FT filter values; line 15: FMA round.
                        rflt = flt[:, c, j, kk]
                        racc += (
                            rflt[:, np.newaxis, np.newaxis]
                            * rimg[np.newaxis, :,
                                   kk * d : kk * d + (cfg.wt - 1) * s + 1 : s]
                        )
        return racc.reshape(f_here, cfg.h, cfg.w)

    # ------------------------------------------------------------------
    # Traced cost
    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        valid = self._check_problem(problem)
        cfg = self.config_for(valid)
        k = valid.kernel_size
        n = self.n
        s, d = valid.stride, valid.dilation
        grid = BlockGrid(valid, cfg.block_spec())
        fgroups = math.ceil(valid.filters / cfg.ftb)
        launch = LaunchConfig(
            grid=Dim3(x=fgroups, y=grid.total_blocks),
            block=Dim3(x=cfg.tx, y=cfg.ty),
            registers_per_thread=cfg.registers_per_thread(k, n, s, d),
            smem_per_block=cfg.smem_bytes(k, n, self.elem_bytes, s, d),
        )
        blocks = float(grid.total_blocks * fgroups)
        threads = cfg.threads
        warps = math.ceil(threads / self.arch.warp_size)
        c_total = valid.channels
        chunks = math.ceil(c_total / cfg.csh)

        tracer = KernelTracer(self.arch, self.bank_policy)
        warp_lanes = self.arch.warp_size
        lanes = np.arange(warp_lanes, dtype=np.int64)
        elem = self.elem_bytes
        unit = n * elem

        halo = d * (k - 1)
        img_row_floats = (cfg.w - 1) * s + halo + 1
        img_rows = (cfg.h - 1) * s + halo + 1

        # --- global loads: image rows of the staged chunk ------------------
        # Each footprint row is one contiguous run; runs are strided by the
        # image pitch, so they are traced per-row.  The row base is aligned
        # to W floats (blocks start at multiples of W).
        row_lanes = min(warp_lanes, math.ceil(img_row_floats / n))
        row_pattern = np.arange(row_lanes, dtype=np.int64) * unit
        full_row_reqs = math.ceil(img_row_floats / (n * warp_lanes))
        # The TBX filter-group blocks at the same image location stream
        # the same pixels; the footprint is tiny, so the L2 serves the
        # repeats (symmetric with the credit the cuDNN baseline gets).
        img_slab = valid.channels * valid.height * valid.width * elem
        tracer.gmem_read(
            row_pattern,
            unit,
            count=float(full_row_reqs) * img_rows * c_total * blocks,
            site="gm.load_image",
            l2_reuse=cross_block_reuse(self.arch, img_slab, fgroups),
        )

        # --- global loads: filter chunk (FTB runs of CSH*K*K floats) -------
        run_floats = cfg.csh * k * k
        stride = c_total * k * k * elem
        flt_reuse = cross_block_reuse(
            self.arch,
            valid.filters * c_total * k * k * elem,
            grid.total_blocks,
        )
        # The run base alignment cycles with the filter index and the
        # channel-chunk offset; enumerate the actual distinct alignments
        # and weight them by frequency (this makes the sector count
        # exact, as the interpreter audit verifies).
        seg = KernelTracer.SECTOR_BYTES
        base_values, base_freqs = _filter_base_alignments(
            cfg.ftb, stride, cfg.csh * k * k * elem, chunks, seg)
        scalar_lanes = lanes * elem
        full_reqs, rem = divmod(run_floats, warp_lanes)
        for base, freq in zip(base_values, base_freqs):
            # A run of CSH*K*K scalars splits into full-warp requests
            # plus one remainder request with the leftover lanes.
            if full_reqs:
                tracer.gmem_read(
                    base + scalar_lanes, elem,
                    count=float(full_reqs) * freq * blocks,
                    site="gm.load_filter", l2_reuse=flt_reuse,
                )
            if rem:
                rem_base = base + full_reqs * warp_lanes * elem
                tracer.gmem_read(
                    rem_base + scalar_lanes[:rem], elem,
                    count=float(freq) * blocks,
                    site="gm.load_filter", l2_reuse=flt_reuse,
                )

        # --- shared-memory staging ------------------------------------------
        img_units = cfg.csh * img_rows * math.ceil(img_row_floats / n)
        tracer.smem_write(
            lanes * unit,
            unit,
            count=img_units / warp_lanes * chunks * blocks,
            site="sm.store_image",
        )
        # Transposed filter store: lane l writes shFlt[tap][f] with the
        # filter index fastest; scalar stores (the transpose defeats
        # vectorization).  Padding keeps successive tap rows off the same
        # banks.
        flt_row_stride = (cfg.ftb + cfg.smem_filter_pad(n)) * elem
        t_of_lane = lanes // min(cfg.ftb, warp_lanes)
        f_of_lane = lanes % min(cfg.ftb, warp_lanes)
        store_pattern = t_of_lane * flt_row_stride + f_of_lane * elem
        flt_values = cfg.csh * k * k * cfg.ftb
        tracer.smem_write(
            store_pattern,
            elem,
            count=flt_values / warp_lanes * chunks * blocks,
            site="sm.store_filter",
        )

        # --- shared-memory reads: image register rows (line 12) -------------
        # Address depends only on ty; TX lanes broadcast.  A warp holds
        # warp/TX distinct ty values.  The batch geometry depends only on
        # the config's tiling (not the problem), so the canonicalized
        # batch is built once per geometry and folded with this
        # problem's execution count.
        row_bytes = tracer.smem_batch_mod()
        tracer.smem_read_prepared(
            _img_row_read_batch(warp_lanes, cfg.tx, cfg.ty, cfg.wt, cfg.w,
                                k, elem, n, row_bytes, s, d),
            unit,
            scale=float(warps) * k * c_total * blocks,
            site="sm.load_image_row",
        )

        # --- shared-memory reads: filter values (line 14) --------------------
        tracer.smem_read_prepared(
            _flt_row_read_batch(warp_lanes, cfg.tx, cfg.ft, elem, n,
                                row_bytes),
            unit,
            scale=float(warps) * k * k * c_total * blocks,
            site="sm.load_filter_row",
        )

        # --- compute ----------------------------------------------------------
        tracer.flops(2.0 * k * k * c_total * cfg.ftb * cfg.w * cfg.h * blocks)

        # --- writeback: uncoalesced by design (Sec. 4.2) ----------------------
        # Lane tx writes filter map tx*FT + ff; maps are OH*OW apart.  Each
        # thread writes its WT pixels as wide units; store sectors price it.
        map_stride = valid.out_height * valid.out_width * elem
        wb_prep, wide = _writeback_batch(
            warp_lanes, cfg.tx, cfg.ty, cfg.ft, cfg.wt, map_stride, elem, n)
        tracer.gmem_write_prepared(
            wb_prep, wide, scale=float(warps) * blocks, site="gm.store_out",
        )

        # --- barriers ----------------------------------------------------------
        tracer.sync((2.0 * chunks + 2.0) * blocks)

        return tracer.finish(
            name=self.name, launch=launch, software_prefetch=True,
        )

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        return self.predict(problem, model).gflops(problem.flops)


@functools.lru_cache(maxsize=4096)
def _img_row_read_batch(warp_lanes, tx, ty, wt, w, k, elem, n, row_bytes,
                        stride=1, dilation=1):
    """Prepared batch of one warp's image register-row reads (line 12)."""
    lanes = np.arange(warp_lanes, dtype=np.int64)
    ty_ids = (lanes // tx) % ty
    pitch = (w - 1) * stride + dilation * (k - 1) + 1
    base = (
        ((ty_ids * wt) // w) * stride * pitch
        + ((ty_ids * wt) % w) * stride
    ) * elem
    u_img = math.ceil(((wt - 1) * stride + dilation * (k - 1) + 1) / n)
    unit = n * elem
    matrix = (
        base[np.newaxis, :]
        + np.arange(u_img, dtype=np.int64)[:, np.newaxis] * unit
    )
    return prepare_batch(matrix, row_bytes)


@functools.lru_cache(maxsize=4096)
def _flt_row_read_batch(warp_lanes, tx, ft, elem, n, row_bytes):
    """Prepared batch of one warp's vectorized filter reads (line 14)."""
    lanes = np.arange(warp_lanes, dtype=np.int64)
    base = (lanes % tx) * ft * elem
    u_flt = max(1, ft // n)
    unit = n * elem
    matrix = (
        base[np.newaxis, :]
        + np.arange(u_flt, dtype=np.int64)[:, np.newaxis] * unit
    )
    return prepare_batch(matrix, row_bytes)


@functools.lru_cache(maxsize=4096)
def _writeback_batch(warp_lanes, tx, ty, ft, wt, map_stride, elem, n):
    """Prepared batch of the uncoalesced writeback, plus its store width."""
    lanes = np.arange(warp_lanes, dtype=np.int64)
    tx_ids = lanes % tx
    ty_ids = (lanes // tx) % ty
    wide = 16 if (wt * elem) % 16 == 0 else n * elem
    u_out = math.ceil(wt * elem / wide)
    wb_addrs = tx_ids * ft * map_stride + ty_ids * wt * elem
    wb_offsets = (
        np.arange(ft, dtype=np.int64)[:, np.newaxis] * map_stride
        + np.arange(u_out, dtype=np.int64) * wide
    ).reshape(-1, 1)
    matrix = wb_addrs[np.newaxis, :] + wb_offsets
    matrix -= matrix % wide
    return prepare_batch(matrix, math.lcm(wide, KernelTracer.SECTOR_BYTES)), wide


@functools.lru_cache(maxsize=4096)
def _filter_base_alignments(ftb, stride, chunk_step, chunks, seg):
    """Distinct filter-run base alignments mod ``seg`` and their counts.

    The run base walks ``f * stride + chunk * chunk_step``; only its
    residue mod the sector matters to the coalescer, and a whole config
    sweep shares a handful of (ftb, stride, chunk_step, chunks) tuples,
    so the enumeration is memoized.
    """
    base_grid = (
        np.arange(ftb, dtype=np.int64)[:, np.newaxis] * stride
        + np.arange(chunks, dtype=np.int64) * chunk_step
    ) % seg
    values, freqs = np.unique(base_grid, return_counts=True)
    return tuple(values.tolist()), tuple(freqs.tolist())


def rows_of_ty_addr(cfg: GeneralCaseConfig, k: int, ty_ids: np.ndarray) -> np.ndarray:
    """Shared-memory float offsets of each ty group's current image row."""
    rows = (ty_ids * cfg.wt) // cfg.w
    return rows * (cfg.w + k - 1)


def cols_addr(cfg: GeneralCaseConfig, ty_ids: np.ndarray) -> np.ndarray:
    """Shared-memory float offsets of each ty group's starting column."""
    return (ty_ids * cfg.wt) % cfg.w
