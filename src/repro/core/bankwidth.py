"""The shared-memory bank-width model (paper Sec. 2.1).

The model relates the SM bank width ``W_SMB`` to the per-thread
computation data width ``W_CD`` through ``W_SMB = n * W_CD`` (Eq. 1).
When ``n > 1`` the conventional one-element-per-thread pattern
(Fig. 1a) wastes a factor ``n`` of shared-memory bandwidth; having each
thread access and compute ``n`` elements as one vector unit (Fig. 1b)
recovers it.

This module provides:

* the data-type table and the mismatch factor ``n`` for any
  architecture/data-type pair (covering the paper's future-work cases:
  fp16 and int8 are mismatched even on 4-byte-bank architectures);
* builders for the conventional and matched warp address patterns of
  Fig. 1, usable directly against
  :class:`~repro.gpu.memory.banks.SharedMemoryModel`;
* :func:`smem_bandwidth_gain`, which *measures* the achieved gain with
  the bank model rather than asserting it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel

__all__ = [
    "DataType",
    "VectorSpec",
    "mismatch_factor",
    "matched_vector",
    "conventional_pattern",
    "matched_pattern",
    "smem_bandwidth_gain",
]


class DataType(enum.Enum):
    """Computation data types and their widths (the paper's W_CD)."""

    CHAR = ("char", 1)
    HALF = ("half", 2)
    FLOAT = ("float", 4)
    DOUBLE = ("double", 8)

    def __init__(self, label: str, width: int):
        self.label = label
        self.width = width


#: CUDA built-in vector-type names by (element width, lanes), for reporting.
_VECTOR_NAMES = {
    (4, 1): "float",
    (4, 2): "float2",
    (4, 4): "float4",
    (2, 1): "half",
    (2, 2): "half2",
    (2, 4): "half4",
    (1, 1): "char",
    (1, 2): "char2",
    (1, 4): "char4",
    (1, 8): "char8",
    (8, 1): "double",
    (8, 2): "double2",
}


@dataclass(frozen=True)
class VectorSpec:
    """The unit each thread should access and compute: ``n`` elements."""

    data_width: int     # W_CD, bytes per basic element
    n: int              # elements per unit

    def __post_init__(self):
        if self.data_width < 1 or self.n < 1:
            raise ConfigurationError("data_width and n must be positive")

    @property
    def unit_bytes(self) -> int:
        return self.data_width * self.n

    @property
    def name(self) -> str:
        return _VECTOR_NAMES.get(
            (self.data_width, self.n), "vec%dx%d" % (self.data_width, self.n)
        )


def mismatch_factor(arch: GPUArchitecture, data_width: int = 4) -> int:
    """The paper's ``n`` in ``W_SMB = n * W_CD`` (Eq. 1).

    ``n = 1`` means bank width and data width are matched; ``n > 1``
    means the conventional pattern loses a factor ``n`` of SM bandwidth.
    """
    if data_width < 1:
        raise ConfigurationError("data_width must be positive")
    if arch.smem_bank_width % data_width:
        # e.g. a 3-byte type; treat as matched (no vectorization helps).
        return 1
    return max(1, arch.smem_bank_width // data_width)


def matched_vector(arch: GPUArchitecture, data_width: int = 4) -> VectorSpec:
    """The vector unit that matches ``W_CD`` to ``W_SMB`` on ``arch``."""
    return VectorSpec(data_width=data_width, n=mismatch_factor(arch, data_width))


def conventional_pattern(
    num_threads: int, data_width: int, base: int = 0
) -> np.ndarray:
    """Fig. 1a: contiguous threads access contiguous basic elements."""
    if num_threads < 1:
        raise ConfigurationError("num_threads must be positive")
    return base + np.arange(num_threads, dtype=np.int64) * data_width


def matched_pattern(
    num_threads: int, data_width: int, n: int, base: int = 0
) -> np.ndarray:
    """Fig. 1b: each thread accesses one ``n``-element unit.

    Returns the per-lane *unit base addresses*; the access size to use
    with the bank model is ``n * data_width``.
    """
    if num_threads < 1:
        raise ConfigurationError("num_threads must be positive")
    if n < 1:
        raise ConfigurationError("n must be positive")
    return base + np.arange(num_threads, dtype=np.int64) * n * data_width


def smem_bandwidth_gain(
    arch: GPUArchitecture,
    data_width: int = 4,
    elements: int = 512,
    policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    framing: str = "kernel",
) -> float:
    """Measured SM bandwidth ratio of matched over conventional access.

    Moves the same ``elements`` basic elements through the bank model
    both ways and compares delivered bytes per cycle.

    Two framings exist and both appear in the paper:

    ``"fig1"``
        The paper's illustration: a *fixed set of elements* is covered
        either by one thread per element or by one thread per
        ``n``-element unit (so the matched request uses ``1/n`` of the
        lanes).  Under the paper's serialize-on-same-bank policy this
        yields the advertised ``n``-fold gain.

    ``"kernel"``
        What a real kernel does: full warps either way, with the
        matched warp covering ``n`` times the elements per request.
        Under the hardware's word-merge behaviour (Kepler merges
        sub-word accesses to one 64-bit bank word) this also yields an
        ``n``-fold gain — the unmatched warp occupies a request slot
        while moving only half the bytes.

    The remaining two combinations bracket the truth (``fig1`` +
    word-merge gives 1; ``kernel`` + paper-policy gives ``n**2``) and
    are exposed for the bank-policy ablation benchmark.
    """
    if framing not in ("kernel", "fig1"):
        raise ConfigurationError("framing must be 'kernel' or 'fig1'")
    model = SharedMemoryModel(arch, policy)
    n = mismatch_factor(arch, data_width)
    warp = arch.warp_size

    def _throughput(addr_builder, lanes, size, elems_per_req):
        cycles = 0.0
        done = 0
        base = 0
        while done < elements:
            res = model.access(addr_builder(lanes, base), size)
            cycles += res.cycles
            done += elems_per_req
            base += elems_per_req * data_width
        return elements * data_width / cycles  # bytes per cycle

    conv_bw = _throughput(
        lambda lanes, base: conventional_pattern(lanes, data_width, base),
        warp,
        data_width,
        warp,
    )
    if n == 1:
        return 1.0
    matched_lanes = warp // n if framing == "fig1" else warp
    matched_bw = _throughput(
        lambda lanes, base: matched_pattern(lanes, data_width, n, base),
        matched_lanes,
        data_width * n,
        matched_lanes * n,
    )
    return matched_bw / conv_bw
