"""Unified kernel-backend registry.

``repro.kernels`` gives every convolution method in the repository one
uniform surface — the :class:`~repro.kernels.protocol.ConvBackend`
protocol — and one place to find them all — the process-wide
:func:`default_registry`.  The serving dispatcher, the design-space
explorer, the bench figure drivers and the CLI all enumerate the same
registry, so adding a backend is a single ``register()`` call.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.backends import (
    DepthwiseBackend,
    FFTBackend,
    GeneralBackend,
    Im2colBackend,
    ImplicitGemmBackend,
    NaiveBackend,
    SpecialBackend,
    WinogradBackend,
    register_builtin_backends,
)
from repro.kernels.protocol import ConvBackend
from repro.kernels.registry import BackendRegistry

__all__ = [
    "ConvBackend",
    "BackendRegistry",
    "default_registry",
    "reset_default_registry",
    "SpecialBackend",
    "GeneralBackend",
    "DepthwiseBackend",
    "Im2colBackend",
    "ImplicitGemmBackend",
    "NaiveBackend",
    "FFTBackend",
    "WinogradBackend",
    "register_builtin_backends",
]

_default: Optional[BackendRegistry] = None


def default_registry() -> BackendRegistry:
    """The process-wide registry, pre-loaded with the eight built-in
    backends (``special``, ``general``, ``im2col``, ``implicit-gemm``,
    ``naive``, ``fft``, ``winograd``, ``depthwise``)."""
    global _default
    if _default is None:
        _default = register_builtin_backends(BackendRegistry())
    return _default


def reset_default_registry() -> None:
    """Discard the process-wide registry (tests that register throwaway
    backends call this to restore the built-in portfolio)."""
    global _default
    _default = None
