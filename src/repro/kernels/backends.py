"""The built-in backend portfolio: every convolution method in the
repository, wrapped in the :class:`~repro.kernels.protocol.ConvBackend`
protocol and self-registered.

Adding a backend to the system is one registration::

    from repro.kernels import default_registry

    class MyBackend(ConvBackend):
        name = "mine"
        def build(self, problem, arch=KEPLER_K40M, config=None, **kw):
            return MyKernel(arch, **kw)

    default_registry().register(MyBackend())

after which it is servable (``ServeEngine(backends=("mine", ...))``),
listed by ``repro backends``, and admitted to registry-driven sweeps —
no dispatcher, DSE, bench or CLI edits.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.direct_naive import NaiveDirectKernel
from repro.baselines.fft_conv import FFTConvolution
from repro.baselines.im2col import Im2colKernel
from repro.baselines.implicit_gemm import ImplicitGemmKernel
from repro.baselines.winograd import WinogradConvolution
from repro.conv.tensors import ConvProblem, FLOAT_BYTES
from repro.core.depthwise import DepthwiseKernel
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel
from repro.errors import ConfigurationError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.kernels.protocol import ConvBackend
from repro.kernels.registry import BackendRegistry

__all__ = [
    "SpecialBackend",
    "GeneralBackend",
    "DepthwiseBackend",
    "Im2colBackend",
    "ImplicitGemmBackend",
    "NaiveBackend",
    "FFTBackend",
    "WinogradBackend",
    "register_builtin_backends",
]


class _TunedBackend(ConvBackend):
    """Shared behavior of the two paper kernels: configurations come
    from the design-space explorer, so feasibility *is* the existence of
    a valid configuration under the architecture's budgets."""

    #: DSE case label ("special" / "general") — equals the backend name.
    case: str = ""

    def tune(self, problem: ConvProblem,
             arch: GPUArchitecture = KEPLER_K40M,
             full: bool = False, jobs=None):
        """Rank configurations and return the winning
        :class:`~repro.core.dse.RankedConfig` (raises
        :class:`ConfigurationError` when no candidate is valid).

        ``full`` searches the whole Table 1 axis space instead of the
        shippable palette (general case only); ``jobs`` fans candidate
        evaluation out over worker processes.
        """
        ranked = self._explore(problem, arch, full=full, jobs=jobs)
        if not ranked:
            raise ConfigurationError(
                "no valid %s-case configuration for %r on %s"
                % (self.case, problem, arch.name)
            )
        return ranked[0]

    def _explore(self, problem, arch, full, jobs):
        raise NotImplementedError

    def configure(self, problem: ConvProblem,
                  arch: GPUArchitecture = KEPLER_K40M) -> Optional[object]:
        try:
            return self.tune(problem, arch).config
        except ConfigurationError:
            return None

    def feasible(self, problem: ConvProblem,
                 arch: GPUArchitecture) -> bool:
        # The explorer already enforces the smem/register/thread budgets
        # per candidate, so feasibility is "the search is non-empty".
        return self.configure(problem, arch) is not None


class SpecialBackend(_TunedBackend):
    """The paper's special-case kernel (Sec. 3): single input channel,
    filters broadcast from constant memory."""

    name = "special"
    case = "special"
    AXES = {
        "stride": True,
        "dilation": True,
        "groups": "single",
        "layouts": ("nchw", "nhwc"),
    }

    def capability(self, problem: ConvProblem,
                   arch: GPUArchitecture) -> bool:
        if problem.channels != 1:
            return False
        valid = problem.as_valid()
        cm_bytes = valid.filters * valid.kernel_size ** 2 * FLOAT_BYTES
        return cm_bytes <= arch.const_memory_size

    def _explore(self, problem, arch, full, jobs):
        from repro.core.dse import explore_special

        return explore_special(arch, problem=problem, jobs=jobs)

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        if config is not None:
            kwargs["config"] = config
        return SpecialCaseKernel(arch=arch, **kwargs)


class GeneralBackend(_TunedBackend):
    """The paper's general-case kernel (Sec. 4): arbitrary channels,
    register-tiled with contiguous-row output pixels."""

    name = "general"
    case = "general"
    AXES = {
        "stride": True,
        "dilation": True,
        "groups": "single",
        "layouts": ("nchw",),
    }

    def _explore(self, problem, arch, full, jobs):
        from repro.core.bankwidth import matched_vector
        from repro.core.dse import _general_palette, explore_general

        k = problem.as_valid().kernel_size
        configs = None
        if not full:
            configs = _general_palette(k, matched_vector(arch).n)
        return explore_general(k, arch, problem=problem, configs=configs,
                               jobs=jobs)

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        if config is not None:
            kwargs["config"] = config
        return GeneralCaseKernel(arch=arch, **kwargs)


class DepthwiseBackend(_TunedBackend):
    """Depthwise convolution (``groups == channels``): one special-case
    sweep per channel, batched over grid Z (see
    :class:`~repro.core.depthwise.DepthwiseKernel`)."""

    name = "depthwise"
    case = "depthwise"
    AXES = {
        "stride": True,
        "dilation": True,
        "groups": "depthwise",
        "layouts": ("nchw", "nhwc"),
    }

    def capability(self, problem: ConvProblem,
                   arch: GPUArchitecture) -> bool:
        if problem.groups != problem.channels or problem.channels <= 1:
            return False
        valid = problem.as_valid()
        cm_bytes = valid.filters * valid.kernel_size ** 2 * FLOAT_BYTES
        return cm_bytes <= arch.const_memory_size

    def _explore(self, problem, arch, full, jobs):
        from repro.core.dse import explore_special

        return explore_special(
            arch, problem=DepthwiseKernel.group_problem(problem), jobs=jobs)

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        if config is not None:
            kwargs["config"] = config
        return DepthwiseKernel(arch=arch, **kwargs)


class Im2colBackend(ConvBackend):
    """Caffe-style explicit lowering + blocked GEMM."""

    name = "im2col"
    AXES = {
        "stride": True,
        "dilation": True,
        "groups": "any",
        "layouts": ("nchw", "nhwc"),
    }

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        return Im2colKernel(arch=arch, **kwargs)


class ImplicitGemmBackend(ConvBackend):
    """cuDNN-like implicit GEMM: the paper's comparison kernel."""

    name = "implicit-gemm"
    AXES = {
        "stride": True,
        "dilation": True,
        "groups": "single",
        "layouts": ("nchw",),
    }

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        return ImplicitGemmKernel(arch=arch, **kwargs)


class NaiveBackend(ConvBackend):
    """One-thread-per-output direct convolution — the degradation
    target; it supports every valid problem on every architecture."""

    name = "naive"
    AXES = {
        "stride": True,
        "dilation": True,
        "groups": "any",
        "layouts": ("nchw", "nhwc"),
    }

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        return NaiveDirectKernel(arch=arch, **kwargs)


class FFTBackend(ConvBackend):
    """Frequency-domain convolution (paper Sec. 1, refs [12-14])."""

    name = "fft"

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        return FFTConvolution(arch=arch, **kwargs)


class WinogradBackend(ConvBackend):
    """Winograd F(m x m, 3x3) minimal filtering — 3x3 filters only."""

    name = "winograd"

    def capability(self, problem: ConvProblem,
                   arch: GPUArchitecture) -> bool:
        return problem.kernel_size == 3

    def build(self, problem, arch=KEPLER_K40M, config=None, **kwargs):
        if config is not None:
            kwargs["tile"] = config
        return WinogradConvolution(arch=arch, **kwargs)


def register_builtin_backends(registry: BackendRegistry) -> BackendRegistry:
    """Register the eight built-in backends, dispatch-priority first.

    The first five names reproduce the serving layer's historical
    routing order (ties in predicted time break toward the first); FFT,
    Winograd and the depthwise specialization join the portfolio after
    the always-on fallback.
    """
    for backend in (
        SpecialBackend(),
        GeneralBackend(),
        Im2colBackend(),
        ImplicitGemmBackend(),
        NaiveBackend(),
        FFTBackend(),
        WinogradBackend(),
        DepthwiseBackend(),
    ):
        registry.register(backend)
    return registry
