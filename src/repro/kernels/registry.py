"""The central kernel-backend registry.

One :class:`BackendRegistry` holds every :class:`~repro.kernels.protocol.ConvBackend`
under its name and answers the two questions the consumer layers ask:

* :meth:`BackendRegistry.get` — the backend for a name (unknown names
  raise a :class:`~repro.errors.BackendError` that *lists the registered
  names*, so a CLI typo is self-explaining);
* :meth:`BackendRegistry.available` — the ordered candidate portfolio
  for one ``(problem, arch)`` pair, filtered through each backend's
  ``supports`` predicate.

The registry enforces the serving layer's degradation invariant: the
fallback backend (``naive`` by default) is appended to every
``available`` result even when the caller's subset or the predicate
would exclude it, so a dispatcher can always degrade somewhere.

Lookups are observable: every ``get`` and every ``available`` admission
decision increments ``kernel_backend_lookups_total`` /
``kernel_backend_candidates_total`` on the process-wide metrics surface
(labeled by backend and outcome), so ``repro obs`` shows which backends
the stack actually considered.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Sequence

from repro.conv.tensors import ConvProblem
from repro.errors import BackendError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.kernels.protocol import ConvBackend

__all__ = ["BackendRegistry"]


def _lookup_counter():
    from repro.obs.metrics import get_registry

    return get_registry().counter(
        "kernel_backend_lookups_total",
        "Backend registry lookups, by backend name and outcome",
        labelnames=("backend", "outcome"))


def _candidate_counter():
    from repro.obs.metrics import get_registry

    return get_registry().counter(
        "kernel_backend_candidates_total",
        "Backend admission decisions in available(), by backend and outcome",
        labelnames=("backend", "outcome"))


class BackendRegistry:
    """Ordered name -> :class:`ConvBackend` registry with admission."""

    def __init__(self, fallback: str = "naive"):
        #: Name of the degradation target ``available`` always includes.
        self.fallback = fallback
        self._backends: "OrderedDict[str, ConvBackend]" = OrderedDict()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, backend: ConvBackend,
                 replace: bool = False) -> ConvBackend:
        """Register ``backend`` under its ``name``; returns it.

        Re-registering a name raises unless ``replace=True`` (the escape
        hatch for swapping in an instrumented or experimental variant).
        """
        name = getattr(backend, "name", "")
        if not name or not isinstance(name, str):
            raise BackendError(
                "a backend must carry a non-empty string .name, got %r"
                % (name,))
        if name in self._backends and not replace:
            raise BackendError(
                "backend %r is already registered; pass replace=True to "
                "override" % name)
        self._backends[name] = backend
        return backend

    def unregister(self, name: str) -> None:
        """Remove a backend; the fallback cannot be removed."""
        if name == self.fallback and name in self._backends:
            raise BackendError(
                "backend %r is the degradation fallback and cannot be "
                "unregistered" % name)
        if name not in self._backends:
            raise BackendError(self._unknown_message(name))
        del self._backends[name]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple:
        """Registered backend names, in registration order."""
        return tuple(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def __iter__(self) -> Iterator[ConvBackend]:
        return iter(self._backends.values())

    def __len__(self) -> int:
        return len(self._backends)

    def _unknown_message(self, name: str) -> str:
        return ("unknown backend %r; registered backends: %s"
                % (name, ", ".join(sorted(self._backends)) or "(none)"))

    def get(self, name: str) -> ConvBackend:
        """The backend registered under ``name``.

        Raises :class:`BackendError` naming every registered backend
        when the lookup misses.
        """
        backend = self._backends.get(name)
        _lookup_counter().inc(
            backend=str(name), outcome="hit" if backend else "unknown")
        if backend is None:
            raise BackendError(self._unknown_message(name))
        return backend

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def available(
        self,
        problem: ConvProblem,
        arch: GPUArchitecture = KEPLER_K40M,
        names: Optional[Sequence[str]] = None,
        ensure_fallback: bool = True,
    ) -> List[ConvBackend]:
        """The candidate portfolio for ``(problem, arch)``, in order.

        ``names`` restricts (and orders) the considered subset; the
        default is every registered backend in registration order.  Each
        candidate passes through its own ``supports`` predicate, and —
        unless ``ensure_fallback=False`` — the registry's fallback
        backend is appended even when filtered or absent from ``names``,
        preserving the "naive always enabled" degradation invariant.
        """
        order = self.names() if names is None else tuple(names)
        counter = _candidate_counter()
        admitted: List[ConvBackend] = []
        for name in order:
            backend = self.get(name)
            ok = backend.supports(problem, arch)
            counter.inc(backend=name, outcome="admitted" if ok else "filtered")
            if ok:
                admitted.append(backend)
        if (ensure_fallback and self.fallback in self._backends
                and all(b.name != self.fallback for b in admitted)):
            counter.inc(backend=self.fallback, outcome="fallback")
            admitted.append(self._backends[self.fallback])
        return admitted
