"""The ``ConvBackend`` protocol: one uniform surface per convolution
method.

The paper's evaluation is a *backend comparison* — its two kernels
against GEMM-, im2col- and cuDNN-style baselines — and every layer of
this repository (serving dispatch, design-space exploration, the figure
drivers, the CLI) ultimately asks the same five questions of a
convolution method:

* *can you handle this problem on this device?*  (:meth:`ConvBackend.supports`)
* *how should you be configured for it?*          (:meth:`ConvBackend.configure`)
* *give me an executable kernel.*                 (:meth:`ConvBackend.build`)
* *what does it cost?*                            (:meth:`ConvBackend.cost` /
  :meth:`ConvBackend.timing`)
* *run it.*                                       (:meth:`ConvBackend.run`)

A backend is a lightweight, stateless *factory* over one of the kernel
classes (``SpecialCaseKernel``, ``Im2colKernel``, ...): ``build``
instantiates the kernel for an architecture and an optional tuned
configuration, and the convenience methods delegate to a fresh build.
Backends carry no per-problem state, so one instance can serve every
architecture and every shape concurrently.

``supports`` is a *capability + resource-feasibility* predicate: it must
be exactly as strong as ``build`` — a backend admitted for a problem
must construct without raising (the registry parity suite enforces
this) — and should reject problems whose launch would violate the
architecture's shared-memory / register / thread budgets.

Since the problem model grew stride / dilation / groups / layout axes,
every backend also declares which of those generalized axes it serves
via the :attr:`ConvBackend.AXES` class attribute; ``supports`` chains
the :meth:`axes_ok` gate in front of capability and feasibility so a
backend written for the classic default axes never sees a strided,
dilated, grouped or NHWC problem.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ReproError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.timing import TimingBreakdown, TimingModel

__all__ = ["ConvBackend"]


class ConvBackend(ABC):
    """One convolution method, viewed uniformly by every consumer layer.

    Subclasses must set :attr:`name` (the registry key) and implement
    :meth:`build`; the capability predicate, the DSE hook and the
    costing conveniences have safe defaults.
    """

    #: Registry key and dispatch label (``"special"``, ``"im2col"``, ...).
    name: str = ""

    #: Generalized-axis support: which problem axes beyond the classic
    #: defaults (stride=1, dilation=1, groups=1, NCHW) this backend
    #: serves.  ``stride`` / ``dilation`` are booleans; ``groups`` is
    #: ``"single"`` (ungrouped only), ``"depthwise"`` (groups ==
    #: channels) or ``"any"``; ``layouts`` lists accepted
    #: :class:`~repro.conv.tensors.Layout` values.  The conservative
    #: default declares exactly the pre-generalization contract.
    AXES = {
        "stride": False,
        "dilation": False,
        "groups": "single",
        "layouts": ("nchw",),
    }

    # ------------------------------------------------------------------
    # Capability + feasibility
    # ------------------------------------------------------------------
    def supports(self, problem: ConvProblem,
                 arch: GPUArchitecture = KEPLER_K40M) -> bool:
        """Whether this backend can serve ``problem`` on ``arch``.

        ``supports() is True`` guarantees :meth:`build` succeeds for the
        same ``(problem, arch)`` pair.  The default chains the axis gate
        (:meth:`axes_ok`) with the cheap structural test
        (:meth:`capability`) and the resource test (:meth:`feasible`).
        """
        try:
            problem.as_valid()
        except ReproError:
            return False
        return (self.axes_ok(problem)
                and self.capability(problem, arch)
                and self.feasible(problem, arch))

    def axes_ok(self, problem: ConvProblem) -> bool:
        """Whether ``problem``'s generalized axes fall inside
        :attr:`AXES`.  Default-axis problems always pass."""
        axes = self.AXES
        if problem.stride != 1 and not axes.get("stride", False):
            return False
        if problem.dilation != 1 and not axes.get("dilation", False):
            return False
        if problem.groups != 1:
            grouping = axes.get("groups", "single")
            if grouping == "single":
                return False
            if (grouping == "depthwise"
                    and problem.groups != problem.channels):
                return False
        return problem.layout.value in axes.get("layouts", ("nchw",))

    def capability(self, problem: ConvProblem,
                   arch: GPUArchitecture) -> bool:
        """Cheap structural predicate (channel counts, filter sizes...).

        Default: every valid problem is structurally acceptable.
        """
        return True

    def feasible(self, problem: ConvProblem,
                 arch: GPUArchitecture) -> bool:
        """Resource-feasibility on ``arch`` (smem / register / thread
        budgets).

        The default builds the kernel with its default configuration
        and, when the kernel exposes a ``launch_config(problem)`` probe,
        validates the launch against the architecture's per-block
        limits.  Backends whose configurations come from the DSE
        override this to ask :meth:`configure` instead.
        """
        try:
            kernel = self.build(problem, arch)
            probe = getattr(kernel, "launch_config", None)
            if probe is None:
                return True
            launch = probe(problem)
        except ReproError:
            return False
        return (launch.threads_per_block <= arch.max_threads_per_block
                and launch.smem_per_block <= arch.smem_per_block_max
                and launch.registers_per_thread
                <= arch.max_registers_per_thread)

    # ------------------------------------------------------------------
    # Configuration (the DSE hook)
    # ------------------------------------------------------------------
    def configure(self, problem: ConvProblem,
                  arch: GPUArchitecture = KEPLER_K40M) -> Optional[object]:
        """The tuned configuration for ``problem`` on ``arch``.

        ``None`` means "no tunable configuration" — either the backend
        has none (the baselines) or the search found no valid candidate.
        The paper kernels override this with the design-space explorer.
        """
        return None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, problem: Optional[ConvProblem],
              arch: GPUArchitecture = KEPLER_K40M,
              config: Optional[object] = None, **kwargs):
        """Instantiate the kernel for ``arch`` (and ``config`` if given).

        ``problem`` may be ``None``: kernels are problem-independent
        objects, and the argument exists so configuration-sensitive
        backends can specialize.  Extra ``kwargs`` pass through to the
        kernel constructor (``matched=False``, ``bank_policy=...``,
        ``dtype=...`` — the ablation knobs the bench layer turns).
        """

    # ------------------------------------------------------------------
    # Costing + execution conveniences
    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem,
             arch: GPUArchitecture = KEPLER_K40M,
             config: Optional[object] = None):
        """Traced/analytic :class:`~repro.gpu.trace.KernelCost` for
        ``problem`` under the default (or given) configuration."""
        return self.build(problem, arch, config).cost(problem)

    def timing(self, problem: ConvProblem,
               model: Optional[TimingModel] = None,
               arch: GPUArchitecture = KEPLER_K40M,
               config: Optional[object] = None) -> TimingBreakdown:
        """Predicted :class:`~repro.gpu.timing.TimingBreakdown`.

        ``model`` defaults to a fresh :class:`TimingModel` over ``arch``;
        pass one explicitly when pricing many problems.
        """
        kernel = self.build(problem, arch, config)
        return kernel.predict(problem, model or TimingModel(arch))

    def run(self, image: np.ndarray, filters: np.ndarray,
            padding: Padding = Padding.VALID,
            arch: GPUArchitecture = KEPLER_K40M,
            config: Optional[object] = None,
            problem: Optional[ConvProblem] = None) -> np.ndarray:
        """Build and functionally execute in one call.

        Pass ``problem`` for non-default axes (stride, dilation, groups,
        NHWC) — without it the kernel infers a default-axis problem from
        the array shapes, as before.
        """
        if problem is not None:
            padding = problem.padding
        return self.build(problem, arch, config).run(
            image, filters, padding, problem=problem)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return "<%s name=%r>" % (type(self).__name__, self.name)
