"""Analytical timing model.

Converts a :class:`~repro.gpu.trace.KernelCost` (traced traffic) into an
execution-time estimate.  The model is a bounded-overlap roofline:

1.  Each subsystem contributes a *throughput time* — the time it would
    take if that subsystem were the only bottleneck and the whole
    machine were busy:

    * compute: ``flops / peak_sp_gflops``
    * global memory: ``segments_moved * 128 B / sustained_bandwidth``
    * shared memory: one warp request per SM per clock, serialized
      cycles from the bank model
    * constant memory: one broadcast per SM per clock

2.  Subsystems overlap imperfectly.  With enough resident warps the
    total approaches ``max(components)``; with few warps it degrades
    toward ``sum(components)``.  The overlap efficiency ``eta`` grows
    with resident warps per SM and saturates at ``eta_max``; software
    prefetching (both of the paper's kernels, Algorithms 1–2) halves the
    warps needed to reach saturation, because the prefetch distance
    provides intra-thread overlap that otherwise must come from
    inter-warp scheduling.

3.  Small grids cannot fill the machine.  Three separate effects:
    idle SMs (fewer blocks than SMs), insufficient resident warps to
    saturate a busy SM's pipelines (``SAT_WARPS``), and — for grids
    just over a whole number of waves — a partial tail wave priced at
    ``(floor(waves) + sqrt(frac)) / waves``.  Together these reproduce
    the paper's observation that its general-case kernel can lose to
    cuDNN only on very small images (Sec. 5.2).

4.  ``__syncthreads`` barriers and kernel launches add fixed costs.

All constants are architecture-independent and documented below; none
are tuned per experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.occupancy import occupancy
from repro.gpu.trace import KernelCost
from repro.obs import metrics as _metrics

__all__ = ["TimingBreakdown", "TimingModel"]

#: Host-side cost of one kernel launch (driver + queueing), seconds.
LAUNCH_OVERHEAD_S = 5e-6

#: Pipeline cost of one block-wide barrier, cycles.
SYNC_CYCLES = 30.0

#: Resident warps per SM needed to fully hide latency without software
#: prefetching (Kepler needs ~halfway occupancy for bandwidth-bound code).
HIDE_WARPS = 16.0

#: With software prefetching the same hiding needs fewer warps.
HIDE_WARPS_PREFETCH = 6.0

#: Resident warps per SM needed to saturate the SM's issue/memory
#: pipelines at all (below this, raw throughput scales down even for a
#: perfectly overlapped kernel).
SAT_WARPS = 8.0

#: Upper bound on overlap efficiency — issue overheads and barriers keep
#: real kernels below perfect overlap.
ETA_MAX = 0.92

#: Fraction of the theoretical FMA peak a well-tuned register-blocked
#: kernel can sustain.  Dual-issue limits, operand-collector stalls and
#: address arithmetic cap even cuBLAS SGEMM at ~70% of peak on Kepler
#: (3.0 of 4.29 TFlop/s on a K40m); this is that cap, applied uniformly
#: to every kernel's compute component.
COMPUTE_EFFICIENCY = 0.70


@dataclass(frozen=True)
class TimingBreakdown:
    """Component times (seconds) and derived totals for one launch."""

    name: str
    t_compute: float
    t_gmem: float
    t_l2: float
    t_smem: float
    t_cmem: float
    t_sync: float
    t_launch: float
    eta: float                  # overlap efficiency actually applied
    waves: float                # grid waves over the machine
    occupancy_fraction: float
    total: float                # end-to-end estimate, seconds

    @property
    def bound_by(self) -> str:
        """Which throughput component dominates."""
        parts = {
            "compute": self.t_compute,
            "gmem": self.t_gmem,
            "l2": self.t_l2,
            "smem": self.t_smem,
            "cmem": self.t_cmem,
        }
        return max(parts, key=lambda k: parts[k])

    def gflops(self, flops: float) -> float:
        """Achieved GFlop/s for a nominal operation count."""
        if self.total <= 0:
            raise TraceError("cannot compute a rate for non-positive time")
        return flops / self.total / 1e9


class TimingModel:
    """Bounded-overlap roofline evaluator for one architecture."""

    def __init__(
        self,
        arch: GPUArchitecture,
        launch_overhead_s: float = LAUNCH_OVERHEAD_S,
        sync_cycles: float = SYNC_CYCLES,
        hide_warps: float = HIDE_WARPS,
        hide_warps_prefetch: float = HIDE_WARPS_PREFETCH,
        sat_warps: float = SAT_WARPS,
        eta_max: float = ETA_MAX,
        compute_efficiency: float = COMPUTE_EFFICIENCY,
        registry=None,
    ):
        self.arch = arch
        # None = publish evaluations to the process-wide metrics
        # registry; pass a private Registry to redirect.
        self.registry = registry
        self.launch_overhead_s = launch_overhead_s
        self.sync_cycles = sync_cycles
        self.hide_warps = hide_warps
        self.hide_warps_prefetch = hide_warps_prefetch
        self.sat_warps = sat_warps
        self.eta_max = eta_max
        self.compute_efficiency = compute_efficiency

    # ------------------------------------------------------------------
    def _publish(self, kernel: str, components: dict) -> None:
        """Mirror an evaluation into the metrics registry per component."""
        reg = self.registry if self.registry is not None \
            else _metrics.get_registry()
        seconds = reg.counter(
            "gpu_modeled_seconds_total",
            "Modeled execution seconds, by kernel and roofline component",
            labelnames=("kernel", "component"))
        for component, value in components.items():
            seconds.inc_key((kernel, component), value)
        reg.counter(
            "gpu_timing_evaluations_total",
            "Timing-model evaluations, by kernel",
            labelnames=("kernel",)).inc_key((kernel,))

    # ------------------------------------------------------------------
    def evaluate(self, cost: KernelCost) -> TimingBreakdown:
        arch = self.arch
        led = cost.ledger
        occ = occupancy(arch, cost.launch)

        t_compute = led.flops / (arch.peak_sp_gflops * 1e9 * self.compute_efficiency)
        t_gmem = led.gmem_bytes_moved / (arch.sustained_gmem_bandwidth_gbs * 1e9)
        t_l2 = led.gmem_l2_bytes / (arch.l2_bandwidth_gbs * 1e9)
        per_sm_clock = arch.sm_count * arch.clock_hz
        t_smem = led.smem_cycles / per_sm_clock
        t_cmem = led.cmem_cycles / per_sm_clock

        components = (t_compute, t_gmem, t_l2, t_smem, t_cmem)
        t_max = max(components)
        t_sum = sum(components)

        # Warps actually resident per busy SM: capped by the occupancy
        # limit, but a small grid may not supply enough blocks to reach
        # it.
        blocks = cost.launch.total_blocks
        warps_per_block = occ.warps_per_block
        resident_blocks = min(
            float(occ.blocks_per_sm), max(1.0, blocks / arch.sm_count)
        )
        warps_resident = warps_per_block * resident_blocks

        hide = self.hide_warps_prefetch if cost.software_prefetch else self.hide_warps
        eta = self.eta_max * min(1.0, warps_resident / hide)

        busy = t_max + (1.0 - eta) * (t_sum - t_max)

        # Raw throughput scaling: too few resident warps cannot keep an
        # SM's pipelines busy, and a grid smaller than the SM count
        # leaves whole SMs idle.  The square root reflects instruction-
        # level parallelism: register-tiled kernels issue many
        # independent operations per warp, so throughput degrades
        # sub-linearly as warps thin out.
        u_warps = min(1.0, math.sqrt(warps_resident / self.sat_warps))
        sm_fill = min(1.0, blocks / arch.sm_count)
        busy /= u_warps * sm_fill

        slots = occ.blocks_per_sm * arch.sm_count
        waves = blocks / slots
        if waves >= 1.0:
            # Partial-wave model: the tail wave drains early in
            # proportion to its fill; the square root reflects that
            # lone tail blocks get a whole SM pipeline to themselves
            # but cannot fully saturate it (between the linear-
            # optimistic and full-wave-pessimistic extremes).
            full, frac = divmod(waves, 1.0)
            busy *= (full + math.sqrt(frac)) / waves

        # Barriers: blocks on one SM overlap each other, so charge the
        # per-block barrier chain once per resident slot per wave.
        syncs_per_block = led.syncthreads / max(cost.launch.total_blocks, 1)
        t_sync = syncs_per_block * self.sync_cycles * math.ceil(waves) / arch.clock_hz

        t_launch = self.launch_overhead_s * cost.launches

        total = busy + t_sync + t_launch
        self._publish(cost.name, {
            "compute": t_compute, "gmem": t_gmem, "l2": t_l2,
            "smem": t_smem, "cmem": t_cmem, "sync": t_sync,
            "launch": t_launch, "total": total,
        })
        return TimingBreakdown(
            name=cost.name,
            t_compute=t_compute,
            t_gmem=t_gmem,
            t_l2=t_l2,
            t_smem=t_smem,
            t_cmem=t_cmem,
            t_sync=t_sync,
            t_launch=t_launch,
            eta=eta,
            waves=waves,
            occupancy_fraction=occ.occupancy_fraction(arch),
            total=total,
        )
