"""Vectorized whole-warp trace generation for the paper's two kernels.

The interpreted executors (:mod:`repro.core.special_interpreted`,
:mod:`repro.core.general_interpreted`) walk Algorithms 1-2 warp by
warp in Python, pushing every request through the memory models one at
a time.  That is the right shape for an *oracle* but far too slow for
sweeps.  This module generates the same request streams analytically:
for each access site it enumerates, in numpy, the scalar byte base of
every (block, iteration) instance plus the per-lane relative pattern
shared by all of them, folds the bases down to their residues modulo
the memory structure period (see the canonical-pattern cache notes in
:mod:`repro.gpu.trace`), and feeds the distinct ``(warps, lanes)``
residue matrices through the batch tracer API with summed
multiplicities.

The result is a :class:`~repro.gpu.trace.KernelCost` that is
**byte-identical** to what the interpreter would have produced — same
ledger, same per-site statistics, same launch — because

* every per-request model outcome (cycles, phases, transactions,
  request/unique bytes, serializations) is an integer, and all counts
  are integer-valued, so float64 accumulation is exact regardless of
  grouping or order;
* a request's model outcome depends only on its addresses modulo the
  structure period, so folding a base down to its residue cannot change
  the canonical pattern the model sees;
* the interpreted path runs through the very same canonical-pattern
  cache, so on a model-call miss both paths invoke the model with the
  same canonical row.

The interpreters stay on as the cross-check oracle: pass ``audit=True``
to ``run_traced`` (or set ``REPRO_AUDIT=1``, or use the CLI ``--audit``
flags) and the fast result is compared field-for-field against a full
interpreted run — any difference raises
:class:`~repro.errors.AuditMismatchError`.

For *cost-only* queries (`cost()`), the default path is the analytic
closed-form model of Secs. 3-4 (:class:`~repro.core.special.SpecialCaseKernel`
/ :class:`~repro.core.general.GeneralCaseKernel`), which covers
arbitrary problem shapes; ``exact=True`` selects the generated trace,
which matches the interpreter bit-for-bit but, like the interpreter,
requires the output to tile the block grid exactly.
"""

from __future__ import annotations

import math
import os
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.conv.tensors import ConvProblem
from repro.errors import AuditMismatchError, ConfigurationError, ShapeError, TraceError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.device import _GLOBAL_ALIGN, _env_handicap
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.trace import KernelCost, KernelTracer
from repro.obs.perf.profiler import maybe_profile

__all__ = [
    "AUDIT_ENV",
    "audit_enabled",
    "kernel_cost_diffs",
    "FastSpecialKernel",
    "FastGeneralKernel",
]

#: Set to ``1`` (or ``true``/``yes``/``on``) to make every fast
#: ``run_traced`` re-run the interpreted oracle and verify the
#: generated trace field-for-field.
AUDIT_ENV = "REPRO_AUDIT"


def audit_enabled(override: Optional[bool] = None) -> bool:
    """Whether the interpreted cross-check oracle should run.

    ``override`` (the ``audit=`` parameter) wins; otherwise the
    ``REPRO_AUDIT`` environment variable decides.
    """
    if override is not None:
        return bool(override)
    return os.environ.get(AUDIT_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


# ----------------------------------------------------------------------
# KernelCost comparison (the audit contract)
# ----------------------------------------------------------------------

_LEDGER_FIELDS = (
    "flops",
    "gmem_read_transactions", "gmem_read_request_bytes",
    "gmem_read_bytes_moved", "gmem_write_transactions",
    "gmem_write_request_bytes", "gmem_write_bytes_moved",
    "gmem_segment_size", "gmem_l2_bytes",
    "smem_requests", "smem_cycles", "smem_min_cycles",
    "smem_request_bytes",
    "cmem_requests", "cmem_cycles", "syncthreads",
)

_SITE_FIELDS = (
    "kind", "executions", "cycles", "transactions",
    "request_bytes", "unique_bytes",
)

_LAUNCH_FIELDS = ("grid", "block", "registers_per_thread", "smem_per_block")


def kernel_cost_diffs(fast: KernelCost, oracle: KernelCost) -> List[str]:
    """Field-for-field differences between two kernel costs.

    Every field except ``name`` must be *exactly* equal (``==``, no
    tolerance): launch geometry, flags, all ledger counters, and every
    per-site statistic.  Returns human-readable difference strings;
    empty means byte-identical.
    """
    diffs: List[str] = []
    for attr in ("software_prefetch", "launches"):
        a, b = getattr(fast, attr), getattr(oracle, attr)
        if a != b:
            diffs.append("%s: fast=%r oracle=%r" % (attr, a, b))
    for attr in _LAUNCH_FIELDS:
        a, b = getattr(fast.launch, attr), getattr(oracle.launch, attr)
        if a != b:
            diffs.append("launch.%s: fast=%r oracle=%r" % (attr, a, b))
    for attr in _LEDGER_FIELDS:
        a, b = getattr(fast.ledger, attr), getattr(oracle.ledger, attr)
        if a != b:
            diffs.append("ledger.%s: fast=%r oracle=%r" % (attr, a, b))
    fast_sites, oracle_sites = fast.ledger.sites, oracle.ledger.sites
    for name in oracle_sites:
        if name not in fast_sites:
            diffs.append("site %s: missing from the fast trace" % name)
    for name in fast_sites:
        if name not in oracle_sites:
            diffs.append("site %s: absent from the oracle trace" % name)
    for name in fast_sites:
        if name not in oracle_sites:
            continue
        for attr in _SITE_FIELDS:
            a = getattr(fast_sites[name], attr)
            b = getattr(oracle_sites[name], attr)
            if a != b:
                diffs.append("site %s.%s: fast=%r oracle=%r"
                             % (name, attr, a, b))
    return diffs


def _raise_mismatch(name: str, oracle_name: str, diffs: List[str]) -> None:
    shown = "; ".join(diffs[:8])
    if len(diffs) > 8:
        shown += "; ... (%d more)" % (len(diffs) - 8)
    raise AuditMismatchError(
        "audit failed: %s disagrees with the interpreted oracle %s "
        "in %d field(s): %s" % (name, oracle_name, len(diffs), shown))


# ----------------------------------------------------------------------
# Residue folding and span checks
# ----------------------------------------------------------------------

def _fold_bases(bases, rels, mod: int) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse absolute scalar bases to residues mod the structure period.

    ``bases`` holds one byte base per request-group instance (block,
    row, iteration...); ``rels`` the relative byte patterns shared by
    every instance — one row per warp-shape variant, one column per
    lane.  A request's model outcome depends only on its base modulo
    ``mod`` (the batch tracer canonicalizes by multiples of ``mod``),
    so the distinct residues with their multiplicities carry the whole
    batch.  Returns the ``(rows, lanes)`` address matrix and the
    per-row counts, ready for a ``*_batch`` tracer call.
    """
    vals, cnt = np.unique(
        np.asarray(bases, dtype=np.int64).reshape(-1) % mod,
        return_counts=True)
    rels = np.asarray(rels, dtype=np.int64)
    if rels.ndim == 1:
        rels = rels[np.newaxis, :]
    matrix = (vals[:, np.newaxis, np.newaxis] + rels[np.newaxis]).reshape(
        -1, rels.shape[1])
    counts = np.repeat(cnt.astype(np.float64), rels.shape[0])
    return matrix, counts


def _check_global_span(name: str, size_floats: int, lo: int, hi: int,
                       vector: int, site: str) -> None:
    """Replicate :meth:`GlobalArray.addresses`' whole-span bounds check."""
    if lo < 0 or hi + (vector - 1) >= size_floats:
        raise TraceError(
            "global index out of range in %s (vector=%d) at site %r"
            % (name, vector, site))


def _check_shared_span(name: str, size_floats: int, lo: int, hi: int,
                       vector: int, site: str) -> None:
    """Replicate :meth:`SharedArray.addresses`' whole-span bounds check."""
    if lo < 0 or hi + (vector - 1) >= size_floats:
        raise TraceError(
            "shared index out of range in %s (vector=%d) at site %r"
            % (name, vector, site))


def _round_up(value: int, unit: int) -> int:
    return (value + unit - 1) // unit * unit


# ----------------------------------------------------------------------
# Special case (Algorithm 1)
# ----------------------------------------------------------------------

class FastSpecialKernel:
    """Vectorized trace twin of :class:`InterpretedSpecialKernel`.

    Same thread layout, circular row window, constant-memory broadcasts
    and prefetch schedule as the interpreter — but the request streams
    are generated in closed form and folded through the batch tracer,
    with no Python per-warp (or even per-block) loop.
    """

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config=None,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        handicap: Optional[float] = None,
    ):
        from repro.core.bankwidth import matched_vector
        from repro.core.config import SpecialCaseConfig

        self.arch = arch
        self.config = config if config is not None \
            else SpecialCaseConfig(block_w=64, block_h=4)
        self.matched = matched
        self.bank_policy = bank_policy
        # Same wall-clock injector contract as DeviceExecutor: None
        # reads REPRO_SIM_HANDICAP once, 1.0 pins it off.
        self.handicap = _env_handicap() if handicap is None \
            else max(1.0, float(handicap))
        self.n = matched_vector(arch).n if matched else 1
        self.name = "special-fastsim[%s,n=%d]" % (arch.name, self.n)

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem, exact: bool = False) -> KernelCost:
        """Kernel cost for a problem shape (no data).

        ``exact=False`` routes through the Sec. 3 closed-form model,
        which covers arbitrary shapes; ``exact=True`` generates the
        byte-identical executed trace (aligned problems only).
        """
        if exact:
            return self.trace_cost(problem)
        from repro.core.special import SpecialCaseKernel

        return SpecialCaseKernel(
            arch=self.arch, config=self.config, matched=self.matched,
            bank_policy=self.bank_policy).cost(problem)

    # ------------------------------------------------------------------
    def run_traced(
        self, image: np.ndarray, filters: np.ndarray,
        audit: Optional[bool] = None,
    ) -> Tuple[np.ndarray, KernelCost]:
        """Convolve and return ``(output, executed-trace cost)``.

        Bit-identical to ``InterpretedSpecialKernel.run_traced`` in
        both values, at batch speed.  ``audit`` (or ``REPRO_AUDIT=1``)
        additionally runs the interpreter and verifies that claim.
        """
        img = np.asarray(image, dtype=np.float32)
        flt = np.asarray(filters, dtype=np.float32)
        if img.ndim != 2:
            raise ShapeError("image must be 2-D (H, W)")
        if flt.ndim == 2:
            flt = flt[np.newaxis]
        if flt.ndim != 3 or flt.shape[1] != flt.shape[2]:
            raise ShapeError("filters must be (F, K, K)")
        k = flt.shape[1]
        f_count = flt.shape[0]
        self.config.validate(k, self.n, self.arch.warp_size)
        problem = ConvProblem(
            height=img.shape[0], width=img.shape[1], channels=1,
            filters=f_count, kernel_size=k,
        )
        start = time.perf_counter()
        with maybe_profile("fastsim.special"):
            cost = self.trace_cost(problem)
            oh, ow = problem.out_height, problem.out_width
            # Same per-element accumulation order as the interpreter's
            # FMA loop ((dy, dx) ascending, float32 multiply then add),
            # so the output matches it bit for bit.
            acc = np.zeros((f_count, oh, ow), dtype=np.float32)
            for dy in range(k):
                for dx in range(k):
                    acc = acc + flt[:, dy, dx][:, np.newaxis, np.newaxis] \
                        * img[np.newaxis, dy:dy + oh, dx:dx + ow]
        if self.handicap > 1.0:
            time.sleep((time.perf_counter() - start) * (self.handicap - 1.0))
        if audit_enabled(audit):
            self._audit(img, flt, acc, cost)
        return acc, cost

    # ------------------------------------------------------------------
    def _audit(self, img, flt, out, cost) -> None:
        from repro.core.special_interpreted import InterpretedSpecialKernel

        oracle = InterpretedSpecialKernel(
            arch=self.arch, config=self.config, matched=self.matched,
            bank_policy=self.bank_policy)
        ref_out, ref_cost = oracle.run_traced(img, flt)
        diffs = kernel_cost_diffs(cost, ref_cost)
        if out.shape != ref_out.shape or not np.array_equal(
                out.view(np.uint32), ref_out.view(np.uint32)):
            diffs.append("output buffers differ bitwise")
        if diffs:
            _raise_mismatch(self.name, oracle.name, diffs)

    # ------------------------------------------------------------------
    def trace_cost(self, problem: ConvProblem) -> KernelCost:
        """Generate the executed-trace cost for an aligned problem."""
        cfg, n, arch = self.config, self.n, self.arch
        ws = arch.warp_size
        k = problem.kernel_size
        f_count = problem.filters
        if problem.channels != 1:
            raise ConfigurationError(
                "the special-case kernel handles one input channel, got %d"
                % problem.channels)
        cfg.validate(k, n, ws)
        oh, ow = problem.out_height, problem.out_width
        w, h = cfg.block_w, cfg.block_h
        if oh % h or ow % w:
            raise ConfigurationError(
                "the audit kernel needs the %dx%d output to tile the "
                "%dx%d block exactly" % (oh, ow, h, w))
        if f_count * k * k * 4 > arch.const_memory_size:
            raise TraceError("constant allocation exceeds constant memory")

        img_h, img_w = problem.height, problem.width
        threads = cfg.threads(n)
        warps = threads // ws
        row_floats = cfg.smem_row_floats(k, n)
        halo_units = math.ceil((k - 1) / n)
        window_units = 1 + halo_units
        blocks_y, blocks_x = oh // h, ow // w
        blocks = blocks_y * blocks_x
        unit = n * 4

        # DeviceExecutor allocation layout: image at 512, output after.
        g_img_base = _GLOBAL_ALIGN
        g_out_base = g_img_base + _round_up(img_h * img_w * 4, _GLOBAL_ALIGN)
        img_size = img_h * img_w
        out_size = f_count * oh * ow

        tracer = KernelTracer(arch, self.bank_policy)
        gmod = tracer.gmem_batch_mod(unit)
        smod = tracer.smem_batch_mod()
        lane = np.arange(threads, dtype=np.int64).reshape(warps, ws)
        rel_row = lane * unit            # each warp's slice of one row

        # gm.load_row: every staged input row of every block, once.
        row_idx = (np.arange(blocks_y, dtype=np.int64)[:, np.newaxis] * h
                   + np.arange(h + k - 1, dtype=np.int64)[np.newaxis, :])
        col0 = np.arange(blocks_x, dtype=np.int64) * w
        base_idx = (row_idx[:, :, np.newaxis] * img_w
                    + col0[np.newaxis, np.newaxis, :]).reshape(-1)
        _check_global_span("image", img_size, int(base_idx.min()),
                           int(base_idx.max()) + (threads - 1) * n,
                           n, "gm.load_row")
        matrix, counts = _fold_bases(g_img_base + base_idx * 4, rel_row, gmod)
        tracer.gmem_read_batch(matrix, unit, counts=counts,
                               site="gm.load_row")

        if halo_units:
            rel_halo = (w + np.arange(halo_units, dtype=np.int64) * n) * 4
            _check_global_span(
                "image", img_size, int(base_idx.min()) + w,
                int(base_idx.max()) + w + (halo_units - 1) * n,
                n, "gm.load_row_halo")
            matrix, counts = _fold_bases(g_img_base + base_idx * 4,
                                         rel_halo, gmod)
            tracer.gmem_read_batch(matrix, unit, counts=counts,
                                   site="gm.load_row_halo")

        # sm.store_row: K initial rows plus one prefetch store per
        # output row but the last; slot multiplicities by circular slot.
        store_slots = np.concatenate([
            np.arange(k, dtype=np.int64),
            np.arange(h - 1, dtype=np.int64) % k,
        ])
        smem_size = k * row_floats
        _check_shared_span("rows", smem_size,
                           int(store_slots.min()) * row_floats,
                           int(store_slots.max()) * row_floats
                           + (threads - 1) * n, n, "sm.store_row")
        matrix, counts = _fold_bases(store_slots * (row_floats * 4),
                                     rel_row, smod)
        tracer.smem_write_batch(matrix, unit, counts=counts * float(blocks),
                                site="sm.store_row")
        if halo_units:
            rel_halo_s = (w + np.arange(halo_units, dtype=np.int64) * n) * 4
            _check_shared_span("rows", smem_size,
                               int(store_slots.min()) * row_floats + w,
                               int(store_slots.max()) * row_floats + w
                               + (halo_units - 1) * n, n, "sm.store_row_halo")
            matrix, counts = _fold_bases(store_slots * (row_floats * 4),
                                         rel_halo_s, smod)
            tracer.smem_write_batch(matrix, unit,
                                    counts=counts * float(blocks),
                                    site="sm.store_row_halo")

        # sm.load_window: K-1 priming rows plus one refresh per output
        # row, each read as window_units overlapping vector slices.
        win_slots = np.concatenate([
            np.arange(k - 1, dtype=np.int64),
            (np.arange(h, dtype=np.int64) + k - 1) % k,
        ])
        rel_win = ((lane[np.newaxis, :, :]
                    + np.arange(window_units,
                                dtype=np.int64)[:, np.newaxis, np.newaxis])
                   * unit).reshape(window_units * warps, ws)
        _check_shared_span("rows", smem_size,
                           int(win_slots.min()) * row_floats,
                           int(win_slots.max()) * row_floats
                           + (threads - 1 + window_units - 1) * n,
                           n, "sm.load_window")
        matrix, counts = _fold_bases(win_slots * (row_floats * 4),
                                     rel_win, smod)
        tracer.smem_read_batch(matrix, unit, counts=counts * float(blocks),
                               site="sm.load_window")

        # cm.filter_tap: every tap is a full-warp broadcast; all of them
        # share the canonical all-zero pattern.
        tap_requests = float(h * f_count * k * k * warps * blocks)
        tracer.cmem_read(np.zeros(ws, dtype=np.int64), count=tap_requests,
                         site="cm.filter_tap")

        # FMA rounds: 2 flops per lane per vector element.
        tracer.flops(2.0 * ws * n * float(k * k * f_count * h * warps * blocks))

        # gm.store_out: one vector store per (output row, filter, warp).
        out_base_idx = (
            np.arange(f_count, dtype=np.int64)[:, np.newaxis, np.newaxis]
            * (oh * ow)
            + np.arange(oh, dtype=np.int64)[np.newaxis, :, np.newaxis] * ow
            + col0[np.newaxis, np.newaxis, :]).reshape(-1)
        _check_global_span("out", out_size, int(out_base_idx.min()),
                           int(out_base_idx.max()) + (threads - 1) * n,
                           n, "gm.store_out")
        matrix, counts = _fold_bases(g_out_base + out_base_idx * 4,
                                     rel_row, gmod)
        tracer.gmem_write_batch(matrix, unit, counts=counts,
                                site="gm.store_out")

        tracer.sync(float((1 + 2 * h) * blocks))

        launch = LaunchConfig(
            grid=Dim3(x=blocks_x, y=blocks_y),
            block=Dim3(x=threads),
            registers_per_thread=cfg.registers_per_thread(k, n),
            smem_per_block=smem_size * 4,
        )
        return tracer.finish(name=self.name, launch=launch,
                             software_prefetch=True)


# ----------------------------------------------------------------------
# General case (Algorithm 2)
# ----------------------------------------------------------------------

class FastGeneralKernel:
    """Vectorized trace twin of :class:`InterpretedGeneralKernel`."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        config=None,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        handicap: Optional[float] = None,
    ):
        from repro.core.bankwidth import matched_vector
        from repro.core.config import GeneralCaseConfig

        self.arch = arch
        self.config = config if config is not None \
            else GeneralCaseConfig(w=32, h=4, ftb=16, wt=16, ft=4, csh=2)
        self.matched = matched
        self.bank_policy = bank_policy
        self.handicap = _env_handicap() if handicap is None \
            else max(1.0, float(handicap))
        self.n = matched_vector(arch).n if matched else 1
        self.name = "general-fastsim[%s,n=%d]" % (arch.name, self.n)

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem, exact: bool = False) -> KernelCost:
        """Kernel cost for a problem shape (no data).

        ``exact=False`` routes through the Sec. 4 closed-form model
        (which prices the staging sites with sampled alignments);
        ``exact=True`` generates the byte-identical executed trace.
        """
        if exact:
            return self.trace_cost(problem)
        from repro.core.general import GeneralCaseKernel

        return GeneralCaseKernel(
            arch=self.arch, config=self.config, matched=self.matched,
            bank_policy=self.bank_policy).cost(problem)

    # ------------------------------------------------------------------
    def run_traced(
        self, image: np.ndarray, filters: np.ndarray,
        audit: Optional[bool] = None,
    ) -> Tuple[np.ndarray, KernelCost]:
        """Convolve and return ``(output, executed-trace cost)``,
        bit-identical to ``InterpretedGeneralKernel.run_traced``."""
        img = np.asarray(image, dtype=np.float32)
        flt = np.asarray(filters, dtype=np.float32)
        if img.ndim != 3:
            raise ShapeError("image must be (C, H, W)")
        if flt.ndim != 4 or flt.shape[1] != img.shape[0]:
            raise ShapeError("filters must be (F, C, K, K) matching the image")
        k = flt.shape[2]
        if flt.shape[3] != k:
            raise ShapeError("filters must be square")
        self.config.validate(k, self.n, self.arch.warp_size)
        c_total, f_total = img.shape[0], flt.shape[0]
        problem = ConvProblem(
            height=img.shape[1], width=img.shape[2], channels=c_total,
            filters=f_total, kernel_size=k,
        )
        start = time.perf_counter()
        with maybe_profile("fastsim.general"):
            cost = self.trace_cost(problem)
            oh, ow = problem.out_height, problem.out_width
            # The interpreter accumulates over channels ascending
            # (chunks, then channels within the chunk), then (j, kk)
            # ascending, float32 multiply then add — replicated here
            # elementwise so the output matches it bit for bit.
            acc = np.zeros((f_total, oh, ow), dtype=np.float32)
            for c in range(c_total):
                for j in range(k):
                    for kk in range(k):
                        acc = acc + flt[:, c, j, kk][:, np.newaxis, np.newaxis] \
                            * img[np.newaxis, c, j:j + oh, kk:kk + ow]
        if self.handicap > 1.0:
            time.sleep((time.perf_counter() - start) * (self.handicap - 1.0))
        if audit_enabled(audit):
            self._audit(img, flt, acc, cost)
        return acc, cost

    # ------------------------------------------------------------------
    def _audit(self, img, flt, out, cost) -> None:
        from repro.core.general_interpreted import InterpretedGeneralKernel

        oracle = InterpretedGeneralKernel(
            arch=self.arch, config=self.config, matched=self.matched,
            bank_policy=self.bank_policy)
        ref_out, ref_cost = oracle.run_traced(img, flt)
        diffs = kernel_cost_diffs(cost, ref_cost)
        if out.shape != ref_out.shape or not np.array_equal(
                out.view(np.uint32), ref_out.view(np.uint32)):
            diffs.append("output buffers differ bitwise")
        if diffs:
            _raise_mismatch(self.name, oracle.name, diffs)

    # ------------------------------------------------------------------
    def trace_cost(self, problem: ConvProblem) -> KernelCost:
        """Generate the executed-trace cost for an aligned problem."""
        cfg, n, arch = self.config, self.n, self.arch
        ws = arch.warp_size
        k = problem.kernel_size
        cfg.validate(k, n, ws)
        c_total, f_total = problem.channels, problem.filters
        oh, ow = problem.out_height, problem.out_width
        if oh % cfg.h or ow % cfg.w:
            raise ConfigurationError(
                "the audit kernel needs the %dx%d output to tile the "
                "%dx%d block exactly" % (oh, ow, cfg.h, cfg.w))
        if f_total % cfg.ftb or c_total % cfg.csh:
            raise ConfigurationError(
                "the audit kernel needs F %% FTB == 0 and C %% CSH == 0")

        img_h, img_w = problem.height, problem.width
        threads = cfg.threads
        warps = threads // ws
        row_floats = cfg.w + k - 1
        img_rows = cfg.h + k - 1
        flt_row = cfg.ftb + cfg.smem_filter_pad(n)
        taps = k * k
        blocks_y, blocks_x = oh // cfg.h, ow // cfg.w
        sblocks = blocks_y * blocks_x
        fgroups = f_total // cfg.ftb
        total_blocks = fgroups * sblocks
        chunks = c_total // cfg.csh
        unit = n * 4

        g_img_base = _GLOBAL_ALIGN
        g_flt_base = g_img_base + _round_up(c_total * img_h * img_w * 4,
                                            _GLOBAL_ALIGN)
        g_out_base = g_flt_base + _round_up(f_total * c_total * taps * 4,
                                            _GLOBAL_ALIGN)
        img_size = c_total * img_h * img_w
        flt_size = f_total * c_total * taps
        out_size = f_total * oh * ow
        sh_img_size = cfg.csh * img_rows * row_floats
        sh_flt_size = cfg.csh * taps * flt_row

        tracer = KernelTracer(arch, self.bank_policy)
        gmod = tracer.gmem_batch_mod(unit)
        smod = tracer.smem_batch_mod()

        tx_of = np.arange(threads, dtype=np.int64) % cfg.tx
        ty_of = np.arange(threads, dtype=np.int64) // cfg.tx
        rows_of_ty = (np.arange(cfg.ty, dtype=np.int64) * cfg.wt) // cfg.w
        cols_of_ty = (np.arange(cfg.ty, dtype=np.int64) * cfg.wt) % cfg.w

        # Cooperative staging streams the row in first-warp pieces of
        # at most 32 vector units.
        units_per_row = math.ceil(row_floats / n)
        pieces = [np.arange(d, min(d + ws, units_per_row), dtype=np.int64)
                  for d in range(0, units_per_row, ws)]

        # gm.load_image: each channel's block rows, once per filter group.
        row_abs = (np.arange(blocks_y, dtype=np.int64)[:, np.newaxis] * cfg.h
                   + np.arange(img_rows, dtype=np.int64)[np.newaxis, :])
        col0 = np.arange(blocks_x, dtype=np.int64) * cfg.w
        gbase_idx = (
            np.arange(c_total, dtype=np.int64)[:, np.newaxis, np.newaxis,
                                               np.newaxis]
            * (img_h * img_w)
            + row_abs[np.newaxis, :, :, np.newaxis] * img_w
            + col0[np.newaxis, np.newaxis, np.newaxis, :]).reshape(-1)
        _check_global_span("image", img_size, int(gbase_idx.min()),
                           int(gbase_idx.max()) + (units_per_row - 1) * n,
                           n, "gm.load_image")
        bases_img = g_img_base + gbase_idx * 4
        for piece in pieces:
            matrix, counts = _fold_bases(bases_img, piece * unit, gmod)
            tracer.gmem_read_batch(matrix, unit,
                                   counts=counts * float(fgroups),
                                   site="gm.load_image")

        # sm.store_image: the same pieces against the staged rows.
        sm_rows = np.arange(cfg.csh * img_rows, dtype=np.int64) \
            * (row_floats * 4)
        _check_shared_span("shImg", sh_img_size, 0,
                           (cfg.csh * img_rows - 1) * row_floats
                           + (units_per_row - 1) * n, n, "sm.store_image")
        store_scale = float(chunks * total_blocks)
        for piece in pieces:
            matrix, counts = _fold_bases(sm_rows, piece * unit, smod)
            tracer.smem_write_batch(matrix, unit,
                                    counts=counts * store_scale,
                                    site="sm.store_image")

        # gm.load_filter: scalar first-warp stream of each filter's
        # CSH*K*K taps, once per spatial block.
        run = cfg.csh * taps
        flt_gbase = ((np.arange(f_total, dtype=np.int64)[:, np.newaxis]
                      * c_total
                      + np.arange(0, c_total, cfg.csh,
                                  dtype=np.int64)[np.newaxis, :])
                     * taps).reshape(-1)
        _check_global_span("filters", flt_size, int(flt_gbase.min()),
                           int(flt_gbase.max()) + run - 1, 1,
                           "gm.load_filter")
        bases_flt = g_flt_base + flt_gbase * 4
        for done in range(0, run, ws):
            rel = np.arange(done, min(done + ws, run), dtype=np.int64) * 4
            matrix, counts = _fold_bases(bases_flt, rel, 32)
            tracer.gmem_read_batch(matrix, 4, counts=counts * float(sblocks),
                                   site="gm.load_filter")

        # sm.store_filter: the transposed+padded scalar store pieces.
        total = cfg.ftb * run
        _check_shared_span("shFlt", sh_flt_size, 0,
                           (run - 1) * flt_row + cfg.ftb - 1, 1,
                           "sm.store_filter")
        for done in range(0, total, ws):
            l = np.arange(done, min(done + ws, total), dtype=np.int64)
            row = ((l // cfg.ftb) * flt_row + l % cfg.ftb) * 4
            tracer.smem_write_batch(
                row[np.newaxis, :], 4,
                counts=np.array([store_scale]),
                site="sm.store_filter")

        # sm.load_image_row: each thread's WT+K-1 register row as
        # clamped overlapping vector units, per (channel, j).
        u_img = math.ceil((cfg.wt + k - 1) / n)
        offs = np.array([max(0, min(u * n, cfg.wt + k - 1 - n))
                         for u in range(u_img)], dtype=np.int64)
        rel_ty = ((rows_of_ty[ty_of] * row_floats + cols_of_ty[ty_of])
                  .reshape(warps, ws) * 4)
        img_row_sc = (
            np.arange(cfg.csh, dtype=np.int64)[:, np.newaxis, np.newaxis]
            * (img_rows * row_floats)
            + np.arange(k, dtype=np.int64)[np.newaxis, :, np.newaxis]
            * row_floats
            + offs[np.newaxis, np.newaxis, :]).reshape(-1)
        _check_shared_span(
            "shImg", sh_img_size, 0,
            int(img_row_sc.max()) + int(rel_ty.max()) // 4, n,
            "sm.load_image_row")
        matrix, counts = _fold_bases(img_row_sc * 4, rel_ty, smod)
        tracer.smem_read_batch(matrix, unit, counts=counts * store_scale,
                               site="sm.load_image_row")

        # sm.load_filter_row: FT filter values per thread, vectorized.
        u_flt = max(1, cfg.ft // n)
        rel_tx = (tx_of * cfg.ft).reshape(warps, ws) * 4
        flt_row_sc = (
            np.arange(cfg.csh * taps, dtype=np.int64)[:, np.newaxis] * flt_row
            + np.arange(u_flt, dtype=np.int64)[np.newaxis, :] * n).reshape(-1)
        _check_shared_span(
            "shFlt", sh_flt_size, 0,
            int(flt_row_sc.max()) + int(rel_tx.max()) // 4, n,
            "sm.load_filter_row")
        matrix, counts = _fold_bases(flt_row_sc * 4, rel_tx, smod)
        tracer.smem_read_batch(matrix, unit, counts=counts * store_scale,
                               site="sm.load_filter_row")

        # FMA rounds: each (channel, j, kk, warp) updates ws*ft*wt values.
        tracer.flops(2.0 * ws * cfg.ft * cfg.wt
                     * float(c_total * taps * warps * total_blocks))

        # gm.store_out: wide units along WT, filter dimension fastest.
        wide = (16 if (cfg.wt * 4) % 16 == 0 else unit) // 4
        u_out = math.ceil(cfg.wt / wide)
        rel_out = ((tx_of * cfg.ft * (oh * ow)
                    + rows_of_ty[ty_of] * ow
                    + cols_of_ty[ty_of]).reshape(warps, ws) * 4)
        out_sc = (
            np.arange(fgroups, dtype=np.int64)[
                :, np.newaxis, np.newaxis, np.newaxis, np.newaxis]
            * (cfg.ftb * oh * ow)
            + (np.arange(blocks_y, dtype=np.int64) * cfg.h * ow)[
                np.newaxis, :, np.newaxis, np.newaxis, np.newaxis]
            + col0[np.newaxis, np.newaxis, :, np.newaxis, np.newaxis]
            + (np.arange(cfg.ft, dtype=np.int64) * (oh * ow))[
                np.newaxis, np.newaxis, np.newaxis, :, np.newaxis]
            + (np.arange(u_out, dtype=np.int64) * wide)[
                np.newaxis, np.newaxis, np.newaxis, np.newaxis, :]
        ).reshape(-1)
        _check_global_span("out", out_size, int(out_sc.min()),
                           int(out_sc.max()) + int(rel_out.max()) // 4,
                           wide, "gm.store_out")
        matrix, counts = _fold_bases(
            g_out_base + out_sc * 4, rel_out,
            tracer.gmem_batch_mod(wide * 4))
        tracer.gmem_write_batch(matrix, wide * 4, counts=counts,
                                site="gm.store_out")

        tracer.sync(float((2 * chunks + 2) * total_blocks))

        launch = LaunchConfig(
            grid=Dim3(x=fgroups, y=sblocks),
            block=Dim3(x=threads),
            registers_per_thread=cfg.registers_per_thread(k, n),
            smem_per_block=(sh_img_size + sh_flt_size) * 4,
        )
        return tracer.finish(name=self.name, launch=launch,
                             software_prefetch=True)
