"""An executable SIMT device: warp-level interpretation with traced
memory.

The kernels in :mod:`repro.core` carry hand-derived cost models (they
replay each access *site's* representative warp pattern and scale).
This module provides the independent check: a small warp-synchronous
interpreter on which a kernel can be written against a device API —
global/shared/constant arrays, per-lane loads and stores, block
barriers — and *executed*.  Every access the program makes flows
through the same bank/coalescing/broadcast models and accumulates into
the same :class:`~repro.gpu.trace.TrafficLedger`, byte addresses and
all, while also moving real data.

``tests/gpu/test_interpreter_audit.py`` runs Algorithm 1 on this
interpreter and checks both that the output is exact and that the
executed trace agrees with ``SpecialCaseKernel.cost()`` — the analytic
model's audit.

The programming model is warp-synchronous and lane-vectorized: a kernel
is a Python function ``body(block, *args)``; it iterates
``for warp in block.warps():`` and issues warp-wide operations whose
index operands are per-lane numpy arrays.  (No divergence modeling —
lanes are masked by passing shorter index arrays, matching how the
paper's kernels predicate their halo accesses.)
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig, lane_ids, warp_count
from repro.gpu.trace import KernelCost, KernelTracer

__all__ = [
    "GlobalArray",
    "ConstantArray",
    "SharedArray",
    "Warp",
    "Block",
    "DeviceExecutor",
    "HANDICAP_ENV",
]

#: Alignment of global allocations (matches cudaMalloc's 512 B).
_GLOBAL_ALIGN = 512

#: Wall-clock multiplier for the interpreter hot path (>= 1 slows every
#: executed block by that factor).  Exists so the perf gate's failure
#: mode is testable end-to-end: ``REPRO_SIM_HANDICAP=2 repro perf gate``
#: injects a deliberate 2x slowdown into the simulator workload, which
#: the wall budget must catch.  Unset/<=1 is a no-op.
HANDICAP_ENV = "REPRO_SIM_HANDICAP"


def _env_handicap() -> float:
    raw = os.environ.get(HANDICAP_ENV, "").strip()
    if not raw:
        return 1.0
    try:
        return max(1.0, float(raw))
    except ValueError:
        raise TraceError("%s must be a number, got %r" % (HANDICAP_ENV, raw))


class GlobalArray:
    """A flat float32 array in simulated global memory."""

    def __init__(self, data: np.ndarray, base: int, name: str):
        self.data = np.ascontiguousarray(data, dtype=np.float32).reshape(-1)
        self.base = base
        self.name = name
        self.elem = 4

    def __len__(self) -> int:
        return self.data.size

    def addresses(self, index, vector: int = 1, site: str = "") -> np.ndarray:
        """Byte addresses of a per-lane access of ``vector`` elements.

        The whole span ``[idx, idx + vector)`` of every lane must be in
        range, not just the base element — a vector access straddling
        the end of the allocation is a trace error, not a numpy one.
        """
        idx = np.asarray(index, dtype=np.int64)
        if vector < 1:
            raise TraceError("vector width must be positive")
        if np.any(idx < 0) or np.any(idx + (vector - 1) >= self.data.size):
            raise TraceError(
                "global index out of range in %s (vector=%d)%s"
                % (self.name, vector, " at site %r" % site if site else ""))
        return self.base + idx * self.elem


class ConstantArray(GlobalArray):
    """A float32 array in simulated constant memory."""


class SharedArray:
    """A per-block float32 shared-memory allocation (base address 0)."""

    def __init__(self, size_floats: int, name: str = "smem"):
        if size_floats < 1:
            raise TraceError("shared allocation must be positive")
        self.data = np.zeros(size_floats, dtype=np.float32)
        self.name = name
        self.elem = 4

    def addresses(self, index, vector: int = 1, site: str = "") -> np.ndarray:
        """Byte addresses of a per-lane access of ``vector`` elements.

        Like :meth:`GlobalArray.addresses`, the full ``vector`` span of
        every lane is bounds-checked.
        """
        idx = np.asarray(index, dtype=np.int64)
        if vector < 1:
            raise TraceError("vector width must be positive")
        if np.any(idx < 0) or np.any(idx + (vector - 1) >= self.data.size):
            raise TraceError(
                "shared index out of range in %s (vector=%d)%s"
                % (self.name, vector, " at site %r" % site if site else ""))
        return idx * self.elem


class Warp:
    """One warp's SIMT view: lane-vectorized loads, stores, arithmetic."""

    def __init__(self, block: "Block", warp_id: int, lanes: np.ndarray):
        self.block = block
        self.warp_id = warp_id
        self.lane = lanes                 # global thread ids of the lanes
        self._tracer = block.executor.tracer

    # --- global memory -----------------------------------------------------
    def gload(self, arr: GlobalArray, index, vector: int = 1,
              site: str = "gmem") -> np.ndarray:
        """Per-lane load of ``vector`` consecutive elements each."""
        idx = np.asarray(index, dtype=np.int64)
        addrs = arr.addresses(idx, vector, site)
        self._tracer.gmem_read(addrs, arr.elem * vector, count=1.0, site=site)
        gathered = arr.data[idx[:, np.newaxis] + np.arange(vector)]
        return gathered[:, 0] if vector == 1 else gathered

    def gstore(self, arr: GlobalArray, index, values, vector: int = 1,
               site: str = "gmem") -> None:
        idx = np.asarray(index, dtype=np.int64)
        addrs = arr.addresses(idx, vector, site)
        self._tracer.gmem_write(addrs, arr.elem * vector, count=1.0, site=site)
        vals = np.asarray(values, dtype=np.float32)
        if vector == 1:
            arr.data[idx] = vals.reshape(-1)
        else:
            arr.data[idx[:, np.newaxis] + np.arange(vector)] = \
                vals.reshape(-1, vector)

    # --- shared memory -------------------------------------------------------
    def sload(self, arr: SharedArray, index, vector: int = 1,
              site: str = "smem") -> np.ndarray:
        idx = np.asarray(index, dtype=np.int64)
        addrs = arr.addresses(idx, vector, site)
        self._tracer.smem_read(addrs, arr.elem * vector, count=1.0, site=site)
        gathered = arr.data[idx[:, np.newaxis] + np.arange(vector)]
        return gathered[:, 0] if vector == 1 else gathered

    def sstore(self, arr: SharedArray, index, values, vector: int = 1,
               site: str = "smem") -> None:
        idx = np.asarray(index, dtype=np.int64)
        addrs = arr.addresses(idx, vector, site)
        self._tracer.smem_write(addrs, arr.elem * vector, count=1.0, site=site)
        vals = np.asarray(values, dtype=np.float32)
        if vector == 1:
            arr.data[idx] = vals.reshape(-1)
        else:
            arr.data[idx[:, np.newaxis] + np.arange(vector)] = \
                vals.reshape(-1, vector)

    # --- constant memory -----------------------------------------------------
    def cload(self, arr: ConstantArray, index, site: str = "cmem") -> np.ndarray:
        idx = np.asarray(index, dtype=np.int64)
        if idx.ndim == 0:
            idx = np.full(self.lane.size, int(idx), dtype=np.int64)
        addrs = arr.addresses(idx, 1, site)
        self._tracer.cmem_read(addrs, count=1.0, site=site)
        return arr.data[idx]

    # --- arithmetic ------------------------------------------------------------
    def fma(self, acc: np.ndarray, a, b) -> np.ndarray:
        """Per-lane fused multiply-add; counts 2 flops per result value."""
        out = np.asarray(acc, dtype=np.float32) + (
            np.asarray(a, dtype=np.float32) * np.asarray(b, dtype=np.float32)
        )
        self._tracer.flops(2.0 * np.asarray(out).size)
        return out


class Block:
    """One thread block: warps, shared memory, and the barrier."""

    def __init__(self, executor: "DeviceExecutor", block_idx: Tuple[int, int],
                 threads: int):
        if threads < 1:
            raise TraceError("a block needs at least one thread")
        self.executor = executor
        self.block_idx = block_idx
        self.threads = threads
        self._shared: List[SharedArray] = []

    def shared(self, size_floats: int, name: str = "smem") -> SharedArray:
        arr = SharedArray(size_floats, name)
        self._shared.append(arr)
        return arr

    def warps(self) -> Iterator[Warp]:
        warp_size = self.executor.arch.warp_size
        for w in range(warp_count(self.threads, warp_size)):
            yield Warp(self, w, lane_ids(w, self.threads, warp_size))

    def sync(self) -> None:
        """__syncthreads(): warp-synchronous execution makes this a
        pure cost event."""
        self.executor.tracer.sync(1.0)

    @property
    def smem_bytes(self) -> int:
        return sum(a.data.size * 4 for a in self._shared)


class DeviceExecutor:
    """Allocates simulated memory and runs block programs under trace."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        handicap: Optional[float] = None,
    ):
        self.arch = arch
        # handicap=None reads REPRO_SIM_HANDICAP once; pass 1.0 to pin
        # an executor immune to the injector (the calibration path).
        self.handicap = _env_handicap() if handicap is None \
            else max(1.0, float(handicap))
        self.tracer = KernelTracer(arch, bank_policy)
        self._next_base = _GLOBAL_ALIGN
        self._max_smem = 0
        self._blocks_run = 0
        self._threads_per_block: Optional[int] = None

    # --- memory ------------------------------------------------------------
    def alloc_global(self, data: np.ndarray, name: str = "garr") -> GlobalArray:
        arr = GlobalArray(np.asarray(data), self._next_base, name)
        span = arr.data.size * arr.elem
        self._next_base += (span + _GLOBAL_ALIGN - 1) // _GLOBAL_ALIGN * _GLOBAL_ALIGN
        return arr

    def alloc_constant(self, data: np.ndarray, name: str = "carr") -> ConstantArray:
        arr = ConstantArray(np.asarray(data), 0, name)
        if arr.data.size * arr.elem > self.arch.const_memory_size:
            raise TraceError("constant allocation exceeds constant memory")
        return arr

    # --- execution -----------------------------------------------------------
    def run_block(self, body: Callable, block_idx: Tuple[int, int],
                  threads: int, *args) -> Block:
        """Execute one block program; its accesses accumulate in the ledger."""
        block = Block(self, block_idx, threads)
        if self.handicap > 1.0:
            start = time.perf_counter()
            body(block, *args)
            time.sleep((time.perf_counter() - start) * (self.handicap - 1.0))
        else:
            body(block, *args)
        self._blocks_run += 1
        self._max_smem = max(self._max_smem, block.smem_bytes)
        if self._threads_per_block is None:
            self._threads_per_block = threads
        elif self._threads_per_block != threads:
            raise TraceError("all blocks of one launch must have equal size")
        return block

    def finish(self, name: str, registers_per_thread: int = 32,
               grid: Optional[Dim3] = None,
               software_prefetch: bool = False) -> KernelCost:
        """Package the executed trace as a KernelCost."""
        if self._blocks_run == 0 or self._threads_per_block is None:
            raise TraceError("no blocks were executed")
        launch = LaunchConfig(
            grid=grid or Dim3(x=self._blocks_run),
            block=Dim3(x=self._threads_per_block),
            registers_per_thread=registers_per_thread,
            smem_per_block=self._max_smem,
        )
        return self.tracer.finish(name=name, launch=launch,
                                  software_prefetch=software_prefetch)
