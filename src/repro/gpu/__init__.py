"""Kepler-like GPU simulation substrate.

This subpackage stands in for the physical Kepler K40m used in the paper.
It provides:

* :mod:`repro.gpu.arch` — architecture descriptions (SM counts, clocks,
  bank widths, peak rates) for Kepler, Fermi and Maxwell class devices;
* :mod:`repro.gpu.simt` — grid/block geometry and launch validation;
* :mod:`repro.gpu.memory` — shared-memory bank model, global-memory
  coalescing model, constant-memory broadcast model;
* :mod:`repro.gpu.trace` — the traffic ledger that plays the role of the
  hardware profiler counters;
* :mod:`repro.gpu.occupancy` — the occupancy calculator;
* :mod:`repro.gpu.timing` — the analytical timing model that converts a
  traffic ledger into seconds / GFlop/s;
* :mod:`repro.gpu.device` — the warp-synchronous SIMT interpreter (the
  executable oracle);
* :mod:`repro.gpu.fastsim` — vectorized whole-warp trace generation,
  byte-identical to the interpreter and orders of magnitude faster,
  with the interpreter as its opt-in audit (``REPRO_AUDIT=1``).
"""

from repro.gpu.arch import (
    GPUArchitecture,
    KEPLER_K40M,
    FERMI_M2090,
    MAXWELL_GM204,
    ARCHITECTURES,
)
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.trace import KernelCost, TrafficLedger, KernelTracer
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.timing import TimingModel, TimingBreakdown
from repro.gpu.fastsim import (
    FastSpecialKernel,
    FastGeneralKernel,
    audit_enabled,
    kernel_cost_diffs,
)

__all__ = [
    "GPUArchitecture",
    "KEPLER_K40M",
    "FERMI_M2090",
    "MAXWELL_GM204",
    "ARCHITECTURES",
    "Dim3",
    "LaunchConfig",
    "KernelCost",
    "TrafficLedger",
    "KernelTracer",
    "OccupancyResult",
    "occupancy",
    "TimingModel",
    "TimingBreakdown",
    "FastSpecialKernel",
    "FastGeneralKernel",
    "audit_enabled",
    "kernel_cost_diffs",
]
