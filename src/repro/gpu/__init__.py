"""Kepler-like GPU simulation substrate.

This subpackage stands in for the physical Kepler K40m used in the paper.
It provides:

* :mod:`repro.gpu.arch` — architecture descriptions (SM counts, clocks,
  bank widths, peak rates) for Kepler, Fermi and Maxwell class devices;
* :mod:`repro.gpu.simt` — grid/block geometry and launch validation;
* :mod:`repro.gpu.memory` — shared-memory bank model, global-memory
  coalescing model, constant-memory broadcast model;
* :mod:`repro.gpu.trace` — the traffic ledger that plays the role of the
  hardware profiler counters;
* :mod:`repro.gpu.occupancy` — the occupancy calculator;
* :mod:`repro.gpu.timing` — the analytical timing model that converts a
  traffic ledger into seconds / GFlop/s.
"""

from repro.gpu.arch import (
    GPUArchitecture,
    KEPLER_K40M,
    FERMI_M2090,
    MAXWELL_GM204,
    ARCHITECTURES,
)
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.trace import KernelCost, TrafficLedger, KernelTracer
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.timing import TimingModel, TimingBreakdown

__all__ = [
    "GPUArchitecture",
    "KEPLER_K40M",
    "FERMI_M2090",
    "MAXWELL_GM204",
    "ARCHITECTURES",
    "Dim3",
    "LaunchConfig",
    "KernelCost",
    "TrafficLedger",
    "KernelTracer",
    "OccupancyResult",
    "occupancy",
    "TimingModel",
    "TimingBreakdown",
]
