"""Human-readable reports for traced kernel costs — the simulated
equivalent of an ``nvprof`` metrics page.

:func:`format_cost` renders a :class:`~repro.gpu.trace.KernelCost` as a
ledger summary plus a per-site table (executions, transactions, cycles,
efficiency); :func:`format_breakdown` renders a
:class:`~repro.gpu.timing.TimingBreakdown` as the component-time view.
Both are plain text, suitable for examples and for eyeballing why a
kernel lands where it does.
"""

from __future__ import annotations

from repro.gpu.timing import TimingBreakdown
from repro.gpu.trace import KernelCost

__all__ = ["format_cost", "format_breakdown", "format_occupancy"]


def _human_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return "%.1f %s" % (value, unit)
        value /= 1024.0
    return "%.1f GiB" % value


def _human_count(value: float) -> str:
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= scale:
            return "%.2f%s" % (value / scale, suffix)
    return "%.0f" % value


def format_cost(cost: KernelCost) -> str:
    """Render a kernel's traced traffic like a profiler metrics page."""
    led = cost.ledger
    launch = cost.launch
    lines = []
    lines.append("=== %s ===" % cost.name)
    lines.append(
        "launch: grid %dx%dx%d, block %d threads, %d regs/thread, %s smem/block"
        % (launch.grid.x, launch.grid.y, launch.grid.z,
           launch.threads_per_block, launch.registers_per_thread,
           _human_bytes(launch.smem_per_block))
    )
    lines.append("flops             : %s" % _human_count(led.flops))
    lines.append(
        "gmem read         : %s moved (%.0f%% efficient), %s via L2"
        % (_human_bytes(led.gmem_read_bytes_moved),
           100 * min(1.0, led.gmem_read_efficiency),
           _human_bytes(led.gmem_l2_bytes))
    )
    lines.append(
        "gmem write        : %s moved (%.0f%% efficient)"
        % (_human_bytes(led.gmem_write_bytes_moved),
           100 * min(1.0, led.gmem_write_efficiency))
    )
    lines.append(
        "smem              : %s requests, %s cycles (conflict overhead %.2fx)"
        % (_human_count(led.smem_requests), _human_count(led.smem_cycles),
           led.smem_conflict_overhead)
    )
    if led.cmem_requests:
        lines.append(
            "cmem              : %s broadcasts (%.2f serializations/request)"
            % (_human_count(led.cmem_requests),
               led.cmem_cycles / led.cmem_requests)
        )
    lines.append("arith intensity   : %.2f flops/DRAM byte" % led.arithmetic_intensity)

    if led.sites:
        lines.append("")
        header = "%-34s %12s %12s %12s" % ("site", "executions", "transactions", "cycles")
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(led.sites):
            s = led.sites[name]
            lines.append(
                "%-34s %12s %12s %12s"
                % (name, _human_count(s.executions),
                   _human_count(s.transactions) if s.transactions else "-",
                   _human_count(s.cycles) if s.cycles else "-")
            )
    return "\n".join(lines)


def format_breakdown(tb: TimingBreakdown) -> str:
    """Render a timing breakdown as the component-time view."""
    parts = [
        ("compute", tb.t_compute),
        ("gmem (DRAM)", tb.t_gmem),
        ("L2", tb.t_l2),
        ("smem", tb.t_smem),
        ("cmem", tb.t_cmem),
        ("barriers", tb.t_sync),
        ("launches", tb.t_launch),
    ]
    lines = ["=== timing: %s ===" % tb.name]
    for label, t in parts:
        bar = "#" * int(round(40 * t / tb.total)) if tb.total else ""
        lines.append("%-12s %9.3f ms  %s" % (label, t * 1e3, bar))
    lines.append(
        "total %10.3f ms   bound by %s, eta %.2f, %.1f waves, occupancy %.0f%%"
        % (tb.total * 1e3, tb.bound_by, tb.eta, tb.waves,
           100 * tb.occupancy_fraction)
    )
    return "\n".join(lines)


def format_occupancy(arch, launch) -> str:
    """Render the occupancy calculator's view of a launch."""
    from repro.gpu.occupancy import occupancy, occupancy_limits

    limits = occupancy_limits(arch, launch)
    occ = occupancy(arch, launch)
    lines = ["=== occupancy on %s ===" % arch.name]
    for name in sorted(limits, key=lambda k: limits[k]):
        marker = "  <- limiter" if name == occ.limiter else ""
        lines.append("%-10s allows %3d blocks/SM%s" % (name, limits[name], marker))
    lines.append(
        "resident: %d blocks = %d warps/SM (%.0f%% occupancy)"
        % (occ.blocks_per_sm, occ.warps_per_sm,
           100 * occ.occupancy_fraction(arch))
    )
    return "\n".join(lines)
