"""Occupancy calculator.

Determines how many blocks of a given launch can be resident on one SM
simultaneously, limited by threads, warps, blocks, registers, and shared
memory — the same arithmetic as NVIDIA's occupancy calculator
spreadsheet.  Occupancy feeds the timing model's latency-hiding term and
the design-space explorer's configuration filter (paper Table 1 configs
must all be resident-valid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchConfigError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.memory.registers import RegisterFile
from repro.gpu.simt import LaunchConfig

__all__ = ["OccupancyResult", "occupancy", "occupancy_limits"]


@dataclass(frozen=True)
class OccupancyResult:
    """Residency of one launch configuration on a single SM."""

    blocks_per_sm: int
    warps_per_block: int
    limiter: str                # which resource capped blocks_per_sm

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    def occupancy_fraction(self, arch: GPUArchitecture) -> float:
        return self.warps_per_sm / arch.max_warps_per_sm


def occupancy_limits(arch: GPUArchitecture, launch: LaunchConfig) -> dict:
    """Blocks-per-SM ceiling imposed by each resource, separately."""
    launch.validate(arch)
    threads = launch.threads_per_block
    warps = launch.warps_per_block(arch.warp_size)
    limits = {
        "threads": arch.max_threads_per_sm // threads,
        "warps": arch.max_warps_per_sm // warps,
        "blocks": arch.max_blocks_per_sm,
    }
    if launch.smem_per_block > 0:
        limits["smem"] = arch.smem_per_sm // launch.smem_per_block
    regs = RegisterFile(arch)
    limits["registers"] = regs.max_blocks(launch.registers_per_thread, threads)
    return limits


def occupancy(arch: GPUArchitecture, launch: LaunchConfig) -> OccupancyResult:
    """Blocks of ``launch`` resident per SM of ``arch`` and the limiter."""
    warps = launch.warps_per_block(arch.warp_size)
    limits = occupancy_limits(arch, launch)
    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks == 0:
        raise LaunchConfigError(
            "launch cannot be resident on %s: limited by %s" % (arch.name, limiter)
        )
    return OccupancyResult(blocks_per_sm=blocks, warps_per_block=warps, limiter=limiter)
