"""GPU architecture descriptions.

The paper's experiments run on a Kepler K40m; its motivating comparison
(Fig. 2) contrasts Kepler with Fermi, and its future-work section points
at architectures with 4-byte shared-memory banks (Maxwell and later).
This module captures the handful of architectural parameters that the
paper's model depends on, plus the throughput numbers the timing model
needs to convert traffic into time.

The numbers below are taken from the vendor whitepapers / programming
guide tables for each device.  Only parameters actually consumed by the
simulation substrate are included.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ArchitectureError

__all__ = [
    "GPUArchitecture",
    "KEPLER_K40M",
    "FERMI_M2090",
    "MAXWELL_GM204",
    "PASCAL_P100",
    "ARCHITECTURES",
]


@dataclass(frozen=True)
class GPUArchitecture:
    """Static description of a GPU device.

    Attributes are grouped by subsystem.  All sizes are in bytes and all
    rates in the unit given by the attribute name.
    """

    name: str
    compute_capability: tuple

    # --- execution resources -------------------------------------------------
    sm_count: int
    warp_size: int
    clock_ghz: float
    peak_sp_gflops: float

    # --- shared memory -------------------------------------------------------
    smem_bank_count: int
    smem_bank_width: int          # 8 on Kepler (cc 3.x), 4 elsewhere
    smem_per_sm: int
    smem_per_block_max: int

    # --- registers -----------------------------------------------------------
    registers_per_sm: int         # 32-bit registers
    max_registers_per_thread: int
    register_alloc_unit: int      # allocation granularity, in registers

    # --- thread limits ---------------------------------------------------------
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int

    # --- constant memory -------------------------------------------------------
    const_memory_size: int
    const_cache_per_sm: int

    # --- global memory ---------------------------------------------------------
    gmem_transaction_size: int    # coalescing segment size
    gmem_bandwidth_gbs: float     # peak DRAM bandwidth
    gmem_achievable_fraction: float  # sustained fraction of peak (ECC, refresh)
    l2_size: int                  # unified L2 cache size
    l2_bandwidth_gbs: float       # aggregate L2 hit bandwidth

    def __post_init__(self):
        if self.warp_size <= 0 or self.sm_count <= 0:
            raise ArchitectureError("warp_size and sm_count must be positive")
        if self.smem_bank_width not in (4, 8):
            raise ArchitectureError(
                "smem_bank_width must be 4 or 8 bytes, got %r" % (self.smem_bank_width,)
            )
        if self.smem_bank_count <= 0 or self.smem_bank_count % 2:
            raise ArchitectureError("smem_bank_count must be a positive even number")
        if self.gmem_transaction_size <= 0:
            raise ArchitectureError("gmem_transaction_size must be positive")
        if not 0.0 < self.gmem_achievable_fraction <= 1.0:
            raise ArchitectureError("gmem_achievable_fraction must be in (0, 1]")

    # --- derived quantities ------------------------------------------------------

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def smem_bandwidth_bytes_per_sm_clock(self) -> int:
        """Peak shared-memory bytes a single SM can deliver per clock."""
        return self.smem_bank_count * self.smem_bank_width

    @property
    def smem_bandwidth_gbs(self) -> float:
        """Aggregate peak shared-memory bandwidth of the whole device."""
        return (
            self.smem_bandwidth_bytes_per_sm_clock
            * self.sm_count
            * self.clock_hz
            / 1e9
        )

    @property
    def sustained_gmem_bandwidth_gbs(self) -> float:
        return self.gmem_bandwidth_gbs * self.gmem_achievable_fraction

    def bank_of(self, byte_address: int) -> int:
        """Shared-memory bank serving ``byte_address``."""
        return (byte_address // self.smem_bank_width) % self.smem_bank_count

    def with_bank_width(self, width: int) -> "GPUArchitecture":
        """A copy of this architecture with a different SM bank width.

        Kepler exposes this switch through
        ``cudaDeviceSetSharedMemConfig``; it is also how we model the
        Fermi-vs-Kepler contrast on otherwise equal hardware.
        """
        return replace(self, smem_bank_width=width)


#: Tesla K40m (GK110B, cc 3.5) — the device used in the paper's evaluation.
#: Peak single-precision 4290 GFlop/s (paper, Sec. 5), 288 GB/s GDDR5.
KEPLER_K40M = GPUArchitecture(
    name="Kepler K40m",
    compute_capability=(3, 5),
    sm_count=15,
    warp_size=32,
    clock_ghz=0.745,
    peak_sp_gflops=4290.0,
    smem_bank_count=32,
    smem_bank_width=8,
    smem_per_sm=48 * 1024,
    smem_per_block_max=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    const_memory_size=64 * 1024,
    const_cache_per_sm=8 * 1024,
    gmem_transaction_size=128,
    gmem_bandwidth_gbs=288.0,
    gmem_achievable_fraction=0.75,
    l2_size=1536 * 1024,
    l2_bandwidth_gbs=600.0,
)

#: Tesla M2090 (GF110, cc 2.0) — the Fermi reference for Fig. 2's
#: MAGMA-was-tuned-for-Fermi observation.
FERMI_M2090 = GPUArchitecture(
    name="Fermi M2090",
    compute_capability=(2, 0),
    sm_count=16,
    warp_size=32,
    clock_ghz=1.3,
    peak_sp_gflops=1331.0,
    smem_bank_count=32,
    smem_bank_width=4,
    smem_per_sm=48 * 1024,
    smem_per_block_max=48 * 1024,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    register_alloc_unit=64,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    max_blocks_per_sm=8,
    const_memory_size=64 * 1024,
    const_cache_per_sm=8 * 1024,
    gmem_transaction_size=128,
    gmem_bandwidth_gbs=177.0,
    gmem_achievable_fraction=0.75,
    l2_size=768 * 1024,
    l2_bandwidth_gbs=350.0,
)

#: GeForce GTX 980 (GM204, cc 5.2) — a 4-byte-bank architecture for the
#: paper's future-work discussion (short data types, Sec. 6).
MAXWELL_GM204 = GPUArchitecture(
    name="Maxwell GM204",
    compute_capability=(5, 2),
    sm_count=16,
    warp_size=32,
    clock_ghz=1.126,
    peak_sp_gflops=4612.0,
    smem_bank_count=32,
    smem_bank_width=4,
    smem_per_sm=96 * 1024,
    smem_per_block_max=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    const_memory_size=64 * 1024,
    const_cache_per_sm=8 * 1024,
    gmem_transaction_size=128,
    gmem_bandwidth_gbs=224.0,
    gmem_achievable_fraction=0.80,
    l2_size=2048 * 1024,
    l2_bandwidth_gbs=700.0,
)

#: Tesla P100 (GP100, cc 6.0) — the architecture of the Pascal follow-up
#: work (Chang & Onishi, 2022): 4-byte banks, so float data is already
#: matched and the bank-width model predicts no matched/unmatched gap.
PASCAL_P100 = GPUArchitecture(
    name="Pascal P100",
    compute_capability=(6, 0),
    sm_count=56,
    warp_size=32,
    clock_ghz=1.328,
    peak_sp_gflops=9519.0,
    smem_bank_count=32,
    smem_bank_width=4,
    smem_per_sm=64 * 1024,
    smem_per_block_max=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    const_memory_size=64 * 1024,
    const_cache_per_sm=8 * 1024,
    gmem_transaction_size=128,
    gmem_bandwidth_gbs=732.0,
    gmem_achievable_fraction=0.80,
    l2_size=4096 * 1024,
    l2_bandwidth_gbs=1400.0,
)

#: Name -> architecture registry used by the CLI and benchmarks.
ARCHITECTURES = {
    "kepler": KEPLER_K40M,
    "fermi": FERMI_M2090,
    "maxwell": MAXWELL_GM204,
    "pascal": PASCAL_P100,
}
