"""Memory-hierarchy models: shared-memory banks, global-memory
coalescing, constant-memory broadcast, and register accounting."""

from repro.gpu.memory.banks import (
    BankConflictPolicy,
    SharedMemoryModel,
    SmemAccessResult,
)
from repro.gpu.memory.globalmem import GlobalMemoryModel, GmemAccessResult
from repro.gpu.memory.constmem import ConstantMemoryModel, CmemAccessResult
from repro.gpu.memory.registers import RegisterFile

__all__ = [
    "BankConflictPolicy",
    "SharedMemoryModel",
    "SmemAccessResult",
    "GlobalMemoryModel",
    "GmemAccessResult",
    "ConstantMemoryModel",
    "CmemAccessResult",
    "RegisterFile",
]
