"""Register-file accounting.

Tracks per-thread register demand against the architecture's limits and
rounds block allocations to the hardware allocation unit, as the real
register allocator does.  Used by the occupancy calculator and by the
kernel configuration validators (the paper's Sec. 3.1 discussion of
register pressure for the moving-window scheme is what this guards).
"""

from __future__ import annotations

from repro.errors import ResourceError
from repro.gpu.arch import GPUArchitecture

__all__ = ["RegisterFile"]


class RegisterFile:
    """Register allocation rules for one architecture."""

    def __init__(self, arch: GPUArchitecture):
        self.arch = arch

    def check_thread_demand(self, registers_per_thread: int) -> None:
        """Raise if a single thread needs more registers than the ISA allows."""
        if registers_per_thread <= 0:
            raise ResourceError("registers_per_thread must be positive")
        if registers_per_thread > self.arch.max_registers_per_thread:
            raise ResourceError(
                "kernel needs %d registers/thread, %s allows %d"
                % (
                    registers_per_thread,
                    self.arch.name,
                    self.arch.max_registers_per_thread,
                )
            )

    def block_allocation(self, registers_per_thread: int, threads_per_block: int) -> int:
        """Registers actually reserved for one block (granularity-rounded)."""
        self.check_thread_demand(registers_per_thread)
        if threads_per_block <= 0:
            raise ResourceError("threads_per_block must be positive")
        raw = registers_per_thread * threads_per_block
        unit = self.arch.register_alloc_unit
        return (raw + unit - 1) // unit * unit

    def max_blocks(self, registers_per_thread: int, threads_per_block: int) -> int:
        """Blocks per SM permitted by the register file alone."""
        per_block = self.block_allocation(registers_per_thread, threads_per_block)
        if per_block > self.arch.registers_per_sm:
            return 0
        return self.arch.registers_per_sm // per_block
