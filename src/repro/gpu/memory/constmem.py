"""Constant-memory broadcast model.

Constant memory is served through a small per-SM cache with a broadcast
port: a warp access in which every lane reads the *same* address costs a
single cycle; lanes reading ``d`` distinct addresses serialize into
``d`` broadcasts.  The paper's special-case kernel is designed so that
all lanes always read the identical filter tap (Sec. 3.3), which this
model rewards.

Cache behaviour is modeled at working-set granularity: a working set
that fits the per-SM constant cache hits after its cold miss; a larger
set thrashes proportionally.  This coarse model is sufficient because
the kernels either fit comfortably (special case: one K x K filter set)
or do not use constant memory at all (general case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture

__all__ = ["CmemAccessResult", "ConstantMemoryModel"]


@dataclass(frozen=True)
class CmemAccessResult:
    """Outcome of one warp-level constant-memory request."""

    lanes: int
    distinct_addresses: int

    @property
    def serializations(self) -> int:
        """Broadcast cycles needed for the request."""
        return self.distinct_addresses

    @property
    def is_broadcast(self) -> bool:
        return self.distinct_addresses == 1


class ConstantMemoryModel:
    """Broadcast/serialization simulator for constant memory."""

    def __init__(self, arch: GPUArchitecture):
        self.arch = arch

    def access(self, addresses) -> CmemAccessResult:
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.ndim != 1 or addrs.size == 0:
            raise TraceError("addresses must be a non-empty 1-D sequence")
        if addrs.size > self.arch.warp_size:
            raise TraceError(
                "a warp request has at most %d lanes, got %d"
                % (self.arch.warp_size, addrs.size)
            )
        if np.any(addrs < 0):
            raise TraceError("negative constant-memory address")
        return CmemAccessResult(
            lanes=int(addrs.size),
            distinct_addresses=int(np.unique(addrs).size),
        )

    def hit_rate(self, working_set_bytes: int) -> float:
        """Steady-state constant-cache hit rate for a working set."""
        if working_set_bytes < 0:
            raise TraceError("working set size cannot be negative")
        if working_set_bytes == 0:
            return 1.0
        if working_set_bytes > self.arch.const_memory_size:
            raise TraceError(
                "working set %d exceeds constant memory size %d"
                % (working_set_bytes, self.arch.const_memory_size)
            )
        cache = self.arch.const_cache_per_sm
        if working_set_bytes <= cache:
            return 1.0
        return cache / working_set_bytes
