"""Global-memory coalescing model.

Global-memory requests from a warp are decomposed into aligned
transactions of ``gmem_transaction_size`` bytes (128 B on all modeled
architectures).  A warp request touching ``t`` distinct segments costs
``t`` transactions; the efficiency of an access pattern is the ratio of
bytes the program asked for to bytes the DRAM actually moved.  This is
exactly the accounting ``nvprof``'s ``gld_efficiency`` /
``gst_efficiency`` counters perform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture

__all__ = ["GmemAccessResult", "GlobalMemoryModel"]


@dataclass(frozen=True)
class GmemAccessResult:
    """Outcome of one warp-level global-memory request."""

    lanes: int
    access_size: int
    request_bytes: int          # lanes * access_size
    unique_bytes: int           # distinct bytes touched
    transactions: int           # 128-byte segments moved
    segment_size: int

    @property
    def bytes_moved(self) -> int:
        return self.transactions * self.segment_size

    @property
    def efficiency(self) -> float:
        """Useful fraction of moved DRAM bytes (cf. nvprof gld_efficiency)."""
        moved = self.bytes_moved
        return self.unique_bytes / moved if moved else 0.0

    @property
    def fully_coalesced(self) -> bool:
        return self.transactions * self.segment_size == _round_up(
            self.unique_bytes, self.segment_size
        )


def _round_up(value: int, unit: int) -> int:
    return (value + unit - 1) // unit * unit


class GlobalMemoryModel:
    """Coalescing simulator for one architecture's global memory."""

    def __init__(self, arch: GPUArchitecture):
        self.arch = arch
        self.segment_size = arch.gmem_transaction_size

    def access(self, addresses, size: int, segment_size: int = 0) -> GmemAccessResult:
        """Simulate one warp request of ``size`` bytes per active lane.

        ``segment_size`` overrides the default transaction granularity;
        stores on Kepler-class devices bypass L1 and are issued in 32-byte
        L2 sectors, so the tracer passes 32 for writes.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.ndim != 1 or addrs.size == 0:
            raise TraceError("addresses must be a non-empty 1-D sequence")
        if addrs.size > self.arch.warp_size:
            raise TraceError(
                "a warp request has at most %d lanes, got %d"
                % (self.arch.warp_size, addrs.size)
            )
        if size <= 0:
            raise TraceError("access size must be positive")
        if np.any(addrs < 0):
            raise TraceError("negative global-memory address")
        if np.any(addrs % size):
            raise TraceError("global-memory accesses must be %d-byte aligned" % size)

        seg = segment_size or self.segment_size
        first = addrs // seg
        last = (addrs + size - 1) // seg
        touched = [np.arange(f, l + 1) for f, l in zip(first, last)]
        segments = np.unique(np.concatenate(touched))
        unique_bytes = int(np.unique(addrs).size) * size
        return GmemAccessResult(
            lanes=int(addrs.size),
            access_size=size,
            request_bytes=int(addrs.size) * size,
            unique_bytes=unique_bytes,
            transactions=int(segments.size),
            segment_size=seg,
        )

    read = access
    write = access
