"""Shared-memory bank model.

This module implements the shared-memory access model of Sec. 2.1 of the
paper.  Shared memory is organized as ``bank_count`` banks, each
``bank_width`` bytes wide (8 bytes on Kepler, 4 bytes on Fermi/Maxwell);
successive ``bank_width``-byte words map to successive banks.  A warp's
access request is served in one or more cycles depending on how the
lanes' addresses distribute over the banks.

Two serialization policies are provided:

``PAPER``
    The model used by the paper (Fig. 1): *any two accesses that fall
    into the same bank have to be serialized* unless they target the
    identical address (the broadcast case).  Under this policy a warp of
    32 lanes reading consecutive ``float`` values on Kepler (n = 2)
    needs two cycles per 16 banks' worth of data — half the bandwidth of
    the matched ``float2`` pattern.

``WORD_MERGE``
    A more charitable model of the hardware in which accesses that fall
    into the same *bank word* are merged and the word is multicast.
    Under this policy the unmatched pattern completes in one cycle but
    only moves half the bytes a matched access would, so the *bandwidth
    utilization* still halves.  Either way the paper's conclusion — a
    bandwidth-bound kernel loses a factor ``n`` — is unchanged; the
    ablation benchmark ``bench_ablation_bank_policy`` quantifies this.

Wide accesses (``float2``/``float4``) are decomposed into
``ceil(size / bank_width)`` phases of one bank word each, mirroring how
the hardware splits 64-/128-bit warp requests into multiple transactions.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture

__all__ = ["BankConflictPolicy", "SmemAccessResult", "SharedMemoryModel"]

_VALID_ACCESS_SIZES = (1, 2, 4, 8, 16)


class BankConflictPolicy(enum.Enum):
    """How same-bank accesses from different lanes are serialized."""

    PAPER = "paper"
    WORD_MERGE = "word-merge"


@dataclass(frozen=True)
class SmemAccessResult:
    """Outcome of one warp-level shared-memory request."""

    lanes: int                  # active lanes in the request
    access_size: int            # bytes requested per lane
    request_bytes: int          # lanes * access_size
    unique_bytes: int           # distinct bytes touched by the warp
    cycles: int                 # serialized cycles to satisfy the request
    conflict_degree: int        # max per-bank serialization in any phase
    phases: int                 # sub-requests for wide accesses
    bank_count: int
    bank_width: int

    @property
    def conflict_free(self) -> bool:
        """True when no bank serves two separate requests in any phase."""
        return self.conflict_degree == 1

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the peak bank bandwidth this request used.

        Peak delivery is ``bank_count * bank_width`` bytes per cycle;
        anything below 1.0 is either conflict serialization or partial
        word use (the unmatched pattern of Fig. 1a).
        """
        peak = self.cycles * self.bank_count * self.bank_width
        return self.unique_bytes / peak if peak else 0.0


class SharedMemoryModel:
    """Bank-conflict simulator for one architecture's shared memory."""

    def __init__(
        self,
        arch: GPUArchitecture,
        policy: BankConflictPolicy = BankConflictPolicy.PAPER,
    ):
        self.arch = arch
        self.policy = policy
        self.bank_count = arch.smem_bank_count
        self.bank_width = arch.smem_bank_width

    # ------------------------------------------------------------------
    def access(self, addresses, size: int) -> SmemAccessResult:
        """Simulate one warp request.

        Parameters
        ----------
        addresses:
            Byte address accessed by each active lane (length <= warp
            size).  Addresses must be aligned to ``size``, as CUDA
            requires.
        size:
            Bytes accessed per lane (the ``W_CD`` of the paper's model,
            or ``n * W_CD`` for vectorized accesses).
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.ndim != 1 or addrs.size == 0:
            raise TraceError("addresses must be a non-empty 1-D sequence")
        if addrs.size > self.arch.warp_size:
            raise TraceError(
                "a warp request has at most %d lanes, got %d"
                % (self.arch.warp_size, addrs.size)
            )
        if size not in _VALID_ACCESS_SIZES:
            raise TraceError("access size must be one of %s" % (_VALID_ACCESS_SIZES,))
        if np.any(addrs < 0):
            raise TraceError("negative shared-memory address")
        if np.any(addrs % size):
            raise TraceError("shared-memory accesses must be %d-byte aligned" % size)

        # Wide accesses are split into sub-requests of lane *groups*, as
        # the hardware does: each transaction can deliver at most one
        # full bank row (bank_count * bank_width bytes), so a warp of
        # float4 accesses on Kepler is served as two half-warp
        # transactions, each covering all 32 banks conflict-free.
        row_bytes = self.bank_count * self.bank_width
        lanes_per_group = max(1, row_bytes // size)
        words_per_access = max(1, math.ceil(size / self.bank_width))
        phases = math.ceil(addrs.size / lanes_per_group)

        total_cycles = 0
        worst_degree = 1
        for g in range(phases):
            group = addrs[g * lanes_per_group : (g + 1) * lanes_per_group]
            # Expand each lane access into its bank words.
            chunk_addrs = (
                group[:, np.newaxis]
                + np.arange(words_per_access) * self.bank_width
            ).reshape(-1)
            banks = (chunk_addrs // self.bank_width) % self.bank_count
            if self.policy is BankConflictPolicy.PAPER:
                # Distinct addresses hitting the same bank serialize;
                # identical addresses broadcast.
                keys = chunk_addrs
            else:
                # Accesses within one bank word merge (word multicast).
                keys = chunk_addrs // self.bank_width
            degree = _max_group_cardinality(banks, keys)
            worst_degree = max(worst_degree, degree)
            total_cycles += degree

        unique_bytes = _unique_byte_count(addrs, size)
        return SmemAccessResult(
            lanes=int(addrs.size),
            access_size=size,
            request_bytes=int(addrs.size) * size,
            unique_bytes=unique_bytes,
            cycles=total_cycles,
            conflict_degree=worst_degree,
            phases=phases,
            bank_count=self.bank_count,
            bank_width=self.bank_width,
        )

    # Convenience aliases: loads and stores obey the same bank rules.
    read = access
    write = access


def _max_group_cardinality(banks: np.ndarray, keys: np.ndarray) -> int:
    """Largest number of *distinct* keys mapped to any single bank."""
    pairs = np.stack([banks, keys], axis=1)
    unique_pairs = np.unique(pairs, axis=0)
    _, counts = np.unique(unique_pairs[:, 0], return_counts=True)
    return int(counts.max())


def _unique_byte_count(addrs: np.ndarray, size: int) -> int:
    """Number of distinct bytes covered by [a, a + size) over all lanes.

    Because addresses are size-aligned, two accesses either coincide or
    are disjoint, so distinct addresses suffice.
    """
    return int(np.unique(addrs).size) * size
