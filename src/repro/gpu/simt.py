"""Grid/block geometry and launch validation.

The functional kernel executors in :mod:`repro.core` and
:mod:`repro.baselines` describe their parallel decomposition with the
same ``<<<grid, block>>>`` vocabulary as CUDA.  This module provides the
geometry types and validates a launch against an architecture's limits,
so that any configuration accepted by the simulator would also be
launchable on the real device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import LaunchConfigError
from repro.gpu.arch import GPUArchitecture

__all__ = ["Dim3", "LaunchConfig", "warp_count", "lane_ids"]


@dataclass(frozen=True)
class Dim3:
    """A CUDA-style 3-component extent.  Components must be positive."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self):
        for axis in (self.x, self.y, self.z):
            if not isinstance(axis, (int, np.integer)) or axis < 1:
                raise LaunchConfigError("Dim3 components must be positive integers")

    @property
    def count(self) -> int:
        return int(self.x) * int(self.y) * int(self.z)

    def __iter__(self):
        return iter((self.x, self.y, self.z))


def warp_count(threads_per_block: int, warp_size: int = 32) -> int:
    """Number of (possibly partial) warps in a block of the given size."""
    if threads_per_block <= 0:
        raise LaunchConfigError("threads_per_block must be positive")
    return math.ceil(threads_per_block / warp_size)


def lane_ids(warp_index: int, threads_per_block: int, warp_size: int = 32) -> np.ndarray:
    """Linear thread indices covered by warp ``warp_index`` of a block.

    The last warp of a block may be partial; the returned array then has
    fewer than ``warp_size`` entries, matching how the hardware masks
    inactive lanes.
    """
    lo = warp_index * warp_size
    if lo >= threads_per_block or warp_index < 0:
        raise LaunchConfigError(
            "warp %d out of range for block of %d threads" % (warp_index, threads_per_block)
        )
    hi = min(lo + warp_size, threads_per_block)
    return np.arange(lo, hi)


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch: grid and block extents plus static resources.

    ``registers_per_thread`` and ``smem_per_block`` feed the occupancy
    calculator; they are what ``nvcc --ptxas-options=-v`` would report
    for the real kernel.
    """

    grid: Dim3
    block: Dim3
    registers_per_thread: int = 32
    smem_per_block: int = 0

    @property
    def threads_per_block(self) -> int:
        return self.block.count

    @property
    def total_blocks(self) -> int:
        return self.grid.count

    @property
    def total_threads(self) -> int:
        return self.total_blocks * self.threads_per_block

    def warps_per_block(self, warp_size: int = 32) -> int:
        return warp_count(self.threads_per_block, warp_size)

    def total_warps(self, warp_size: int = 32) -> int:
        return self.total_blocks * self.warps_per_block(warp_size)

    def validate(self, arch: GPUArchitecture) -> None:
        """Raise :class:`LaunchConfigError` if this launch cannot run on ``arch``."""
        if self.threads_per_block > arch.max_threads_per_block:
            raise LaunchConfigError(
                "%d threads/block exceeds limit %d on %s"
                % (self.threads_per_block, arch.max_threads_per_block, arch.name)
            )
        if self.smem_per_block > arch.smem_per_block_max:
            raise LaunchConfigError(
                "%d bytes of shared memory/block exceeds limit %d on %s"
                % (self.smem_per_block, arch.smem_per_block_max, arch.name)
            )
        if self.registers_per_thread > arch.max_registers_per_thread:
            raise LaunchConfigError(
                "%d registers/thread exceeds limit %d on %s"
                % (self.registers_per_thread, arch.max_registers_per_thread, arch.name)
            )
        block_regs = self.registers_per_thread * self.threads_per_block
        if block_regs > arch.registers_per_sm:
            raise LaunchConfigError(
                "block requires %d registers, SM has %d on %s"
                % (block_regs, arch.registers_per_sm, arch.name)
            )
