"""Traffic ledger and kernel tracer.

A :class:`KernelTracer` is the simulated analogue of running a kernel
under ``nvprof``: a kernel's cost model replays the *actual byte
addresses* of each of its memory-access sites through the bank /
coalescing / broadcast models and records the resulting transaction and
cycle counts, scaled by how many times the site executes.  The result is
a :class:`KernelCost`, which the timing model converts into seconds.

The scaling is exact rather than sampled: every kernel in this package
uses access patterns whose bank- and segment-structure is identical
across repetitions (all strides and bases are multiples of the relevant
alignment), so one representative warp request per site fully
characterizes the traffic.  Sites where the base alignment varies (halo
reads at image-row granularity) are traced once per distinct alignment
via the ``variants`` argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel
from repro.gpu.memory.constmem import ConstantMemoryModel
from repro.gpu.memory.globalmem import GlobalMemoryModel
from repro.gpu.simt import LaunchConfig
from repro.obs import metrics as _metrics

__all__ = [
    "SiteStats",
    "TrafficLedger",
    "KernelCost",
    "KernelTracer",
    "PreparedBatch",
    "prepare_batch",
    "cross_block_reuse",
    "publish_kernel_cost",
    "access_cache_stats",
    "clear_access_caches",
]


# ----------------------------------------------------------------------
# Canonical-pattern memoization of memory-model results
# ----------------------------------------------------------------------
#
# Every model outcome is invariant under translating a warp's addresses
# by a multiple of the structure period: the bank row (bank_count *
# bank_width bytes) for shared memory, lcm(access size, sector) for
# global memory, and any constant for the broadcast model.  Shifting a
# pattern down to its canonical window therefore collapses the millions
# of distinct absolute address vectors a sweep replays into a few dozen
# canonical ones, whose results are memoized process-wide per
# (architecture parameters, policy).  Results are frozen dataclasses, so
# sharing them is safe; invalid requests (negative addresses,
# misalignment, too many lanes) bypass the cache and raise exactly as
# before.

_ACCESS_CACHE_CAP = 1 << 16

_model_caches: Dict[tuple, dict] = {}
_access_cache_hits = 0
_access_cache_misses = 0


def _cache_for(key: tuple) -> dict:
    return _model_caches.setdefault(key, {})


def clear_access_caches() -> None:
    """Drop every memoized memory-model result (mainly for tests)."""
    _model_caches.clear()


def access_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the canonical-pattern access cache."""
    return {
        "hits": _access_cache_hits,
        "misses": _access_cache_misses,
        "entries": sum(len(c) for c in _model_caches.values()),
    }


def cross_block_reuse(arch: "GPUArchitecture", slab_bytes: float,
                      sharing_blocks: float, cap: float = 16.0) -> float:
    """L2 reuse factor for a read-only slab shared by many blocks.

    When ``sharing_blocks`` thread blocks stream the same ``slab_bytes``
    (e.g. every output-tile block re-reads the full filter set), the L2
    serves all but the first pass as long as the slab fits; the credit
    is capped because only a bounded number of sharing blocks are
    co-resident at any time.
    """
    if slab_bytes <= 0:
        return 1.0
    return max(1.0, min(float(sharing_blocks), arch.l2_size / slab_bytes, cap))


class PreparedBatch:
    """A canonicalized, deduplicated warp-request batch.

    ``rows`` are the distinct canonical address patterns, ``keys`` their
    serialized cache keys, ``mults`` their integer row multiplicities.
    A prepared batch captures only a batch's *geometry* — callers that
    replay the same address structure under many different execution
    counts (a config sweep, the fast trace generators) build it once,
    cache it, and fold it repeatedly through the ``*_prepared`` tracer
    methods with a per-use uniform scale.
    """

    __slots__ = ("rows", "keys", "mults")

    def __init__(self, rows, keys, mults):
        self.rows = rows
        self.keys = keys
        self.mults = mults


def prepare_batch(matrix, mod: int) -> PreparedBatch:
    """Canonicalize and deduplicate a ``(warps, lanes)`` address matrix.

    ``mod`` is the structure period the patterns are invariant under
    (the shared-memory row bytes, or ``lcm(access size, sector)`` for
    global memory).  Raises :class:`TraceError` on malformed input or
    negative addresses, exactly like the batch tracer methods.
    """
    m = np.ascontiguousarray(np.asarray(matrix, dtype=np.int64))
    if m.ndim == 1:
        m = m[np.newaxis, :]
    if m.ndim != 2 or m.size == 0:
        raise TraceError("batch address matrix must be (warps, lanes)")
    lo = m.min(axis=1)
    if np.any(lo < 0):
        raise TraceError("negative address in batch request")
    shift = (lo // mod) * mod
    canon = m - shift[:, np.newaxis]
    groups: Dict[bytes, float] = {}
    rows: Dict[bytes, np.ndarray] = {}
    for i in range(canon.shape[0]):
        key = canon[i].tobytes()
        if key in groups:
            groups[key] += 1.0
        else:
            groups[key] = 1.0
            rows[key] = canon[i]
    return PreparedBatch(
        [rows[key] for key in groups], list(groups),
        [groups[key] for key in groups],
    )


@dataclass
class SiteStats:
    """Aggregated statistics for one named memory-access site."""

    kind: str                   # 'smem.read', 'gmem.write', 'cmem.read', ...
    executions: float = 0.0     # warp-level requests issued
    cycles: float = 0.0         # smem/cmem serialized cycles
    transactions: float = 0.0   # gmem segments moved
    request_bytes: float = 0.0
    unique_bytes: float = 0.0

    def merge_from(self, other: "SiteStats") -> None:
        if other.kind != self.kind:
            raise TraceError("cannot merge site stats of different kinds")
        self.executions += other.executions
        self.cycles += other.cycles
        self.transactions += other.transactions
        self.request_bytes += other.request_bytes
        self.unique_bytes += other.unique_bytes


@dataclass
class TrafficLedger:
    """Whole-kernel traffic counters (the profiler's summary page)."""

    flops: float = 0.0

    gmem_read_transactions: float = 0.0
    gmem_read_request_bytes: float = 0.0
    gmem_read_bytes_moved: float = 0.0
    gmem_write_transactions: float = 0.0
    gmem_write_request_bytes: float = 0.0
    gmem_write_bytes_moved: float = 0.0
    gmem_segment_size: int = 128

    gmem_l2_bytes: float = 0.0

    smem_requests: float = 0.0
    smem_cycles: float = 0.0
    smem_min_cycles: float = 0.0   # phase count: the conflict-free floor
    smem_request_bytes: float = 0.0

    cmem_requests: float = 0.0
    cmem_cycles: float = 0.0

    syncthreads: float = 0.0

    sites: Dict[str, SiteStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def gmem_bytes_moved(self) -> float:
        return self.gmem_read_bytes_moved + self.gmem_write_bytes_moved

    @property
    def gmem_read_efficiency(self) -> float:
        moved = self.gmem_read_bytes_moved
        return self.gmem_read_request_bytes / moved if moved else 1.0

    @property
    def gmem_write_efficiency(self) -> float:
        moved = self.gmem_write_bytes_moved
        return self.gmem_write_request_bytes / moved if moved else 1.0

    @property
    def smem_conflict_overhead(self) -> float:
        """Serialized cycles over the conflict-free floor (1.0 = clean).

        The floor counts the phases a wide access needs even without
        conflicts (a float4 warp access on 8-byte banks takes two clean
        cycles), so this ratio isolates genuine bank conflicts.
        """
        if not self.smem_min_cycles:
            return 1.0
        return self.smem_cycles / self.smem_min_cycles

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte actually moved."""
        moved = self.gmem_bytes_moved
        return self.flops / moved if moved else float("inf")

    def scale(self, factor: float) -> None:
        """Multiply every counter (e.g. to batch identical launches)."""
        if factor < 0:
            raise TraceError("scale factor cannot be negative")
        for name in (
            "flops",
            "gmem_read_transactions", "gmem_read_request_bytes",
            "gmem_read_bytes_moved", "gmem_write_transactions",
            "gmem_write_request_bytes", "gmem_write_bytes_moved",
            "gmem_l2_bytes",
            "smem_requests", "smem_cycles", "smem_min_cycles",
            "smem_request_bytes",
            "cmem_requests", "cmem_cycles", "syncthreads",
        ):
            setattr(self, name, getattr(self, name) * factor)
        for stats in self.sites.values():
            stats.executions *= factor
            stats.cycles *= factor
            stats.transactions *= factor
            stats.request_bytes *= factor
            stats.unique_bytes *= factor

    def merge(self, other: "TrafficLedger") -> None:
        """Accumulate another ledger (e.g. a second kernel launch) into this one."""
        if other.gmem_segment_size != self.gmem_segment_size:
            raise TraceError("cannot merge ledgers with different segment sizes")
        self.flops += other.flops
        self.gmem_read_transactions += other.gmem_read_transactions
        self.gmem_read_request_bytes += other.gmem_read_request_bytes
        self.gmem_read_bytes_moved += other.gmem_read_bytes_moved
        self.gmem_write_transactions += other.gmem_write_transactions
        self.gmem_write_request_bytes += other.gmem_write_request_bytes
        self.gmem_write_bytes_moved += other.gmem_write_bytes_moved
        self.gmem_l2_bytes += other.gmem_l2_bytes
        self.smem_requests += other.smem_requests
        self.smem_cycles += other.smem_cycles
        self.smem_min_cycles += other.smem_min_cycles
        self.smem_request_bytes += other.smem_request_bytes
        self.cmem_requests += other.cmem_requests
        self.cmem_cycles += other.cmem_cycles
        self.syncthreads += other.syncthreads
        for name, stats in other.sites.items():
            if name in self.sites:
                self.sites[name].merge_from(stats)
            else:
                self.sites[name] = SiteStats(**vars(stats))


@dataclass
class KernelCost:
    """Everything the timing model needs about one kernel launch."""

    name: str
    launch: LaunchConfig
    ledger: TrafficLedger
    software_prefetch: bool = False
    launches: int = 1

    @property
    def flops(self) -> float:
        return self.ledger.flops


def publish_kernel_cost(cost: KernelCost, registry=None) -> None:
    """Publish a finished kernel cost's ledger to a metrics registry.

    Every number the paper's argument rests on — global-memory
    transactions, shared-memory serialized cycles over the conflict-free
    floor (i.e. genuine bank conflicts), constant-memory broadcasts —
    becomes a labeled counter series keyed by kernel name, plus
    per-site breakdowns.  ``registry=None`` publishes to the
    process-wide registry (:func:`repro.obs.metrics.get_registry`).
    Counter values are exactly the ledger's return values, so the
    telemetry surface and the cost model can never disagree.
    """
    reg = registry if registry is not None else _metrics.get_registry()
    led = cost.ledger
    k = cost.name
    gmem_tx = reg.counter(
        "gpu_gmem_transactions_total",
        "Modeled global-memory transactions, by kernel and direction",
        labelnames=("kernel", "op"))
    gmem_tx.inc_key((k, "read"), led.gmem_read_transactions)
    gmem_tx.inc_key((k, "write"), led.gmem_write_transactions)
    gmem_bytes = reg.counter(
        "gpu_gmem_bytes_moved_total",
        "Modeled DRAM bytes moved, by kernel and direction",
        labelnames=("kernel", "op"))
    gmem_bytes.inc_key((k, "read"), led.gmem_read_bytes_moved)
    gmem_bytes.inc_key((k, "write"), led.gmem_write_bytes_moved)
    reg.counter(
        "gpu_smem_cycles_total",
        "Modeled shared-memory serialized cycles, by kernel",
        labelnames=("kernel",)).inc_key((k,), led.smem_cycles)
    reg.counter(
        "gpu_smem_bank_conflict_cycles_total",
        "Shared-memory cycles beyond the conflict-free floor, by kernel",
        labelnames=("kernel",)).inc_key(
            (k,), max(0.0, led.smem_cycles - led.smem_min_cycles))
    reg.counter(
        "gpu_cmem_cycles_total",
        "Modeled constant-memory serialization cycles, by kernel",
        labelnames=("kernel",)).inc_key((k,), led.cmem_cycles)
    reg.counter(
        "gpu_flops_total", "Modeled floating-point operations, by kernel",
        labelnames=("kernel",)).inc_key((k,), led.flops)
    reg.counter(
        "gpu_kernel_costs_total", "Kernel costs traced, by kernel",
        labelnames=("kernel",)).inc_key((k,))
    site_exec = reg.counter(
        "gpu_site_executions_total",
        "Warp-level requests issued, by kernel and access site",
        labelnames=("kernel", "site"))
    site_tx = reg.counter(
        "gpu_site_transactions_total",
        "Global-memory segments moved, by kernel and access site",
        labelnames=("kernel", "site"))
    site_cycles = reg.counter(
        "gpu_site_cycles_total",
        "Serialized smem/cmem cycles, by kernel and access site",
        labelnames=("kernel", "site"))
    for site, stats in led.sites.items():
        site_exec.inc_key((k, site), stats.executions)
        if stats.transactions:
            site_tx.inc_key((k, site), stats.transactions)
        if stats.cycles:
            site_cycles.inc_key((k, site), stats.cycles)


class KernelTracer:
    """Builds a :class:`KernelCost` from per-site warp address patterns.

    Each ``*_read``/``*_write`` call replays one representative warp
    request through the corresponding memory model and accumulates the
    outcome ``count`` times into the ledger.  ``count`` is typically
    ``warps_per_block * iterations * total_blocks``.
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        registry=None,
    ):
        # WORD_MERGE is the hardware's behaviour and the default for
        # end-to-end timing; the paper's stricter serialization model is
        # available for the bank-policy ablation (see core.bankwidth).
        self.arch = arch
        self.smem = SharedMemoryModel(arch, bank_policy)
        self.gmem = GlobalMemoryModel(arch)
        self.cmem = ConstantMemoryModel(arch)
        # None = publish the finished cost to the process-wide registry;
        # pass a private Registry (or ``publish_kernel_cost`` manually)
        # to redirect.
        self.registry = registry
        self.ledger = TrafficLedger(gmem_segment_size=arch.gmem_transaction_size)
        self._smem_row_bytes = arch.smem_bank_count * arch.smem_bank_width
        self._smem_cache = _cache_for(
            ("smem", arch.warp_size, arch.smem_bank_count,
             arch.smem_bank_width, bank_policy))
        self._gmem_cache = _cache_for(("gmem", arch.warp_size))
        self._cmem_cache = _cache_for(("cmem", arch.warp_size))

    # --- canonical cached model access -------------------------------------
    def _lookup(self, cache, model_access, canon, args, rowbytes):
        """Cache lookup for an already-canonicalized pattern."""
        global _access_cache_hits, _access_cache_misses
        key = (args, rowbytes)
        res = cache.get(key)
        if res is None:
            _access_cache_misses += 1
            res = model_access(canon, *args)
            if len(cache) < _ACCESS_CACHE_CAP:
                cache[key] = res
        else:
            _access_cache_hits += 1
        return res

    def _cached(self, cache, model_access, addrs, mod, *args):
        """Memoized ``model.access`` via the canonical translated pattern."""
        if addrs.ndim != 1 or addrs.size == 0:
            return model_access(addrs, *args)      # raises like the model
        lo = int(addrs.min())
        if lo < 0:
            return model_access(addrs, *args)      # preserve the error path
        shift = (lo // mod) * mod
        canon = addrs - shift if shift else addrs
        return self._lookup(cache, model_access, canon, args, canon.tobytes())

    def _smem_access(self, addresses, size):
        addrs = np.asarray(addresses, dtype=np.int64)
        return self._cached(self._smem_cache, self.smem.access, addrs,
                            self._smem_row_bytes, size)

    def _gmem_access(self, addresses, size, segment_size):
        addrs = np.asarray(addresses, dtype=np.int64)
        if size <= 0:
            return self.gmem.access(addrs, size, segment_size)
        mod = math.lcm(int(size), int(segment_size))
        return self._cached(self._gmem_cache, self.gmem.access, addrs,
                            mod, size, segment_size)

    def _cmem_access(self, addresses):
        addrs = np.asarray(addresses, dtype=np.int64)
        return self._cached(self._cmem_cache, self.cmem.access, addrs, 1)

    # --- shared memory ----------------------------------------------------
    def smem_read(self, addresses, size: int, count: float = 1.0, site: str = "smem"):
        return self._smem(addresses, size, count, site, "smem.read")

    def smem_write(self, addresses, size: int, count: float = 1.0, site: str = "smem"):
        return self._smem(addresses, size, count, site, "smem.write")

    def _smem(self, addresses, size, count, site, kind):
        if count < 0:
            raise TraceError("count cannot be negative")
        res = self._smem_access(addresses, size)
        self._smem_fold(res, count, site, kind)
        return res

    def _smem_fold(self, res, count, site, kind):
        led = self.ledger
        led.smem_requests += count
        led.smem_cycles += res.cycles * count
        led.smem_min_cycles += res.phases * count
        led.smem_request_bytes += res.request_bytes * count
        st = self._site(site, kind)
        st.executions += count
        st.cycles += res.cycles * count
        st.request_bytes += res.request_bytes * count
        st.unique_bytes += res.unique_bytes * count

    # --- global memory ------------------------------------------------------
    #: Global accesses on the modeled devices bypass L1 and are serviced
    #: by the L2 in 32-byte sectors (Kepler caches global loads in L2
    #: only); both loads and stores are priced at sector granularity.
    SECTOR_BYTES = 32

    def gmem_read(self, addresses, size: int, count: float = 1.0,
                  site: str = "gmem", l2_reuse: float = 1.0):
        return self._gmem(addresses, size, count, site, write=False,
                          l2_reuse=l2_reuse)

    def gmem_write(self, addresses, size: int, count: float = 1.0, site: str = "gmem"):
        return self._gmem(addresses, size, count, site, write=True)

    def _gmem(self, addresses, size, count, site, write, l2_reuse=1.0):
        if count < 0:
            raise TraceError("count cannot be negative")
        if l2_reuse < 1.0:
            raise TraceError("l2_reuse must be >= 1")
        sector = self.SECTOR_BYTES
        res = self._gmem_access(addresses, size, sector)
        self._gmem_fold(res, count, site, write, l2_reuse)
        return res

    def _gmem_fold(self, res, count, site, write, l2_reuse=1.0):
        led = self.ledger
        kind = "gmem.write" if write else "gmem.read"
        # Every transaction passes through the L2; only 1/l2_reuse of
        # them miss to DRAM (temporal reuse within the cache's reach,
        # declared by the kernel's cost model and audited in tests).
        led.gmem_l2_bytes += res.bytes_moved * count
        if write:
            led.gmem_write_transactions += res.transactions * count
            led.gmem_write_request_bytes += res.request_bytes * count
            led.gmem_write_bytes_moved += res.bytes_moved * count
        else:
            led.gmem_read_transactions += res.transactions * count
            led.gmem_read_request_bytes += res.request_bytes * count
            led.gmem_read_bytes_moved += res.bytes_moved * count / l2_reuse
        st = self._site(site, kind)
        st.executions += count
        st.transactions += res.transactions * count
        st.request_bytes += res.request_bytes * count
        st.unique_bytes += res.unique_bytes * count

    # --- constant memory -----------------------------------------------------
    def cmem_read(self, addresses, count: float = 1.0, site: str = "cmem"):
        if count < 0:
            raise TraceError("count cannot be negative")
        res = self._cmem_access(addresses)
        self._cmem_fold(res, count, site)
        return res

    def _cmem_fold(self, res, count, site):
        self.ledger.cmem_requests += count
        self.ledger.cmem_cycles += res.serializations * count
        st = self._site(site, "cmem.read")
        st.executions += count
        st.cycles += res.serializations * count

    # --- warp-batch API -----------------------------------------------------
    # A whole block's (or launch's) worth of warp requests for one site,
    # as a ``(warps, lanes)`` byte-address matrix: each row is one warp
    # request.  Rows are canonicalized (translated down to their
    # structure period, see the module-level cache notes), deduplicated
    # vectorized, and each distinct pattern is folded through the model
    # once with the summed multiplicity.  Because per-request model
    # outcomes are integers, the grouped accumulation is bit-identical
    # to issuing every row individually — the fast trace generators in
    # :mod:`repro.gpu.fastsim` rely on exactly that.

    def _batch_rows(self, matrix, counts, mod):
        m = np.ascontiguousarray(np.asarray(matrix, dtype=np.int64))
        if m.ndim == 1:
            m = m[np.newaxis, :]
        if m.ndim != 2 or m.size == 0:
            raise TraceError("batch address matrix must be (warps, lanes)")
        if counts is None:
            weights = None
        else:
            weights = np.asarray(counts, dtype=np.float64)
            if weights.shape != (m.shape[0],):
                raise TraceError(
                    "counts must have one entry per warp request row")
            if np.any(weights < 0):
                raise TraceError("count cannot be negative")
        lo = m.min(axis=1)
        if np.any(lo < 0):
            raise TraceError("negative address in batch request")
        shift = (lo // mod) * mod
        canon = m - shift[:, np.newaxis]
        # Row dedup via a dict of raw row bytes: np.unique(axis=0)'s
        # void-view machinery costs more than the model calls it saves
        # on typical batch sizes.  Insertion order keeps the fold
        # deterministic; integer-valued weights keep it exact.  The raw
        # row bytes double as the cache key downstream, so the batch
        # path canonicalizes and serializes each pattern exactly once.
        groups: Dict[bytes, float] = {}
        rows: Dict[bytes, np.ndarray] = {}
        for i in range(canon.shape[0]):
            key = canon[i].tobytes()
            if key in groups:
                groups[key] += 1.0 if weights is None else weights[i]
            else:
                groups[key] = 1.0 if weights is None else weights[i]
                rows[key] = canon[i]
        return [(rows[key], key, groups[key]) for key in groups]

    def smem_read_batch(self, matrix, size: int, counts=None,
                        site: str = "smem") -> None:
        self._smem_batch(matrix, size, counts, site, "smem.read")

    def smem_write_batch(self, matrix, size: int, counts=None,
                         site: str = "smem") -> None:
        self._smem_batch(matrix, size, counts, site, "smem.write")

    def _smem_batch(self, matrix, size, counts, site, kind):
        cache = self._smem_cache
        access = self.smem.access
        args = (size,)
        for row, rowbytes, mult in self._batch_rows(
                matrix, counts, self._smem_row_bytes):
            if mult:
                res = self._lookup(cache, access, row, args, rowbytes)
                self._smem_fold(res, float(mult), site, kind)

    def gmem_read_batch(self, matrix, size: int, counts=None,
                        site: str = "gmem", l2_reuse: float = 1.0) -> None:
        if l2_reuse < 1.0:
            raise TraceError("l2_reuse must be >= 1")
        self._gmem_batch(matrix, size, counts, site, False, l2_reuse)

    def gmem_write_batch(self, matrix, size: int, counts=None,
                         site: str = "gmem") -> None:
        self._gmem_batch(matrix, size, counts, site, True, 1.0)

    def _gmem_batch(self, matrix, size, counts, site, write, l2_reuse):
        if size <= 0:
            raise TraceError("access size must be positive")
        mod = math.lcm(int(size), self.SECTOR_BYTES)
        cache = self._gmem_cache
        access = self.gmem.access
        args = (size, self.SECTOR_BYTES)
        for row, rowbytes, mult in self._batch_rows(matrix, counts, mod):
            if mult:
                res = self._lookup(cache, access, row, args, rowbytes)
                self._gmem_fold(res, float(mult), site, write, l2_reuse)

    def cmem_read_batch(self, matrix, counts=None,
                        site: str = "cmem") -> None:
        cache = self._cmem_cache
        access = self.cmem.access
        for row, rowbytes, mult in self._batch_rows(matrix, counts, 1):
            if mult:
                res = self._lookup(cache, access, row, (), rowbytes)
                self._cmem_fold(res, float(mult), site)

    # --- prepared batches ---------------------------------------------------
    # The same folds as the batch API, but over a :class:`PreparedBatch`
    # whose canonicalization/dedup already happened (and was typically
    # cached across kernels sharing the geometry).  Each distinct row
    # executes ``row multiplicity * scale`` times.

    def smem_batch_mod(self) -> int:
        """The period to :func:`prepare_batch` shared-memory batches with."""
        return self._smem_row_bytes

    def gmem_batch_mod(self, size: int) -> int:
        """The period to :func:`prepare_batch` global-memory batches with."""
        if size <= 0:
            raise TraceError("access size must be positive")
        return math.lcm(int(size), self.SECTOR_BYTES)

    def smem_read_prepared(self, prep: PreparedBatch, size: int,
                           scale: float = 1.0, site: str = "smem") -> None:
        self._smem_prepared(prep, size, scale, site, "smem.read")

    def smem_write_prepared(self, prep: PreparedBatch, size: int,
                            scale: float = 1.0, site: str = "smem") -> None:
        self._smem_prepared(prep, size, scale, site, "smem.write")

    def _smem_prepared(self, prep, size, scale, site, kind):
        if scale < 0:
            raise TraceError("count cannot be negative")
        cache = self._smem_cache
        access = self.smem.access
        args = (size,)
        for row, rowbytes, m in zip(prep.rows, prep.keys, prep.mults):
            mult = m * scale
            if mult:
                res = self._lookup(cache, access, row, args, rowbytes)
                self._smem_fold(res, mult, site, kind)

    def gmem_read_prepared(self, prep: PreparedBatch, size: int,
                           scale: float = 1.0, site: str = "gmem",
                           l2_reuse: float = 1.0) -> None:
        if l2_reuse < 1.0:
            raise TraceError("l2_reuse must be >= 1")
        self._gmem_prepared(prep, size, scale, site, False, l2_reuse)

    def gmem_write_prepared(self, prep: PreparedBatch, size: int,
                            scale: float = 1.0, site: str = "gmem") -> None:
        self._gmem_prepared(prep, size, scale, site, True, 1.0)

    def _gmem_prepared(self, prep, size, scale, site, write, l2_reuse):
        if scale < 0:
            raise TraceError("count cannot be negative")
        if size <= 0:
            raise TraceError("access size must be positive")
        cache = self._gmem_cache
        access = self.gmem.access
        args = (size, self.SECTOR_BYTES)
        for row, rowbytes, m in zip(prep.rows, prep.keys, prep.mults):
            mult = m * scale
            if mult:
                res = self._lookup(cache, access, row, args, rowbytes)
                self._gmem_fold(res, mult, site, write, l2_reuse)

    def cmem_read_prepared(self, prep: PreparedBatch, scale: float = 1.0,
                           site: str = "cmem") -> None:
        if scale < 0:
            raise TraceError("count cannot be negative")
        cache = self._cmem_cache
        access = self.cmem.access
        for row, rowbytes, m in zip(prep.rows, prep.keys, prep.mults):
            mult = m * scale
            if mult:
                res = self._lookup(cache, access, row, (), rowbytes)
                self._cmem_fold(res, mult, site)

    # --- compute / control ------------------------------------------------------
    def flops(self, count: float) -> None:
        if count < 0:
            raise TraceError("flop count cannot be negative")
        self.ledger.flops += count

    def sync(self, count: float = 1.0) -> None:
        if count < 0:
            raise TraceError("sync count cannot be negative")
        self.ledger.syncthreads += count

    # --- finalize -------------------------------------------------------------
    def finish(
        self,
        name: str,
        launch: LaunchConfig,
        software_prefetch: bool = False,
        launches: int = 1,
    ) -> KernelCost:
        launch.validate(self.arch)
        cost = KernelCost(
            name=name,
            launch=launch,
            ledger=self.ledger,
            software_prefetch=software_prefetch,
            launches=launches,
        )
        publish_kernel_cost(cost, registry=self.registry)
        return cost

    # ------------------------------------------------------------------
    def _site(self, site: str, kind: str) -> SiteStats:
        key = "%s[%s]" % (site, kind)
        if key not in self.ledger.sites:
            self.ledger.sites[key] = SiteStats(kind=kind)
        return self.ledger.sites[key]
