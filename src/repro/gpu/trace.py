"""Traffic ledger and kernel tracer.

A :class:`KernelTracer` is the simulated analogue of running a kernel
under ``nvprof``: a kernel's cost model replays the *actual byte
addresses* of each of its memory-access sites through the bank /
coalescing / broadcast models and records the resulting transaction and
cycle counts, scaled by how many times the site executes.  The result is
a :class:`KernelCost`, which the timing model converts into seconds.

The scaling is exact rather than sampled: every kernel in this package
uses access patterns whose bank- and segment-structure is identical
across repetitions (all strides and bases are multiples of the relevant
alignment), so one representative warp request per site fully
characterizes the traffic.  Sites where the base alignment varies (halo
reads at image-row granularity) are traced once per distinct alignment
via the ``variants`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import TraceError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel
from repro.gpu.memory.constmem import ConstantMemoryModel
from repro.gpu.memory.globalmem import GlobalMemoryModel
from repro.gpu.simt import LaunchConfig
from repro.obs import metrics as _metrics

__all__ = [
    "SiteStats",
    "TrafficLedger",
    "KernelCost",
    "KernelTracer",
    "cross_block_reuse",
    "publish_kernel_cost",
]


def cross_block_reuse(arch: "GPUArchitecture", slab_bytes: float,
                      sharing_blocks: float, cap: float = 16.0) -> float:
    """L2 reuse factor for a read-only slab shared by many blocks.

    When ``sharing_blocks`` thread blocks stream the same ``slab_bytes``
    (e.g. every output-tile block re-reads the full filter set), the L2
    serves all but the first pass as long as the slab fits; the credit
    is capped because only a bounded number of sharing blocks are
    co-resident at any time.
    """
    if slab_bytes <= 0:
        return 1.0
    return max(1.0, min(float(sharing_blocks), arch.l2_size / slab_bytes, cap))


@dataclass
class SiteStats:
    """Aggregated statistics for one named memory-access site."""

    kind: str                   # 'smem.read', 'gmem.write', 'cmem.read', ...
    executions: float = 0.0     # warp-level requests issued
    cycles: float = 0.0         # smem/cmem serialized cycles
    transactions: float = 0.0   # gmem segments moved
    request_bytes: float = 0.0
    unique_bytes: float = 0.0

    def merge_from(self, other: "SiteStats") -> None:
        if other.kind != self.kind:
            raise TraceError("cannot merge site stats of different kinds")
        self.executions += other.executions
        self.cycles += other.cycles
        self.transactions += other.transactions
        self.request_bytes += other.request_bytes
        self.unique_bytes += other.unique_bytes


@dataclass
class TrafficLedger:
    """Whole-kernel traffic counters (the profiler's summary page)."""

    flops: float = 0.0

    gmem_read_transactions: float = 0.0
    gmem_read_request_bytes: float = 0.0
    gmem_read_bytes_moved: float = 0.0
    gmem_write_transactions: float = 0.0
    gmem_write_request_bytes: float = 0.0
    gmem_write_bytes_moved: float = 0.0
    gmem_segment_size: int = 128

    gmem_l2_bytes: float = 0.0

    smem_requests: float = 0.0
    smem_cycles: float = 0.0
    smem_min_cycles: float = 0.0   # phase count: the conflict-free floor
    smem_request_bytes: float = 0.0

    cmem_requests: float = 0.0
    cmem_cycles: float = 0.0

    syncthreads: float = 0.0

    sites: Dict[str, SiteStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def gmem_bytes_moved(self) -> float:
        return self.gmem_read_bytes_moved + self.gmem_write_bytes_moved

    @property
    def gmem_read_efficiency(self) -> float:
        moved = self.gmem_read_bytes_moved
        return self.gmem_read_request_bytes / moved if moved else 1.0

    @property
    def gmem_write_efficiency(self) -> float:
        moved = self.gmem_write_bytes_moved
        return self.gmem_write_request_bytes / moved if moved else 1.0

    @property
    def smem_conflict_overhead(self) -> float:
        """Serialized cycles over the conflict-free floor (1.0 = clean).

        The floor counts the phases a wide access needs even without
        conflicts (a float4 warp access on 8-byte banks takes two clean
        cycles), so this ratio isolates genuine bank conflicts.
        """
        if not self.smem_min_cycles:
            return 1.0
        return self.smem_cycles / self.smem_min_cycles

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte actually moved."""
        moved = self.gmem_bytes_moved
        return self.flops / moved if moved else float("inf")

    def scale(self, factor: float) -> None:
        """Multiply every counter (e.g. to batch identical launches)."""
        if factor < 0:
            raise TraceError("scale factor cannot be negative")
        for name in (
            "flops",
            "gmem_read_transactions", "gmem_read_request_bytes",
            "gmem_read_bytes_moved", "gmem_write_transactions",
            "gmem_write_request_bytes", "gmem_write_bytes_moved",
            "gmem_l2_bytes",
            "smem_requests", "smem_cycles", "smem_min_cycles",
            "smem_request_bytes",
            "cmem_requests", "cmem_cycles", "syncthreads",
        ):
            setattr(self, name, getattr(self, name) * factor)
        for stats in self.sites.values():
            stats.executions *= factor
            stats.cycles *= factor
            stats.transactions *= factor
            stats.request_bytes *= factor
            stats.unique_bytes *= factor

    def merge(self, other: "TrafficLedger") -> None:
        """Accumulate another ledger (e.g. a second kernel launch) into this one."""
        if other.gmem_segment_size != self.gmem_segment_size:
            raise TraceError("cannot merge ledgers with different segment sizes")
        self.flops += other.flops
        self.gmem_read_transactions += other.gmem_read_transactions
        self.gmem_read_request_bytes += other.gmem_read_request_bytes
        self.gmem_read_bytes_moved += other.gmem_read_bytes_moved
        self.gmem_write_transactions += other.gmem_write_transactions
        self.gmem_write_request_bytes += other.gmem_write_request_bytes
        self.gmem_write_bytes_moved += other.gmem_write_bytes_moved
        self.gmem_l2_bytes += other.gmem_l2_bytes
        self.smem_requests += other.smem_requests
        self.smem_cycles += other.smem_cycles
        self.smem_min_cycles += other.smem_min_cycles
        self.smem_request_bytes += other.smem_request_bytes
        self.cmem_requests += other.cmem_requests
        self.cmem_cycles += other.cmem_cycles
        self.syncthreads += other.syncthreads
        for name, stats in other.sites.items():
            if name in self.sites:
                self.sites[name].merge_from(stats)
            else:
                self.sites[name] = SiteStats(**vars(stats))


@dataclass
class KernelCost:
    """Everything the timing model needs about one kernel launch."""

    name: str
    launch: LaunchConfig
    ledger: TrafficLedger
    software_prefetch: bool = False
    launches: int = 1

    @property
    def flops(self) -> float:
        return self.ledger.flops


def publish_kernel_cost(cost: KernelCost, registry=None) -> None:
    """Publish a finished kernel cost's ledger to a metrics registry.

    Every number the paper's argument rests on — global-memory
    transactions, shared-memory serialized cycles over the conflict-free
    floor (i.e. genuine bank conflicts), constant-memory broadcasts —
    becomes a labeled counter series keyed by kernel name, plus
    per-site breakdowns.  ``registry=None`` publishes to the
    process-wide registry (:func:`repro.obs.metrics.get_registry`).
    Counter values are exactly the ledger's return values, so the
    telemetry surface and the cost model can never disagree.
    """
    reg = registry if registry is not None else _metrics.get_registry()
    led = cost.ledger
    k = cost.name
    gmem_tx = reg.counter(
        "gpu_gmem_transactions_total",
        "Modeled global-memory transactions, by kernel and direction",
        labelnames=("kernel", "op"))
    gmem_tx.inc(led.gmem_read_transactions, kernel=k, op="read")
    gmem_tx.inc(led.gmem_write_transactions, kernel=k, op="write")
    gmem_bytes = reg.counter(
        "gpu_gmem_bytes_moved_total",
        "Modeled DRAM bytes moved, by kernel and direction",
        labelnames=("kernel", "op"))
    gmem_bytes.inc(led.gmem_read_bytes_moved, kernel=k, op="read")
    gmem_bytes.inc(led.gmem_write_bytes_moved, kernel=k, op="write")
    reg.counter(
        "gpu_smem_cycles_total",
        "Modeled shared-memory serialized cycles, by kernel",
        labelnames=("kernel",)).inc(led.smem_cycles, kernel=k)
    reg.counter(
        "gpu_smem_bank_conflict_cycles_total",
        "Shared-memory cycles beyond the conflict-free floor, by kernel",
        labelnames=("kernel",)).inc(
            max(0.0, led.smem_cycles - led.smem_min_cycles), kernel=k)
    reg.counter(
        "gpu_cmem_cycles_total",
        "Modeled constant-memory serialization cycles, by kernel",
        labelnames=("kernel",)).inc(led.cmem_cycles, kernel=k)
    reg.counter(
        "gpu_flops_total", "Modeled floating-point operations, by kernel",
        labelnames=("kernel",)).inc(led.flops, kernel=k)
    reg.counter(
        "gpu_kernel_costs_total", "Kernel costs traced, by kernel",
        labelnames=("kernel",)).inc(kernel=k)
    site_exec = reg.counter(
        "gpu_site_executions_total",
        "Warp-level requests issued, by kernel and access site",
        labelnames=("kernel", "site"))
    site_tx = reg.counter(
        "gpu_site_transactions_total",
        "Global-memory segments moved, by kernel and access site",
        labelnames=("kernel", "site"))
    site_cycles = reg.counter(
        "gpu_site_cycles_total",
        "Serialized smem/cmem cycles, by kernel and access site",
        labelnames=("kernel", "site"))
    for site, stats in led.sites.items():
        site_exec.inc(stats.executions, kernel=k, site=site)
        if stats.transactions:
            site_tx.inc(stats.transactions, kernel=k, site=site)
        if stats.cycles:
            site_cycles.inc(stats.cycles, kernel=k, site=site)


class KernelTracer:
    """Builds a :class:`KernelCost` from per-site warp address patterns.

    Each ``*_read``/``*_write`` call replays one representative warp
    request through the corresponding memory model and accumulates the
    outcome ``count`` times into the ledger.  ``count`` is typically
    ``warps_per_block * iterations * total_blocks``.
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
        registry=None,
    ):
        # WORD_MERGE is the hardware's behaviour and the default for
        # end-to-end timing; the paper's stricter serialization model is
        # available for the bank-policy ablation (see core.bankwidth).
        self.arch = arch
        self.smem = SharedMemoryModel(arch, bank_policy)
        self.gmem = GlobalMemoryModel(arch)
        self.cmem = ConstantMemoryModel(arch)
        # None = publish the finished cost to the process-wide registry;
        # pass a private Registry (or ``publish_kernel_cost`` manually)
        # to redirect.
        self.registry = registry
        self.ledger = TrafficLedger(gmem_segment_size=arch.gmem_transaction_size)

    # --- shared memory ----------------------------------------------------
    def smem_read(self, addresses, size: int, count: float = 1.0, site: str = "smem"):
        return self._smem(addresses, size, count, site, "smem.read")

    def smem_write(self, addresses, size: int, count: float = 1.0, site: str = "smem"):
        return self._smem(addresses, size, count, site, "smem.write")

    def _smem(self, addresses, size, count, site, kind):
        if count < 0:
            raise TraceError("count cannot be negative")
        res = self.smem.access(addresses, size)
        led = self.ledger
        led.smem_requests += count
        led.smem_cycles += res.cycles * count
        led.smem_min_cycles += res.phases * count
        led.smem_request_bytes += res.request_bytes * count
        self._site(site, kind).merge_from(
            SiteStats(
                kind=kind,
                executions=count,
                cycles=res.cycles * count,
                request_bytes=res.request_bytes * count,
                unique_bytes=res.unique_bytes * count,
            )
        )
        return res

    # --- global memory ------------------------------------------------------
    #: Global accesses on the modeled devices bypass L1 and are serviced
    #: by the L2 in 32-byte sectors (Kepler caches global loads in L2
    #: only); both loads and stores are priced at sector granularity.
    SECTOR_BYTES = 32

    def gmem_read(self, addresses, size: int, count: float = 1.0,
                  site: str = "gmem", l2_reuse: float = 1.0):
        return self._gmem(addresses, size, count, site, write=False,
                          l2_reuse=l2_reuse)

    def gmem_write(self, addresses, size: int, count: float = 1.0, site: str = "gmem"):
        return self._gmem(addresses, size, count, site, write=True)

    def _gmem(self, addresses, size, count, site, write, l2_reuse=1.0):
        if count < 0:
            raise TraceError("count cannot be negative")
        if l2_reuse < 1.0:
            raise TraceError("l2_reuse must be >= 1")
        sector = self.SECTOR_BYTES
        res = self.gmem.access(addresses, size, segment_size=sector)
        led = self.ledger
        kind = "gmem.write" if write else "gmem.read"
        # Every transaction passes through the L2; only 1/l2_reuse of
        # them miss to DRAM (temporal reuse within the cache's reach,
        # declared by the kernel's cost model and audited in tests).
        led.gmem_l2_bytes += res.bytes_moved * count
        if write:
            led.gmem_write_transactions += res.transactions * count
            led.gmem_write_request_bytes += res.request_bytes * count
            led.gmem_write_bytes_moved += res.bytes_moved * count
        else:
            led.gmem_read_transactions += res.transactions * count
            led.gmem_read_request_bytes += res.request_bytes * count
            led.gmem_read_bytes_moved += res.bytes_moved * count / l2_reuse
        self._site(site, kind).merge_from(
            SiteStats(
                kind=kind,
                executions=count,
                transactions=res.transactions * count,
                request_bytes=res.request_bytes * count,
                unique_bytes=res.unique_bytes * count,
            )
        )
        return res

    # --- constant memory -----------------------------------------------------
    def cmem_read(self, addresses, count: float = 1.0, site: str = "cmem"):
        if count < 0:
            raise TraceError("count cannot be negative")
        res = self.cmem.access(addresses)
        self.ledger.cmem_requests += count
        self.ledger.cmem_cycles += res.serializations * count
        self._site(site, "cmem.read").merge_from(
            SiteStats(kind="cmem.read", executions=count, cycles=res.serializations * count)
        )
        return res

    # --- compute / control ------------------------------------------------------
    def flops(self, count: float) -> None:
        if count < 0:
            raise TraceError("flop count cannot be negative")
        self.ledger.flops += count

    def sync(self, count: float = 1.0) -> None:
        if count < 0:
            raise TraceError("sync count cannot be negative")
        self.ledger.syncthreads += count

    # --- finalize -------------------------------------------------------------
    def finish(
        self,
        name: str,
        launch: LaunchConfig,
        software_prefetch: bool = False,
        launches: int = 1,
    ) -> KernelCost:
        launch.validate(self.arch)
        cost = KernelCost(
            name=name,
            launch=launch,
            ledger=self.ledger,
            software_prefetch=software_prefetch,
            launches=launches,
        )
        publish_kernel_cost(cost, registry=self.registry)
        return cost

    # ------------------------------------------------------------------
    def _site(self, site: str, kind: str) -> SiteStats:
        key = "%s[%s]" % (site, kind)
        if key not in self.ledger.sites:
            self.ledger.sites[key] = SiteStats(kind=kind)
        return self.ledger.sites[key]
