"""LRU cache of kernel plans, keyed by (problem shape, architecture).

Planning a shape is the expensive part of serving: it runs the
design-space explorer (:func:`repro.core.dse.best_config`) for the
paper's kernels and prices every candidate backend through the traced
cost + timing models.  Real workloads repeat a handful of layer shapes
millions of times, so the cache pays that cost once per shape and the
hit/miss/eviction counters feed the engine's stats surface.

The counters are registry-backed (``plan_cache_hits_total`` /
``plan_cache_misses_total`` / ``plan_cache_evictions_total`` plus a
``plan_cache_entries`` gauge): by default each cache owns a private
:class:`~repro.obs.metrics.Registry`, and the serving engine passes its
own so one scrape covers the whole stack.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import Registry

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU mapping of plan keys to planned backends."""

    def __init__(self, capacity: int = 128,
                 registry: Optional[Registry] = None):
        if capacity < 1:
            raise ReproError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self.registry = registry if registry is not None else Registry()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._hits = self.registry.counter(
            "plan_cache_hits_total", "Plan-cache lookups served from cache")
        self._misses = self.registry.counter(
            "plan_cache_misses_total", "Plan-cache lookups that missed")
        self._evictions = self.registry.counter(
            "plan_cache_evictions_total", "LRU evictions from the plan cache")
        self._entries_gauge = self.registry.gauge(
            "plan_cache_entries", "Plans currently cached")
        self._hit_rate_gauge = self.registry.gauge(
            "plan_cache_hit_rate",
            "Hits over lookups since the cache was created")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        # Peek without touching recency or the counters.
        return key in self._entries

    # Counter-backed views keep the pre-registry attribute contract.
    @property
    def hits(self) -> int:
        return int(round(self._hits.total()))

    @property
    def misses(self) -> int:
        return int(round(self._misses.total()))

    @property
    def evictions(self) -> int:
        return int(round(self._evictions.total()))

    def lookup(self, key: Tuple) -> Optional[object]:
        """Return the cached plan (refreshing recency) or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            self._hit_rate_gauge.set(self.hit_rate)
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        self._hit_rate_gauge.set(self.hit_rate)
        return entry

    def put(self, key: Tuple, plan: object) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._entries_gauge.set(len(self._entries))

    def get_or_build(self, key: Tuple, build: Callable[[], object]) -> object:
        """The memoization entry point the dispatcher uses."""
        plan = self.lookup(key)
        if plan is None:
            plan = build()
            self.put(key, plan)
        return plan

    def clear(self) -> None:
        self._entries.clear()
        self._entries_gauge.set(0)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
