"""Request/response records for the serving engine.

A :class:`ConvRequest` is one convolution to serve: the problem
description, the input arrays, and a *modeled* arrival time (the serving
engine keeps a virtual clock in modeled seconds, the same unit every
:class:`~repro.gpu.timing.TimingBreakdown` reports).  A
:class:`ConvResponse` carries the result plus the serving metadata the
stats surface aggregates: which backend ran it, in which batch, and the
modeled cost attributed to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ReproError, ShapeError
from repro.gpu.arch import GPUArchitecture

__all__ = [
    "PRIORITY_CLASSES",
    "ConvRequest",
    "ConvResponse",
    "plan_key",
    "request_from_arrays",
]


def plan_key(problem: ConvProblem, arch: GPUArchitecture) -> Tuple:
    """Cache/batching key: the full problem shape plus the architecture.

    ``ConvProblem`` is a frozen dataclass, so the problem itself is
    hashable; the architecture contributes by name (presets are unique).
    """
    return (problem, arch.name)


#: Priority classes a request may carry, most to least important.  The
#: single-engine path ignores them; the fleet's admission controller
#: (see :mod:`repro.fleet.admission`) orders backpressure by class.
PRIORITY_CLASSES = ("critical", "standard", "batch")


@dataclass(eq=False)
class ConvRequest:
    """One convolution to serve.

    ``seed`` records the ``ConvProblem.random_instance`` seed the arrays
    were generated from, when applicable — it is what trace files
    persist instead of the raw arrays.

    ``priority`` and ``deadline_s`` are serving-QoS annotations: the
    priority class (one of :data:`PRIORITY_CLASSES`) and an *absolute*
    virtual-time completion deadline.  A single :class:`ServeEngine`
    ignores both; the fleet layer sheds expired requests at admission
    and counts deadline misses at completion.
    """

    req_id: int
    problem: ConvProblem
    image: np.ndarray
    filters: np.ndarray
    arrival_s: float = 0.0
    seed: Optional[int] = None
    priority: str = "standard"
    deadline_s: Optional[float] = None

    def __post_init__(self):
        self.image = self.problem.check_image(self.image)
        self.filters = self.problem.check_filters(self.filters)
        if self.priority not in PRIORITY_CLASSES:
            raise ReproError(
                "unknown priority %r; priority classes: %s"
                % (self.priority, ", ".join(PRIORITY_CLASSES)))


@dataclass(eq=False)
class ConvResponse:
    """The served result plus batching/dispatch metadata."""

    req_id: int
    output: np.ndarray
    backend: str                 # backend that served it ("naive" on fallback)
    batch_id: int
    batch_size: int
    modeled_seconds: float       # this request's share of the batch cost
    completed_s: float           # virtual-clock completion time
    latency_s: float             # completed_s - arrival_s
    fallback: bool = False       # True when the planned backend raised
    extras: dict = field(default_factory=dict)


def request_from_arrays(
    req_id: int,
    image: np.ndarray,
    filters: np.ndarray,
    padding: Padding = Padding.VALID,
    arrival_s: float = 0.0,
    seed: Optional[int] = None,
) -> ConvRequest:
    """Build a request by inferring the :class:`ConvProblem` from arrays."""
    img = np.asarray(image, dtype=np.float32)
    if img.ndim == 2:
        img = img[np.newaxis]
    flt = np.asarray(filters, dtype=np.float32)
    if flt.ndim == 2:
        flt = flt[np.newaxis, np.newaxis]
    elif flt.ndim == 3:
        flt = flt[:, np.newaxis]
    if img.ndim != 3 or flt.ndim != 4:
        raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
    problem = ConvProblem(
        height=img.shape[1],
        width=img.shape[2],
        channels=img.shape[0],
        filters=flt.shape[0],
        kernel_size=flt.shape[2],
        padding=padding,
    )
    return ConvRequest(
        req_id=req_id, problem=problem, image=img, filters=flt,
        arrival_s=arrival_s, seed=seed,
    )
