"""The serving engine: request queue, dynamic batching, dispatch, stats.

:class:`ServeEngine` is deterministic and event-driven: it keeps a
*virtual clock* in modeled seconds (the unit every timing breakdown
reports), so a whole traffic trace — arrivals, batching deadlines,
backend execution — plays out reproducibly with no wall-clock
dependence.  Three usage styles:

* **trace mode** — ``serve_trace(requests)`` replays a list of
  requests with modeled arrival times and returns one response per
  request (the CLI and benchmarks use this);
* **online mode** — ``submit()`` / ``poll(now)`` / ``flush()`` for
  incremental virtual-time use;
* **async mode** — :class:`AsyncServeEngine` wraps an engine behind a
  real ``asyncio`` interface: ``await submit(...)`` coalesces
  concurrent same-shape submissions within a wall-clock window into one
  batched dispatch.

Batching amortizes the per-launch overhead of the modeled device: a
batch of B same-shape requests costs ``launch + B * busy`` modeled
seconds versus ``B * (launch + busy)`` unbatched, so batched throughput
in requests per modeled second is strictly higher whenever any batch
holds more than one request.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.conv.tensors import Padding
from repro.errors import ReproError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.obs.exporters import write_chrome_trace
from repro.obs.metrics import Registry
from repro.obs.tracing import Tracer
from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.dispatch import Dispatcher
from repro.serve.plan_cache import PlanCache
from repro.serve.request import ConvRequest, ConvResponse, plan_key, request_from_arrays
from repro.serve.stats import ServeStats, format_stats

__all__ = ["ServeEngine", "AsyncServeEngine"]


class ServeEngine:
    """Dynamic-batching convolution server on the simulated substrate."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        deadline_s: float = 1e-3,
        max_batch: int = 32,
        cache_capacity: int = 128,
        executor: str = "reference",
        backends: Optional[Sequence[str]] = None,
        dispatcher: Optional[Dispatcher] = None,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        jobs=None,
    ):
        if executor not in ("reference", "kernel"):
            raise ReproError("executor must be 'reference' or 'kernel'")
        self.arch = arch
        self.executor = executor
        # One registry spans the whole serving stack (stats, batcher,
        # plan cache, dispatcher).  The default is engine-private so
        # concurrent engines stay isolated; pass
        # ``repro.obs.get_registry()`` to publish process-wide.
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.batcher = DynamicBatcher(
            deadline_s=deadline_s, max_batch=max_batch,
            registry=self.registry)
        # `jobs` is the batch-execution fan-out degree (see
        # repro.parallel); it only applies to the dispatcher the engine
        # builds itself — an injected dispatcher keeps its own degree.
        self.dispatcher = dispatcher or Dispatcher(
            arch, cache=PlanCache(cache_capacity, registry=self.registry),
            backends=backends, registry=self.registry, tracer=tracer,
            jobs=jobs,
        )
        self._stats = ServeStats(clock_hz=arch.clock_hz,
                                 registry=self.registry)
        self._clock = 0.0            # modeled device-timeline position
        self._ids = itertools.count()
        self._batch_ids = itertools.count()

    # ------------------------------------------------------------------
    @property
    def clock_s(self) -> float:
        """Current position of the modeled device timeline."""
        return self._clock

    @property
    def plan_cache(self) -> PlanCache:
        return self.dispatcher.cache

    def make_request(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        arrival_s: float = 0.0,
        seed: Optional[int] = None,
    ) -> ConvRequest:
        """Build a request with an engine-assigned id."""
        return request_from_arrays(
            next(self._ids), image, filters, padding,
            arrival_s=arrival_s, seed=seed,
        )

    # ------------------------------------------------------------------
    # Online mode
    # ------------------------------------------------------------------
    def submit(self, request: ConvRequest) -> List[ConvResponse]:
        """Enqueue one request at its arrival time.

        Returns the responses of any batch the arrival completed (the
        request's own group reaching ``max_batch``, or older groups whose
        deadline passed); usually empty until ``poll``/``flush``.
        """
        responses = self.poll(request.arrival_s)
        # Admission-time routing: plan (or recall) the backend for this
        # shape now, so the request carries its predicted unit cost and
        # repeated shapes hit the cache once per request, not per batch.
        self.dispatcher.plan(request.problem)
        full = self.batcher.add(
            plan_key(request.problem, self.arch), request, request.arrival_s
        )
        if full is not None:
            responses.extend(self._execute_batch(full, request.arrival_s))
        return responses

    def poll(self, now: float) -> List[ConvResponse]:
        """Advance virtual time, flushing every deadline-expired group."""
        responses = []
        for batch in self.batcher.due(now):
            flush_s = batch.opened_s + self.batcher.deadline_s
            responses.extend(self._execute_batch(batch, flush_s))
        return responses

    def flush(self) -> List[ConvResponse]:
        """Force-serve everything still queued."""
        responses = []
        for batch in self.batcher.drain():
            flush_s = max(r.arrival_s for r in batch.requests)
            responses.extend(self._execute_batch(batch, flush_s))
        return responses

    def execute_now(self, requests: Sequence[ConvRequest]) -> List[ConvResponse]:
        """Serve a same-shape group immediately as one batch (no queue)."""
        if not requests:
            return []
        keys = {plan_key(r.problem, self.arch) for r in requests}
        if len(keys) != 1:
            raise ReproError("execute_now needs same-shape requests")
        batch = Batch(key=keys.pop(), requests=list(requests),
                      opened_s=min(r.arrival_s for r in requests),
                      reason="full")
        return self._execute_batch(
            batch, max(r.arrival_s for r in requests)
        )

    # ------------------------------------------------------------------
    # Trace mode
    # ------------------------------------------------------------------
    def serve_trace(self, requests: Sequence[ConvRequest]) -> List[ConvResponse]:
        """Replay a trace; responses are returned in request order."""
        responses: Dict[int, ConvResponse] = {}
        for request in sorted(requests, key=lambda r: r.arrival_s):
            for resp in self.submit(request):
                responses[resp.req_id] = resp
        for resp in self.flush():
            responses[resp.req_id] = resp
        return [responses[r.req_id] for r in requests]

    # ------------------------------------------------------------------
    def _execute_batch(self, batch: Batch, flush_s: float) -> List[ConvResponse]:
        plan = self.dispatcher.plan(batch.problem)
        outputs, fell, seconds = self.dispatcher.execute(
            plan, batch.requests, executor=self.executor
        )
        start = max(self._clock, flush_s)
        end = start + seconds
        self._clock = end
        batch_id = next(self._batch_ids)
        n = len(batch.requests)
        if self.tracer is not None:
            # Virtual-clock spans: the batch's whole queue-to-completion
            # window, and the kernel's device occupancy inside it.
            self.tracer.add_span(
                "batch#%d %s n=%d" % (batch_id, plan.backend, n),
                category="batch", start_s=batch.opened_s,
                duration_s=end - batch.opened_s,
                args={"reason": batch.reason, "backend": plan.backend,
                      "batch_size": n, "fallbacks": sum(fell)},
            )
            kernel_name = getattr(plan.kernel, "name", plan.backend)
            self.tracer.add_span(
                "%s" % kernel_name, category="kernel",
                start_s=start, duration_s=seconds,
                args={"backend": plan.backend, "batch_id": batch_id,
                      "modeled_seconds": seconds},
            )
        self._stats.record_batch(
            backend=plan.backend, batch_size=n, seconds=seconds,
            reason=batch.reason, fallbacks=sum(fell),
        )
        responses = []
        for request, output, fb in zip(batch.requests, outputs, fell):
            latency = end - request.arrival_s
            self._stats.record_latency(latency)
            responses.append(ConvResponse(
                req_id=request.req_id,
                output=output,
                backend="naive" if fb else plan.backend,
                batch_id=batch_id,
                batch_size=n,
                modeled_seconds=seconds / n,
                completed_s=end,
                latency_s=latency,
                fallback=fb,
            ))
        return responses

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serializable stats snapshot (see :mod:`repro.serve.stats`)."""
        return self._stats.snapshot(cache_stats=self.plan_cache.stats())

    def format_stats(self) -> str:
        return format_stats(self.stats())

    def export_trace(self, path: str) -> dict:
        """Write the engine's span log as Chrome trace-event JSON.

        Requires the engine to have been constructed with a tracer
        (``tracer=repro.obs.get_tracer()`` or a private one).
        """
        if self.tracer is None:
            raise ReproError(
                "engine has no tracer; construct with tracer=... to trace")
        return write_chrome_trace(path, self.tracer, registry=self.registry)


class AsyncServeEngine:
    """``asyncio`` facade: awaitable submissions, wall-clock batching.

    Concurrent ``await submit(...)`` calls for the same problem shape
    that land within ``window_s`` real seconds (or that fill
    ``max_batch``) are dispatched as one batch through the wrapped
    :class:`ServeEngine`; every submitter gets its own response.
    """

    def __init__(self, engine: Optional[ServeEngine] = None,
                 window_s: float = 0.005):
        self.engine = engine or ServeEngine()
        self.window_s = window_s
        self._groups: Dict[tuple, list] = {}
        self._timers: Dict[tuple, asyncio.Task] = {}

    async def submit(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
    ) -> ConvResponse:
        loop = asyncio.get_running_loop()
        request = self.engine.make_request(
            image, filters, padding, arrival_s=self.engine.clock_s
        )
        future = loop.create_future()
        key = plan_key(request.problem, self.engine.arch)
        group = self._groups.setdefault(key, [])
        group.append((request, future))
        if len(group) >= self.engine.batcher.max_batch:
            self._flush(key)
        elif len(group) == 1:
            self._timers[key] = asyncio.ensure_future(self._flush_later(key))
        return await future

    async def _flush_later(self, key: tuple) -> None:
        await asyncio.sleep(self.window_s)
        # Drop our own timer entry first so _flush does not cancel the
        # currently-running task.
        self._timers.pop(key, None)
        self._flush(key)

    def _flush(self, key: tuple) -> None:
        group = self._groups.pop(key, [])
        timer = self._timers.pop(key, None)
        if timer is not None and not timer.done():
            timer.cancel()
        if not group:
            return
        requests = [request for request, _ in group]
        responses = self.engine.execute_now(requests)
        for (_, future), response in zip(group, responses):
            if not future.done():
                future.set_result(response)

    async def drain(self) -> None:
        """Flush every pending group (e.g. at shutdown)."""
        for key in list(self._groups):
            self._flush(key)
        await asyncio.sleep(0)

    def stats(self) -> dict:
        return self.engine.stats()
