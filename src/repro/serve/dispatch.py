"""Cost-model-driven backend dispatch.

For each distinct problem shape the dispatcher builds a
:class:`KernelPlan`: it asks the kernel-backend registry for the
admissible portfolio (``registry.available(problem, arch)``), lets each
backend autotune itself via ``configure``, prices every candidate with
the traced cost + timing models, and routes to the cheapest.  Plans are
memoized in the :class:`~repro.serve.plan_cache.PlanCache`, so the
design-space exploration is paid once per shape.

The dispatcher holds no per-backend knowledge: any backend registered
with :func:`repro.kernels.default_registry` — including FFT and
Winograd — is servable by name.

Degradation is graceful at both stages: a backend whose planning or
prediction raises is skipped (the naive-direct backend always plans), and
a backend whose *functional* execution raises falls back to the naive
backend for that request, which is re-priced accordingly.

Transient build failures get a third, distinct treatment: a plan build
that raises :class:`~repro.errors.TransientBackendError` — a modeled
flaky toolchain/driver hiccup, or an injected ``build-fail`` fault from
an installed chaos plan — is retried up to ``plan_retries`` times
(``dispatch_plan_retries_total`` counts the attempts) before the error
surfaces.  The backoff between attempts is virtual, like every other
latency in the model — retries are counted, not slept.
"""

from __future__ import annotations

import functools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.errors import ReproError, TransientBackendError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.kernels import BackendRegistry, default_registry
from repro.obs.metrics import Registry
from repro.obs.tracing import Tracer
from repro.parallel import parallel_map, resolve_jobs
from repro.serve.plan_cache import PlanCache
from repro.serve.request import ConvRequest, plan_key

__all__ = ["KernelPlan", "Dispatcher", "DEFAULT_BACKENDS"]

#: Backend routing order (ties in predicted time break toward the first):
#: every name in the default kernel-backend registry, registration order.
DEFAULT_BACKENDS = default_registry().names()


@dataclass
class KernelPlan:
    """The memoized serving decision for one problem shape."""

    problem: ConvProblem
    backend: str
    kernel: object
    breakdown: TimingBreakdown
    config: object = None        # winning DSE config (paper kernels only)
    source: str = "cost-model"   # "cost-model" | "degraded"
    candidates: dict = field(default_factory=dict)  # backend -> predicted s

    @property
    def launch_s(self) -> float:
        """Per-launch overhead — amortized across a batch."""
        return self.breakdown.t_launch

    @property
    def busy_s(self) -> float:
        """Modeled per-request execution time excluding launch overhead."""
        return self.breakdown.total - self.breakdown.t_launch

    def batch_seconds(self, batch_size: int) -> float:
        """Modeled cost of serving ``batch_size`` requests as one launch."""
        return self.launch_s + self.busy_s * batch_size


def _serve_request(
    executor: str, kernel, naive, request: ConvRequest
) -> Tuple[np.ndarray, bool]:
    """Serve one request; module-level so batch fan-out can pickle it.

    Returns (output, fell_back).  The kernel path degrades to the naive
    backend when the planned kernel's functional execution raises.
    """
    problem = request.problem
    if executor == "reference":
        return conv2d_reference(
            request.image, request.filters, problem.padding, problem=problem
        ), False
    try:
        return kernel.run(
            request.image, request.filters, problem.padding, problem=problem
        ), False
    except Exception:
        return naive.run(
            request.image, request.filters, problem.padding, problem=problem
        ), True


class Dispatcher:
    """Route requests to the cheapest predicted backend, with fallback."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        cache: Optional[PlanCache] = None,
        model: Optional[TimingModel] = None,
        backends: Optional[Sequence[str]] = None,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        jobs: Optional[Union[int, str]] = None,
        kernels: Optional[BackendRegistry] = None,
        chaos=None,
        plan_retries: int = 2,
    ):
        self.kernels = kernels if kernels is not None else default_registry()
        if backends is None:
            backends = self.kernels.names()
        unknown = set(backends) - set(self.kernels.names())
        if unknown:
            raise ReproError(
                "unknown backends %s; registered backends: %s"
                % (sorted(unknown), ", ".join(sorted(self.kernels.names()))))
        self.arch = arch
        # Worker degree for per-request batch execution; None honors
        # the REPRO_JOBS environment variable at execute time.
        self.jobs = jobs
        self.cache = cache if cache is not None else PlanCache(
            registry=registry)
        self.model = model or TimingModel(arch)
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self._planned = self.registry.counter(
            "dispatch_plans_built_total",
            "Plans built from scratch, by winning backend",
            labelnames=("backend",))
        self._executions = self.registry.counter(
            "dispatch_executions_total",
            "Batch executions, by planned backend",
            labelnames=("backend",))
        self._exec_fallbacks = self.registry.counter(
            "dispatch_fallbacks_total",
            "Requests whose kernel execution degraded to naive")
        self._plan_retries = self.registry.counter(
            "dispatch_plan_retries_total",
            "Plan builds retried after a transient backend failure")
        if plan_retries < 0:
            raise ReproError("plan_retries must be >= 0, got %d"
                             % plan_retries)
        self.plan_retries = plan_retries
        self.chaos = chaos       # optional FaultInjector (build-fail hook)
        # The naive backend is the degradation target; it is always on
        # (the registry's ``available`` re-appends it when filtered out).
        self.backends = tuple(backends)
        if self.kernels.fallback not in self.backends:
            self.backends += (self.kernels.fallback,)
        self._naive = self.kernels.get(self.kernels.fallback).build(None, arch)
        self._fallback_plans: Dict[ConvProblem, KernelPlan] = {}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, problem: ConvProblem) -> KernelPlan:
        """The (cached) serving plan for a problem shape."""
        key = plan_key(problem, self.arch)
        if self.tracer is None:
            return self.cache.get_or_build(
                key, lambda: self.build_plan_retrying(problem))
        with self.tracer.span(
            "plan %dx%dx%d k%d" % (problem.height, problem.width,
                                   problem.channels, problem.kernel_size),
            category="plan-cache",
        ) as args:
            cached = key in self.cache
            plan = self.cache.get_or_build(
                key, lambda: self.build_plan_retrying(problem))
            args["hit"] = cached
            args["backend"] = plan.backend
        return plan

    def _candidates(self, problem: ConvProblem):
        """Yield (backend name, kernel, winning config) triples.

        The portfolio comes from the kernel-backend registry: each
        enabled backend passes its own ``supports`` predicate, tunes
        itself through ``configure``, and builds its kernel — no
        per-backend branches live here.
        """
        for backend in self.kernels.available(
                problem, self.arch, names=self.backends):
            if backend.name == self.kernels.fallback:
                yield backend.name, self._naive, None
                continue
            try:
                config = backend.configure(problem, self.arch)
                kernel = backend.build(problem, self.arch, config)
            except ReproError:
                continue
            yield backend.name, kernel, config

    def build_plan_retrying(self, problem: ConvProblem) -> KernelPlan:
        """:meth:`build_plan` with bounded transient-failure retry.

        A :class:`~repro.errors.TransientBackendError` (real or
        injected) is retried up to ``plan_retries`` times; anything
        else — and the final transient failure — surfaces unchanged.
        """
        attempt = 0
        while True:
            try:
                return self.build_plan(problem)
            except TransientBackendError:
                if attempt >= self.plan_retries:
                    raise
                attempt += 1
                self._plan_retries.inc()

    def build_plan(self, problem: ConvProblem) -> KernelPlan:
        """Autotune + price every candidate; pick the cheapest predicted."""
        if self.chaos is not None:
            from repro.chaos.plan import FaultKind

            if self.chaos.take(FaultKind.BUILD_FAIL) is not None:
                raise TransientBackendError(
                    "injected transient plan-build failure for %r"
                    % (problem,))
        best = None
        candidates = {}
        for name, kernel, config in self._candidates(problem):
            try:
                breakdown = kernel.predict(problem, self.model)
            except ReproError:
                continue
            candidates[name] = breakdown.total
            if best is None or breakdown.total < best.breakdown.total:
                best = KernelPlan(
                    problem=problem, backend=name, kernel=kernel,
                    breakdown=breakdown, config=config,
                )
        if best is None:
            # Every backend failed to even plan — degrade to naive.
            best = self.fallback_plan(problem)
            best = KernelPlan(
                problem=problem, backend="naive", kernel=self._naive,
                breakdown=best.breakdown, source="degraded",
            )
        best.candidates = candidates
        self._planned.inc(backend=best.backend)
        return best

    def fallback_plan(self, problem: ConvProblem) -> KernelPlan:
        """The naive-direct plan used when another backend raises."""
        plan = self._fallback_plans.get(problem)
        if plan is None:
            plan = KernelPlan(
                problem=problem, backend="naive", kernel=self._naive,
                breakdown=self._naive.predict(problem, self.model),
            )
            self._fallback_plans[problem] = plan
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(
        self, plan: KernelPlan, request: ConvRequest, executor: str = "reference"
    ) -> Tuple[np.ndarray, bool]:
        """Serve one request; returns (output, fell_back).

        ``executor="reference"`` computes the result with the golden
        reference convolution (bit-exact responses; the planned backend
        still determines the modeled cost).  ``executor="kernel"`` runs
        the planned backend's functional algorithm; if it raises, the
        request degrades to the naive backend.
        """
        if executor not in ("reference", "kernel"):
            raise ReproError("unknown executor %r" % executor)
        return _serve_request(executor, plan.kernel, self._naive, request)

    def execute(
        self,
        plan: KernelPlan,
        requests: Sequence[ConvRequest],
        executor: str = "reference",
        jobs: Optional[Union[int, str]] = None,
    ) -> Tuple[List[np.ndarray], List[bool], float]:
        """Serve a same-shape batch under one plan.

        Returns (outputs, fallback flags, modeled batch seconds).  The
        batch is one modeled launch of the planned backend; requests that
        fell back are re-priced as a second, naive launch.

        ``jobs`` (falling back to the dispatcher's degree, then the
        ``REPRO_JOBS`` environment variable) fans the per-request
        functional execution out over worker processes; outputs, flags,
        and accounting are identical to the serial path.  Fallback
        counting stays in this process, so the dispatcher's registry
        series are complete regardless of degree.
        """
        if executor not in ("reference", "kernel"):
            raise ReproError("unknown executor %r" % executor)
        if self.tracer is not None:
            span = self.tracer.span(
                "execute[%s] n=%d" % (plan.backend, len(requests)),
                category="dispatch",
            )
        else:
            span = nullcontext({})
        with span as span_args:
            degree = resolve_jobs(jobs if jobs is not None else self.jobs)
            if degree <= 1 or len(requests) < 2:
                pairs = [self.run_one(plan, request, executor)
                         for request in requests]
            else:
                serve = functools.partial(
                    _serve_request, executor, plan.kernel, self._naive)
                pairs = parallel_map(serve, requests, jobs=degree)
            outputs = [out for out, _ in pairs]
            fell = [fb for _, fb in pairs]
            n_fallback = sum(fell)
            n_planned = len(requests) - n_fallback
            seconds = plan.batch_seconds(n_planned) if n_planned else 0.0
            if n_fallback:
                seconds += self.fallback_plan(
                    plan.problem).batch_seconds(n_fallback)
            self._executions.inc(backend=plan.backend)
            if n_fallback:
                self._exec_fallbacks.inc(n_fallback)
            span_args["fallbacks"] = n_fallback
            span_args["modeled_seconds"] = seconds
        return outputs, fell, seconds
