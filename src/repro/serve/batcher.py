"""Dynamic batching: coalesce same-shape requests under a latency deadline.

Requests for the *same* problem shape can run as one kernel launch, so
the batcher buckets arrivals by :func:`~repro.serve.request.plan_key`
and flushes a bucket when either

* it reaches ``max_batch`` requests (flushed immediately, reason
  ``"full"``), or
* the *oldest* request in it has waited ``deadline_s`` of virtual time
  (reason ``"deadline"`` — the knob that trades tail latency for
  launch-overhead amortization), or
* the engine drains at end of trace (reason ``"drain"``).

``max_batch=1`` (or ``deadline_s=0``) degenerates to the unbatched
single-request path the benchmarks compare against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import Registry
from repro.serve.request import ConvRequest

__all__ = ["Batch", "DynamicBatcher"]


@dataclass
class Batch:
    """One flushable group of same-shape requests."""

    key: Tuple
    requests: List[ConvRequest]
    opened_s: float              # arrival of the oldest member
    reason: str = "full"         # "full" | "deadline" | "drain"

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def problem(self):
        return self.requests[0].problem


@dataclass
class _Group:
    requests: List[ConvRequest] = field(default_factory=list)
    opened_s: float = 0.0


class DynamicBatcher:
    """Shape-keyed request queue with deadline-driven flushing."""

    def __init__(self, deadline_s: float = 1e-3, max_batch: int = 32,
                 registry: Optional[Registry] = None):
        if deadline_s < 0:
            raise ReproError("deadline_s must be non-negative")
        if max_batch < 1:
            raise ReproError("max_batch must be at least 1")
        self.deadline_s = deadline_s
        self.max_batch = max_batch
        self.registry = registry if registry is not None else Registry()
        self._enqueued = self.registry.counter(
            "serve_queue_enqueued_total", "Requests admitted to the batcher")
        self._depth = self.registry.gauge(
            "serve_queue_depth", "Requests currently buffered in the batcher")
        self._groups_gauge = self.registry.gauge(
            "serve_queue_groups", "Distinct shape groups currently open")
        self._groups: "OrderedDict[Tuple, _Group]" = OrderedDict()

    def _publish_depth(self) -> None:
        self._depth.set(self.pending)
        self._groups_gauge.set(len(self._groups))

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests currently buffered across all shape groups."""
        return sum(len(g.requests) for g in self._groups.values())

    def add(self, key: Tuple, request: ConvRequest,
            now: float) -> Optional[Batch]:
        """Buffer one request; return a full batch if it tipped the group."""
        group = self._groups.get(key)
        if group is None:
            group = _Group(opened_s=now)
            self._groups[key] = group
        group.requests.append(request)
        self._enqueued.inc()
        if len(group.requests) >= self.max_batch:
            del self._groups[key]
            self._publish_depth()
            return Batch(key=key, requests=group.requests,
                         opened_s=group.opened_s, reason="full")
        self._publish_depth()
        return None

    def next_deadline(self) -> Optional[float]:
        """Virtual time of the earliest pending flush, if any."""
        if not self._groups:
            return None
        return min(g.opened_s for g in self._groups.values()) + self.deadline_s

    def due(self, now: float) -> List[Batch]:
        """Pop every group whose oldest request has waited out the deadline."""
        batches = []
        for key in list(self._groups):
            group = self._groups[key]
            if now >= group.opened_s + self.deadline_s:
                del self._groups[key]
                batches.append(Batch(key=key, requests=group.requests,
                                     opened_s=group.opened_s,
                                     reason="deadline"))
        if batches:
            self._publish_depth()
        batches.sort(key=lambda b: b.opened_s)
        return batches

    def drain(self) -> List[Batch]:
        """Pop everything (end of trace / explicit flush)."""
        batches = [
            Batch(key=key, requests=group.requests,
                  opened_s=group.opened_s, reason="drain")
            for key, group in self._groups.items()
        ]
        self._groups.clear()
        self._publish_depth()
        batches.sort(key=lambda b: b.opened_s)
        return batches
