"""Synthetic traffic traces and their JSON persistence.

A trace is a list of :class:`~repro.serve.request.ConvRequest` with
modeled arrival times.  The synthetic generator draws shapes from a
mixed CNN-layer palette (repeating shapes, the case a plan cache and a
batcher exist for) with exponential inter-arrival times; trace files
persist the problem parameters and the data seed — not the raw arrays —
so a multi-megabyte workload is a few kilobytes of JSON and reloads
reproducibly.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.errors import ReproError
from repro.serve.request import PRIORITY_CLASSES, ConvRequest

__all__ = [
    "DEFAULT_SERVING_SHAPES",
    "GENERALIZED_SERVING_SHAPES",
    "SHAPE_FAMILIES",
    "synthetic_trace",
    "save_trace",
    "load_trace",
]

#: Mixed serving workload: single-channel image-processing shapes (the
#: special kernel's case) next to small multi-channel CNN layers.
DEFAULT_SERVING_SHAPES = (
    ConvProblem.square(64, 3, channels=1, filters=8),
    ConvProblem.square(48, 3, channels=1, filters=4),
    ConvProblem.square(32, 3, channels=8, filters=16),
    ConvProblem.square(32, 5, channels=4, filters=8),
    ConvProblem.square(64, 3, channels=4, filters=8),
    ConvProblem.square(24, 3, channels=16, filters=16),
)

#: Generalized-axis serving workload: strided downsampling backbones,
#: dilated context aggregation, and depthwise separable stages — the
#: mobile-CNN layer mix the generalized problem model exists for.
GENERALIZED_SERVING_SHAPES = (
    ConvProblem.square(64, 3, channels=8, filters=16, stride=2),
    ConvProblem.square(33, 3, channels=4, filters=8, dilation=2),
    ConvProblem.square(32, 3, channels=8, filters=8, groups=8),
    ConvProblem.square(48, 3, channels=16, filters=16, groups=16, stride=2),
    ConvProblem.square(64, 3, channels=1, filters=4, stride=2),
)

#: Named shape palettes ``synthetic_trace(shape_family=...)`` selects
#: from.  ``"classic"`` is the pre-generalization palette (and the
#: byte-identical default); ``"mixed"`` interleaves both.
SHAPE_FAMILIES = {
    "classic": DEFAULT_SERVING_SHAPES,
    "generalized": GENERALIZED_SERVING_SHAPES,
    "mixed": DEFAULT_SERVING_SHAPES + GENERALIZED_SERVING_SHAPES,
}


def synthetic_trace(
    n_requests: int,
    shapes: Sequence[ConvProblem] = DEFAULT_SERVING_SHAPES,
    seed: int = 0,
    rate_hz: Optional[float] = 50_000.0,
    priority_mix: Optional[dict] = None,
    deadline_budget_s: Optional[float] = None,
    shape_family: Optional[str] = None,
) -> List[ConvRequest]:
    """Generate a reproducible mixed-shape request trace.

    ``rate_hz`` is the mean arrival rate in requests per *modeled*
    second (inter-arrival times are exponential); ``None`` makes every
    request arrive at t=0 (a closed-loop burst).

    ``priority_mix`` maps priority classes (see
    :data:`~repro.serve.request.PRIORITY_CLASSES`) to relative weights,
    e.g. ``{"standard": 8, "batch": 2}``; ``deadline_budget_s`` gives
    every request an absolute completion deadline of ``arrival +
    budget``.  Both default to off, which leaves the request stream —
    including the shape/arrival RNG draws — byte-identical to traces
    generated before these knobs existed.

    ``shape_family`` selects a named palette from
    :data:`SHAPE_FAMILIES` instead of ``shapes``: ``"generalized"``
    draws strided / dilated / depthwise layers, ``"mixed"`` interleaves
    them with the classic palette.  ``None`` (the default) keeps the
    ``shapes`` argument — and every pre-existing trace — untouched.
    """
    import numpy as np

    if n_requests < 1:
        raise ReproError("a trace needs at least one request")
    if shape_family is not None:
        if shape_family not in SHAPE_FAMILIES:
            raise ReproError(
                "unknown shape family %r; shape families: %s"
                % (shape_family, ", ".join(sorted(SHAPE_FAMILIES))))
        shapes = SHAPE_FAMILIES[shape_family]
    if not shapes:
        raise ReproError("a trace needs at least one shape")
    if deadline_budget_s is not None and deadline_budget_s < 0:
        raise ReproError("deadline_budget_s must be non-negative")
    classes, weights = (), None
    if priority_mix:
        unknown = set(priority_mix) - set(PRIORITY_CLASSES)
        if unknown:
            raise ReproError(
                "unknown priority classes %s; priority classes: %s"
                % (sorted(unknown), ", ".join(PRIORITY_CLASSES)))
        classes = tuple(c for c in PRIORITY_CLASSES if c in priority_mix)
        total = float(sum(priority_mix[c] for c in classes))
        if total <= 0:
            raise ReproError("priority_mix weights must sum to > 0")
        weights = [priority_mix[c] / total for c in classes]
    rng = np.random.default_rng(seed)
    # Priorities come from an independent stream so enabling the mix
    # never perturbs the shape/arrival draws of an existing trace.
    priority_rng = np.random.default_rng(seed + 1) if classes else None
    clock = 0.0
    requests = []
    for i in range(n_requests):
        problem = shapes[int(rng.integers(len(shapes)))]
        if rate_hz is not None:
            clock += float(rng.exponential(1.0 / rate_hz))
        data_seed = seed + 1000 * i
        image, filters = problem.random_instance(seed=data_seed)
        priority = "standard"
        if priority_rng is not None:
            priority = classes[int(priority_rng.choice(len(classes),
                                                       p=weights))]
        deadline = None
        if deadline_budget_s is not None:
            deadline = clock + deadline_budget_s
        requests.append(ConvRequest(
            req_id=i, problem=problem, image=image, filters=filters,
            arrival_s=clock, seed=data_seed,
            priority=priority, deadline_s=deadline,
        ))
    return requests


def save_trace(path: str, requests: Sequence[ConvRequest]) -> None:
    """Persist a trace as JSON (problem parameters + data seeds)."""
    records = []
    for request in requests:
        if request.seed is None:
            raise ReproError(
                "request %d has no data seed; only seeded traces persist"
                % request.req_id
            )
        p = request.problem
        record = {
            "req_id": request.req_id,
            "height": p.height,
            "width": p.width,
            "channels": p.channels,
            "filters": p.filters,
            "kernel_size": p.kernel_size,
            "padding": p.padding.value,
            "arrival_s": request.arrival_s,
            "seed": request.seed,
        }
        # Generalized axes and QoS annotations persist only when
        # non-default, so pre-existing trace files and their byte
        # layout are unchanged.
        if p.stride != 1:
            record["stride"] = p.stride
        if p.dilation != 1:
            record["dilation"] = p.dilation
        if p.groups != 1:
            record["groups"] = p.groups
        if p.layout is not Layout.NCHW:
            record["layout"] = p.layout.value
        if request.priority != "standard":
            record["priority"] = request.priority
        if request.deadline_s is not None:
            record["deadline_s"] = request.deadline_s
        records.append(record)
    with open(path, "w") as fh:
        json.dump({"version": 1, "requests": records}, fh, indent=1)


def load_trace(path: str) -> List[ConvRequest]:
    """Inverse of :func:`save_trace`: rebuild requests (and their data)."""
    with open(path) as fh:
        data = json.load(fh)
    requests = []
    try:
        for rec in data["requests"]:
            problem = ConvProblem(
                height=rec["height"],
                width=rec["width"],
                channels=rec["channels"],
                filters=rec["filters"],
                kernel_size=rec["kernel_size"],
                padding=Padding(rec.get("padding", "valid")),
                stride=rec.get("stride", 1),
                dilation=rec.get("dilation", 1),
                groups=rec.get("groups", 1),
                layout=Layout(rec.get("layout", "nchw")),
            )
            image, filters = problem.random_instance(seed=rec["seed"])
            requests.append(ConvRequest(
                req_id=rec["req_id"], problem=problem, image=image,
                filters=filters, arrival_s=rec.get("arrival_s", 0.0),
                seed=rec["seed"],
                priority=rec.get("priority", "standard"),
                deadline_s=rec.get("deadline_s"),
            ))
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(
            "%s is not a serving trace (%s: %s)"
            % (path, type(exc).__name__, exc)) from exc
    return requests
