"""The serving engine's stats surface, backed by the telemetry registry.

Aggregates everything an operator would watch on a dashboard: request
and batch counts per backend, the batch-size histogram, latency
aggregates with p50/p95/p99 percentiles, the plan-cache hit rate, and a
histogram of modeled batch cost in GPU cycles (log-scaled buckets).
``snapshot()`` returns a plain JSON-serializable dict; ``format_stats``
renders it for humans.

Since the unified telemetry layer (:mod:`repro.obs`) landed, every
series lives as a named metric in a :class:`~repro.obs.metrics.Registry`
rather than in ad-hoc attributes.  The public contract is unchanged —
``snapshot()`` produces the same keys as before (plus the latency
percentiles) — but the same numbers are now also reachable through
``repro obs`` / the Prometheus and Chrome-trace exporters whenever the
engine shares the process-wide registry.  Metric names are catalogued
in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.obs.metrics import Registry

__all__ = ["ServeStats", "format_stats"]

#: Prometheus bucket bounds for batch sizes (powers of two up to the
#: engine's typical max_batch range).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: Log-spaced bounds for modeled batch cost in device cycles.
_CYCLES_BUCKETS = tuple(10.0 ** e for e in range(0, 10))


class ServeStats:
    """Registry-backed accumulator the engine feeds as batches complete.

    By default each instance owns a private registry so concurrent
    engines do not mix series; pass the process-wide registry
    (``repro.obs.get_registry()``) to publish globally instead.
    """

    def __init__(self, clock_hz: float, registry: Optional[Registry] = None):
        self.clock_hz = clock_hz
        self.registry = registry if registry is not None else Registry()
        reg = self.registry
        self._requests = reg.counter(
            "serve_requests_total", "Requests served, by executing backend",
            labelnames=("backend",))
        self._batches = reg.counter(
            "serve_batches_total", "Batches dispatched, by planned backend",
            labelnames=("backend",))
        self._fallbacks = reg.counter(
            "serve_fallbacks_total",
            "Requests that degraded to the naive backend")
        self._flushes = reg.counter(
            "serve_batch_flushes_total", "Batch flushes, by trigger",
            labelnames=("reason",))
        self._busy = reg.counter(
            "serve_busy_seconds_total", "Modeled device-busy seconds")
        self._batch_size = reg.histogram(
            "serve_batch_size", "Requests coalesced per dispatched batch",
            buckets=_BATCH_SIZE_BUCKETS)
        self._latency = reg.histogram(
            "serve_latency_seconds",
            "Per-request modeled latency (arrival to batch completion)")
        self._batch_cycles = reg.histogram(
            "serve_batch_cycles", "Modeled device cycles per batch",
            buckets=_CYCLES_BUCKETS)

    # ------------------------------------------------------------------
    def record_batch(
        self,
        backend: str,
        batch_size: int,
        seconds: float,
        reason: str,
        fallbacks: int = 0,
    ) -> None:
        self._batches.inc(backend=backend)
        self._requests.inc(batch_size - fallbacks, backend=backend)
        if fallbacks:
            self._requests.inc(fallbacks, backend="naive")
            self._fallbacks.inc(fallbacks)
        self._busy.inc(seconds)
        self._flushes.inc(reason=reason)
        self._batch_size.observe(batch_size)
        self._batch_cycles.observe(seconds * self.clock_hz)

    def record_latency(self, latency_s: float) -> None:
        self._latency.observe(latency_s)

    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        return int(round(self._requests.total()))

    @property
    def batches(self) -> int:
        return int(round(self._batches.total()))

    @property
    def fallbacks(self) -> int:
        return int(round(self._fallbacks.total()))

    @property
    def busy_s(self) -> float:
        return self._busy.total()

    @property
    def mean_batch_size(self) -> float:
        return self.served / self.batches if self.batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Served requests per modeled second of backend execution."""
        served = self.served
        return served / self.busy_s if self.busy_s > 0 else 0.0

    # ------------------------------------------------------------------
    def _cycles_hist(self) -> dict:
        """Log10-bucketed batch-cost histogram (the pre-registry shape).

        Non-positive cycle counts (a zero-cost all-fallback batch, or a
        defensive guard against a miscalibrated clock) land in a
        dedicated ``<=0`` bucket instead of feeding ``log10``.
        """
        buckets: dict = {}
        for cycles, count in sorted(self._batch_cycles.value_counts().items()):
            if cycles <= 0:
                key = "<=0"
            else:
                key = "1e%d" % int(math.floor(math.log10(cycles)))
            buckets[key] = buckets.get(key, 0) + count
        return {k: buckets[k] for k in sorted(buckets)}

    def snapshot(self, cache_stats: Optional[dict] = None) -> dict:
        served = self.served
        snap = {
            "served": served,
            "batches": self.batches,
            "fallbacks": self.fallbacks,
            "mean_batch_size": self.mean_batch_size,
            "modeled_busy_seconds": self.busy_s,
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": self._latency.mean(),
            "max_latency_s": self._latency.max(),
            "latency_p50_s": self._latency.percentile(50),
            "latency_p95_s": self._latency.percentile(95),
            "latency_p99_s": self._latency.percentile(99),
            # True when the latency reservoir truncated: the quantiles
            # above are then estimates from a decimated sample, not
            # exact order statistics over every request.
            "latency_estimated": self._latency.is_estimated(),
            "requests_per_backend": {
                labels["backend"]: int(round(value))
                for labels, value in self._requests.series()
            },
            "batches_per_backend": {
                labels["backend"]: int(round(value))
                for labels, value in self._batches.series()
            },
            "batch_size_hist": {
                str(int(size)): count for size, count in
                sorted(self._batch_size.value_counts().items())
            },
            "flush_reasons": {
                labels["reason"]: int(round(value))
                for labels, value in self._flushes.series()
            },
            "modeled_cycles_hist": self._cycles_hist(),
        }
        if cache_stats is not None:
            snap["plan_cache"] = dict(cache_stats)
        return snap


def format_stats(snap: dict) -> str:
    """Human-readable rendering of a :meth:`ServeStats.snapshot` dict."""
    lines = []
    lines.append("served %d requests in %d batches (mean batch %.2f)"
                 % (snap["served"], snap["batches"], snap["mean_batch_size"]))
    lines.append("modeled busy time     : %.6f s" % snap["modeled_busy_seconds"])
    lines.append("throughput            : %.0f req/modeled-s"
                 % snap["throughput_rps"])
    lines.append("latency mean / max    : %.2e / %.2e s"
                 % (snap["mean_latency_s"], snap["max_latency_s"]))
    if "latency_p50_s" in snap:
        lines.append("latency p50/p95/p99   : %.2e / %.2e / %.2e s"
                     % (snap["latency_p50_s"], snap["latency_p95_s"],
                        snap["latency_p99_s"]))
    lines.append("fallbacks             : %d" % snap["fallbacks"])
    per_backend = ", ".join(
        "%s=%d" % (name, count)
        for name, count in sorted(snap["requests_per_backend"].items())
    ) or "none"
    lines.append("requests per backend  : %s" % per_backend)
    if "plan_cache" in snap:
        cache = snap["plan_cache"]
        lines.append(
            "plan cache            : %d/%d entries, hit rate %.3f "
            "(%d hits, %d misses, %d evictions)"
            % (cache["entries"], cache["capacity"], cache["hit_rate"],
               cache["hits"], cache["misses"], cache["evictions"])
        )
    sizes = ", ".join("%s:%d" % (k, v)
                      for k, v in snap["batch_size_hist"].items())
    lines.append("batch-size histogram  : %s" % (sizes or "none"))
    cycles = ", ".join("%s:%d" % (k, v)
                       for k, v in snap["modeled_cycles_hist"].items())
    lines.append("batch-cycles histogram: %s" % (cycles or "none"))
    return "\n".join(lines)
