"""The serving engine's stats surface.

Aggregates everything an operator would watch on a dashboard: request
and batch counts per backend, the batch-size histogram, latency
aggregates, the plan-cache hit rate, and a histogram of modeled batch
cost in GPU cycles (log-scaled buckets).  ``snapshot()`` returns a
plain JSON-serializable dict; ``format_stats`` renders it for humans.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Optional

__all__ = ["ServeStats", "format_stats"]


class ServeStats:
    """Mutable accumulator the engine feeds as batches complete."""

    def __init__(self, clock_hz: float):
        self.clock_hz = clock_hz
        self.served = 0
        self.batches = 0
        self.fallbacks = 0
        self.busy_s = 0.0
        self.requests_per_backend = Counter()
        self.batches_per_backend = Counter()
        self.batch_sizes = Counter()
        self.flush_reasons = Counter()
        self.cycles_hist = Counter()     # log10 bucket -> batch count
        self._latency_sum = 0.0
        self._latency_max = 0.0

    # ------------------------------------------------------------------
    def record_batch(
        self,
        backend: str,
        batch_size: int,
        seconds: float,
        reason: str,
        fallbacks: int = 0,
    ) -> None:
        self.batches += 1
        self.served += batch_size
        self.fallbacks += fallbacks
        self.busy_s += seconds
        self.requests_per_backend[backend] += batch_size - fallbacks
        if fallbacks:
            self.requests_per_backend["naive"] += fallbacks
        self.batches_per_backend[backend] += 1
        self.batch_sizes[batch_size] += 1
        self.flush_reasons[reason] += 1
        cycles = seconds * self.clock_hz
        bucket = int(math.floor(math.log10(cycles))) if cycles > 0 else 0
        self.cycles_hist["1e%d" % bucket] += 1

    def record_latency(self, latency_s: float) -> None:
        self._latency_sum += latency_s
        self._latency_max = max(self._latency_max, latency_s)

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.served / self.batches if self.batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Served requests per modeled second of backend execution."""
        return self.served / self.busy_s if self.busy_s > 0 else 0.0

    def snapshot(self, cache_stats: Optional[dict] = None) -> dict:
        snap = {
            "served": self.served,
            "batches": self.batches,
            "fallbacks": self.fallbacks,
            "mean_batch_size": self.mean_batch_size,
            "modeled_busy_seconds": self.busy_s,
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": (self._latency_sum / self.served
                               if self.served else 0.0),
            "max_latency_s": self._latency_max,
            "requests_per_backend": dict(self.requests_per_backend),
            "batches_per_backend": dict(self.batches_per_backend),
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_sizes.items())},
            "flush_reasons": dict(self.flush_reasons),
            "modeled_cycles_hist": {k: self.cycles_hist[k] for k in
                                    sorted(self.cycles_hist)},
        }
        if cache_stats is not None:
            snap["plan_cache"] = dict(cache_stats)
        return snap


def format_stats(snap: dict) -> str:
    """Human-readable rendering of a :meth:`ServeStats.snapshot` dict."""
    lines = []
    lines.append("served %d requests in %d batches (mean batch %.2f)"
                 % (snap["served"], snap["batches"], snap["mean_batch_size"]))
    lines.append("modeled busy time     : %.6f s" % snap["modeled_busy_seconds"])
    lines.append("throughput            : %.0f req/modeled-s"
                 % snap["throughput_rps"])
    lines.append("latency mean / max    : %.2e / %.2e s"
                 % (snap["mean_latency_s"], snap["max_latency_s"]))
    lines.append("fallbacks             : %d" % snap["fallbacks"])
    per_backend = ", ".join(
        "%s=%d" % (name, count)
        for name, count in sorted(snap["requests_per_backend"].items())
    ) or "none"
    lines.append("requests per backend  : %s" % per_backend)
    if "plan_cache" in snap:
        cache = snap["plan_cache"]
        lines.append(
            "plan cache            : %d/%d entries, hit rate %.3f "
            "(%d hits, %d misses, %d evictions)"
            % (cache["entries"], cache["capacity"], cache["hit_rate"],
               cache["hits"], cache["misses"], cache["evictions"])
        )
    sizes = ", ".join("%s:%d" % (k, v)
                      for k, v in snap["batch_size_hist"].items())
    lines.append("batch-size histogram  : %s" % (sizes or "none"))
    cycles = ", ".join("%s:%d" % (k, v)
                       for k, v in snap["modeled_cycles_hist"].items())
    lines.append("batch-cycles histogram: %s" % (cycles or "none"))
    return "\n".join(lines)
