"""repro.serve — an inference-serving engine for the convolution stack.

Turns the repository's one-shot kernels into a serving layer: an async
request queue with dynamic same-shape batching under a latency deadline
(:mod:`~repro.serve.batcher`), an LRU kernel-plan cache that memoizes
the design-space explorer's winner per problem shape
(:mod:`~repro.serve.plan_cache`), a cost-model-driven multi-backend
dispatcher with graceful degradation to the naive-direct backend
(:mod:`~repro.serve.dispatch`), and a stats surface
(:mod:`~repro.serve.stats`).  See docs/SERVING.md.

Quick start::

    from repro.serve import ServeEngine, synthetic_trace

    engine = ServeEngine(deadline_s=1e-3, max_batch=16)
    responses = engine.serve_trace(synthetic_trace(100, seed=7))
    print(engine.format_stats())
"""

from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.dispatch import DEFAULT_BACKENDS, Dispatcher, KernelPlan
from repro.serve.engine import AsyncServeEngine, ServeEngine
from repro.serve.plan_cache import PlanCache
from repro.serve.request import (
    PRIORITY_CLASSES,
    ConvRequest,
    ConvResponse,
    plan_key,
    request_from_arrays,
)
from repro.serve.stats import ServeStats, format_stats
from repro.serve.trace import (
    DEFAULT_SERVING_SHAPES,
    load_trace,
    save_trace,
    synthetic_trace,
)

__all__ = [
    "ServeEngine",
    "AsyncServeEngine",
    "DynamicBatcher",
    "Batch",
    "Dispatcher",
    "KernelPlan",
    "DEFAULT_BACKENDS",
    "PlanCache",
    "PRIORITY_CLASSES",
    "ConvRequest",
    "ConvResponse",
    "plan_key",
    "request_from_arrays",
    "ServeStats",
    "format_stats",
    "DEFAULT_SERVING_SHAPES",
    "synthetic_trace",
    "save_trace",
    "load_trace",
]
