"""Command-line interface: regenerate any of the paper's experiments.

::

    python -m repro list                     # available experiment ids
    python -m repro run fig2                 # regenerate one experiment
    python -m repro run fig8a --arch maxwell # on another architecture
    python -m repro run all --skip-slow      # everything quick
    python -m repro summary                  # headline paper-vs-measured lines
    python -m repro summary --json           # same, machine-readable
    python -m repro serve --synthetic 200    # dynamic-batching serving engine
    python -m repro serve --requests trace.json --deadline 2e-3
    python -m repro serve --synthetic 50 --backends fft,winograd,naive
    python -m repro serve --synthetic 1000 --replicas 4 --compare-serial
    python -m repro backends                 # registered kernel backends
    python -m repro backends --arch pascal --json
    python -m repro serve --synthetic 50 --emit-trace out.json   # Perfetto trace
    python -m repro obs --format prometheus  # telemetry registry dump
    python -m repro run table1 --jobs 4      # sweep on 4 worker processes
    REPRO_JOBS=auto python -m repro summary  # parallel on every core
    python -m repro perf record --scale full # run the perf suite, append
    python -m repro perf report              # trajectory points + deltas
    python -m repro perf diff -- -2 -1       # delta between two points
    python -m repro perf gate --tolerance 0.25   # CI regression gate
    python -m repro audit                    # fastsim vs interpreted oracle
    python -m repro audit --arch fermi --case general --trials 8
    python -m repro perf gate --audit        # gate with the oracle engaged

Tables are printed to stdout (the same renderer the benchmark suite
uses to fill ``benchmarks/output/``).
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import json
import os
import sys
from typing import List, Optional

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.report import format_experiment, format_summary_line
from repro.errors import ReproError
from repro.gpu.arch import ARCHITECTURES

__all__ = ["main", "build_parser"]

#: Experiments that take noticeably longer than a second to regenerate.
SLOW_EXPERIMENTS = ("table1",)


def _add_jobs_flag(subparser) -> None:
    subparser.add_argument(
        "--jobs", metavar="N", default=None,
        help="worker processes for sweep evaluation (an integer, or "
        "'auto' for the CPU count; default: the REPRO_JOBS environment "
        "variable, else serial). Results are identical for any degree; "
        "see docs/PARALLEL.md")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DAC'17 convolution paper's experiments "
        "on the simulated GPU substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--arch", choices=sorted(ARCHITECTURES), default="kepler",
                     help="architecture preset (where the experiment takes one)")
    run.add_argument("--precision", type=int, default=1,
                     help="decimal places in the table")
    run.add_argument("--skip-slow", action="store_true",
                     help="with 'all': skip the long-running experiments")
    run.add_argument("--emit-trace", metavar="PATH",
                     help="write a Chrome trace-event JSON of the run "
                     "(load in Perfetto / chrome://tracing)")
    _add_jobs_flag(run)

    summary = sub.add_parser(
        "summary", help="print the headline paper-vs-measured lines")
    summary.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON records")
    _add_jobs_flag(summary)

    serve = sub.add_parser(
        "serve", help="serve a convolution trace through the serving engine")
    src = serve.add_mutually_exclusive_group(required=True)
    src.add_argument("--requests", metavar="PATH",
                     help="JSON trace file (see repro.serve.save_trace)")
    src.add_argument("--synthetic", type=int, metavar="N",
                     help="generate a synthetic N-request mixed-shape trace")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the synthetic trace")
    serve.add_argument("--rate", type=float, default=50_000.0,
                       help="synthetic arrival rate, requests per modeled "
                       "second (0 = all arrive at t=0)")
    serve.add_argument("--deadline", type=float, default=1e-3,
                       help="batching latency deadline, modeled seconds")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="maximum requests coalesced into one launch")
    serve.add_argument("--arch", choices=sorted(ARCHITECTURES),
                       default="kepler")
    serve.add_argument("--backends", metavar="NAMES",
                       help="comma-separated backend subset, any names "
                       "from 'repro backends' (default: every registered "
                       "backend; naive is always kept as the fallback)")
    serve.add_argument("--executor", choices=("reference", "kernel"),
                       default="reference",
                       help="functional executor for results (reference = "
                       "golden bit-exact path; kernel = the planned "
                       "backend's algorithm)")
    serve.add_argument("--replicas", type=int, default=1, metavar="N",
                       help="serve through a fleet of N engine replicas with "
                       "shape-affinity routing (default: 1 = a single "
                       "engine; see docs/FLEET.md)")
    serve.add_argument("--queue-depth", type=int, default=64, metavar="D",
                       help="fleet admission bound: max modeled queue "
                       "occupancy per replica before spilling/shedding")
    serve.add_argument("--deadline-budget", type=float, default=None,
                       metavar="S",
                       help="give every synthetic request an absolute "
                       "completion deadline of arrival + S modeled seconds "
                       "(fleet SLO accounting reports the misses)")
    serve.add_argument("--priority-mix", metavar="SPEC", default=None,
                       help="synthetic priority-class mix, e.g. "
                       "'critical=0.1,standard=0.8,batch=0.1' "
                       "(default: all standard)")
    serve.add_argument("--chaos", metavar="SPEC", default=None,
                       help="inject deterministic faults while serving "
                       "(spec grammar: [seed=N;]kind[:key=val,...]; kinds: "
                       "crash, wedge, slow, cache-corrupt, version-skew, "
                       "build-fail, obs-drop; see docs/RESILIENCE.md); "
                       "routes through the fleet path even at "
                       "--replicas 1")
    serve.add_argument("--save-trace", metavar="PATH",
                       help="also write the served trace to this JSON file")
    serve.add_argument("--verify", action="store_true",
                       help="check every response against conv2d_reference")
    serve.add_argument("--compare-unbatched", action="store_true",
                       help="also serve the trace with batching disabled and "
                       "report both throughputs")
    serve.add_argument("--compare-serial", action="store_true",
                       help="with --replicas: also serve the trace through "
                       "one serial engine and check the fleet's responses "
                       "are bit-identical")
    serve.add_argument("--json", action="store_true",
                       help="emit the stats snapshot as JSON")
    serve.add_argument("--emit-trace", metavar="PATH",
                       help="write a Chrome trace-event JSON of the serving "
                       "run (load in Perfetto / chrome://tracing)")
    _add_jobs_flag(serve)

    chaos = sub.add_parser(
        "chaos", help="run the canned fault matrix and report recovery "
        "outcomes (the chaos-gate; see docs/RESILIENCE.md)")
    chaos.add_argument("--matrix", choices=("ci", "full"), default="ci",
                       help="scenario set: 'ci' covers every fault kind "
                       "on short traces; 'full' adds the 10k-request "
                       "combined acceptance replay (default: ci)")
    chaos.add_argument("--seed", type=int, default=1234,
                       help="fault-plan and trace seed; two runs with "
                       "the same seed must produce identical reports "
                       "(default: 1234)")
    chaos.add_argument("--report", metavar="PATH",
                       help="write the full JSON report to this file "
                       "(the CI artifact)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON on stdout")
    _add_jobs_flag(chaos)

    obs = sub.add_parser(
        "obs", help="run a pinned workload and dump the telemetry registry")
    obs.add_argument("--format", choices=("json", "prometheus"),
                     default="json", dest="fmt",
                     help="registry dump format (default: json)")
    obs.add_argument("--synthetic", type=int, default=40, metavar="N",
                     help="requests in the serving leg of the pinned "
                     "workload (0 = kernels only)")
    obs.add_argument("--seed", type=int, default=0,
                     help="seed for the serving leg's synthetic trace")
    obs.add_argument("--arch", choices=sorted(ARCHITECTURES),
                     default="kepler")
    obs.add_argument("--output", metavar="PATH",
                     help="write the dump to a file instead of stdout")
    obs.add_argument("--emit-trace", metavar="PATH",
                     help="also write the workload's Chrome trace-event JSON")
    _add_jobs_flag(obs)

    backends = sub.add_parser(
        "backends",
        help="list registered kernel backends and per-arch applicability")
    backends.add_argument("--arch", choices=sorted(ARCHITECTURES),
                          default=None,
                          help="restrict the applicability columns to one "
                          "architecture (default: all presets)")
    backends.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON records")
    backends.add_argument("--matrix", action="store_true",
                          help="print the backend x generalized-axis "
                          "capability matrix (stride/dilation/groups/layout) "
                          "instead of the per-arch applicability table")

    claims = sub.add_parser("claims",
                            help="verify every quantitative claim of the paper")
    claims.add_argument("ids", nargs="*",
                        help="claim ids to check (default: all)")

    audit = sub.add_parser(
        "audit", help="cross-check the fast trace generators "
        "(repro.gpu.fastsim) against the interpreted SIMT oracle: every "
        "trial must produce a byte-identical KernelCost and output")
    audit.add_argument("--case",
                       choices=("special", "general", "depthwise",
                                "both", "all"),
                       default="both",
                       help="which kernel pair(s) to audit: 'both' is the "
                       "classic special+general pair, 'all' adds the "
                       "depthwise grid-Z batch (default: both)")
    audit.add_argument("--arch", choices=sorted(ARCHITECTURES),
                       default="kepler")
    audit.add_argument("--trials", type=int, default=4, metavar="N",
                       help="randomized aligned shapes per case and bank "
                       "policy (default: 4)")
    audit.add_argument("--seed", type=int, default=0,
                       help="seed for the shape generator")
    audit.add_argument("--json", action="store_true",
                       help="emit per-trial records as JSON")

    perf = sub.add_parser(
        "perf", help="performance observatory: record, inspect, and gate "
        "the perf trajectory (docs/OBSERVABILITY.md)")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _add_trajectory_flag(p):
        p.add_argument("--trajectory", metavar="PATH",
                       default="BENCH_trajectory.json",
                       help="trajectory database (default: "
                       "BENCH_trajectory.json)")

    record = perf_sub.add_parser(
        "record", help="run the canonical perf suite and append a "
        "trajectory point")
    record.add_argument("--scale", choices=("smoke", "ci", "full"),
                        default="ci",
                        help="workload sizing (default: ci)")
    record.add_argument("--note", metavar="TEXT",
                        help="free-form note stored in the point's meta")
    record.add_argument("--flamegraph", metavar="PATH",
                        help="write the run's collapsed-stack flamegraph "
                        "(feed to flamegraph.pl / speedscope)")
    record.add_argument("--emit-trace", metavar="PATH",
                        help="write the run's Chrome trace-event JSON "
                        "with the folded profile section")
    record.add_argument("--point-out", metavar="PATH",
                        help="also write the recorded point alone to PATH")
    record.add_argument("--no-append", action="store_true",
                        help="measure and print only; leave the "
                        "trajectory file untouched")
    record.add_argument("--json", action="store_true",
                        help="emit the recorded point as JSON")
    record.add_argument("--audit", action="store_true",
                        help="set REPRO_AUDIT=1 for the suite run: the "
                        "simulator workload re-runs the interpreted SIMT "
                        "oracle and fails on any divergence")
    _add_trajectory_flag(record)
    _add_jobs_flag(record)

    report = perf_sub.add_parser(
        "report", help="list trajectory points and render the deltas "
        "between consecutive ones")
    report.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    _add_trajectory_flag(report)

    diff = perf_sub.add_parser(
        "diff", help="delta table between two trajectory points")
    diff.add_argument("indices", nargs="*", type=int, metavar="INDEX",
                      help="two point indices, negatives count from the "
                      "end (default: -2 -1)")
    diff.add_argument("--json", action="store_true",
                      help="emit the delta rows as JSON")
    _add_trajectory_flag(diff)

    gate = perf_sub.add_parser(
        "gate", help="run the suite and fail on perf-budget violations "
        "against the trajectory baseline")
    gate.add_argument("--scale", choices=("smoke", "ci", "full"),
                      default="ci",
                      help="suite scale; the baseline is the latest "
                      "point at the same scale (default: ci)")
    gate.add_argument("--tolerance", type=float, default=0.25,
                      help="wall-clock noise tolerance; the budget is "
                      "baseline * (1 + tolerance), calibration-scaled "
                      "(default: 0.25)")
    gate.add_argument("--model-tolerance", type=float, default=1e-6,
                      help="relative drift tolerance for modeled "
                      "(deterministic) metrics (default: 1e-6)")
    gate.add_argument("--budget", action="append", metavar="W.M=V",
                      help="explicit budget override, e.g. "
                      "simulator.wall_s=30 (repeatable)")
    gate.add_argument("--point", metavar="PATH",
                      help="gate a pre-recorded point (from `record "
                      "--point-out`) instead of re-running the suite")
    gate.add_argument("--flamegraph", metavar="PATH",
                      help="write the gate run's collapsed-stack "
                      "flamegraph")
    gate.add_argument("--json", action="store_true",
                      help="emit the comparison result as JSON")
    gate.add_argument("--audit", action="store_true",
                      help="set REPRO_AUDIT=1 for the suite run: the "
                      "simulator workload re-runs the interpreted SIMT "
                      "oracle and fails on any divergence")
    _add_trajectory_flag(gate)
    _add_jobs_flag(gate)
    return parser


def _resolve_jobs_arg(args) -> Optional[int]:
    """Validate a --jobs flag up front (argparse-style exit on typos)."""
    from repro.parallel import resolve_jobs

    if getattr(args, "jobs", None) is None:
        return None
    return resolve_jobs(args.jobs)


def _build(exp_id: str, arch_name: str, jobs: Optional[int] = None):
    builder = ALL_EXPERIMENTS[exp_id]
    arch = ARCHITECTURES[arch_name]
    try:
        params = inspect.signature(builder).parameters
    except (TypeError, ValueError):
        params = {}
    kwargs = {}
    if "arch" in params:
        kwargs["arch"] = arch
    if "jobs" in params:
        kwargs["jobs"] = jobs
    return builder(**kwargs)


def _cmd_list() -> int:
    for exp_id in ALL_EXPERIMENTS:
        slow = "  (slow)" if exp_id in SLOW_EXPERIMENTS else ""
        print("%s%s" % (exp_id, slow))
    return 0


def _cmd_run(args) -> int:
    from repro import obs

    if args.experiment == "all":
        ids = [e for e in ALL_EXPERIMENTS
               if not (args.skip_slow and e in SLOW_EXPERIMENTS)]
    elif args.experiment in ALL_EXPERIMENTS:
        ids = [args.experiment]
    else:
        print("unknown experiment %r; try: python -m repro list"
              % args.experiment, file=sys.stderr)
        return 2
    jobs = _resolve_jobs_arg(args)
    for exp_id in ids:
        with obs.instrument("experiment." + exp_id, category="experiment"):
            exp = _build(exp_id, args.arch, jobs=jobs)
        print(format_experiment(exp, precision=args.precision))
        print()
    if args.emit_trace:
        obs.write_chrome_trace(args.emit_trace, obs.get_tracer(),
                               registry=obs.get_registry())
        print("trace written to %s" % args.emit_trace, file=sys.stderr)
    return 0


def _summary_entries(jobs: Optional[int] = None):
    """(experiment, numerator, denominator, paper value) headline tuples."""
    from repro.bench.figures import fig2_gemm, fig7_special, fig8_general

    entries = [(fig2_gemm(), "MAGMA", "cuBLAS", "2.4x")]
    for k in (1, 3, 5):
        paper = {1: "6.16x", 3: "6.43x", 5: "2.90x"}[k]
        entries.append((fig7_special(k, jobs=jobs), "ours", "cuDNN", paper))
    for k in (3, 5, 7):
        paper = {3: "+30.5%", 5: "+45.3%", 7: "+30.8%"}[k]
        entries.append((fig8_general(k, jobs=jobs), "ours", "cuDNN", paper))
    return entries


def _cmd_summary(args) -> int:
    from repro.bench.report import summary_record

    entries = _summary_entries(jobs=_resolve_jobs_arg(args))
    if args.json:
        print(json.dumps(
            [summary_record(exp, num, den, paper)
             for exp, num, den, paper in entries], indent=2))
        return 0
    for exp, num, den, paper in entries:
        print(format_summary_line(exp, num, den, paper_value=paper))
    return 0


def _parse_priority_mix(spec: str) -> dict:
    """Parse 'critical=0.1,standard=0.8' into a weight dict."""
    mix = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        if not _:
            raise ReproError(
                "bad --priority-mix entry %r; expected class=weight" % part)
        try:
            mix[name.strip()] = float(weight)
        except ValueError:
            raise ReproError(
                "bad --priority-mix weight %r for class %r"
                % (weight, name.strip()))
    if not mix:
        raise ReproError("--priority-mix is empty")
    return mix


def _cmd_serve(args) -> int:
    import numpy as np

    from repro import obs
    from repro.conv.reference import conv2d_reference
    from repro.serve import (
        ServeEngine, format_stats, load_trace, save_trace, synthetic_trace,
    )

    if args.requests:
        try:
            trace = load_trace(args.requests)
        except (OSError, json.JSONDecodeError, ReproError) as exc:
            print("cannot load %s: %s" % (args.requests, exc),
                  file=sys.stderr)
            return 2
    else:
        if args.synthetic < 1:
            print("--synthetic needs a positive request count",
                  file=sys.stderr)
            return 2
        try:
            mix = (_parse_priority_mix(args.priority_mix)
                   if args.priority_mix else None)
            trace = synthetic_trace(
                args.synthetic, seed=args.seed,
                rate_hz=args.rate if args.rate > 0 else None,
                priority_mix=mix,
                deadline_budget_s=args.deadline_budget,
            )
        except ReproError as exc:
            print("bad serving configuration: %s" % exc, file=sys.stderr)
            return 2
    if args.save_trace:
        save_trace(args.save_trace, trace)

    if args.replicas != 1 or args.compare_serial or args.chaos:
        # --chaos always takes the fleet path: fault injection and the
        # recovery machinery (breakers, failover) live there, even for
        # a fleet of one.
        return _serve_fleet(args, trace)

    arch = ARCHITECTURES[args.arch]
    try:
        from repro.fleet import check_queue_depth, check_replicas

        check_replicas(args.replicas)
        check_queue_depth(args.queue_depth)
        # The CLI engine reports through the process-wide telemetry
        # surface so `--emit-trace` (and a same-process `repro obs`)
        # sees the run; each invocation starts from a fresh surface so
        # repeated in-process `main()` calls do not accumulate.
        backends = None
        if args.backends:
            backends = tuple(
                name.strip() for name in args.backends.split(",")
                if name.strip())
        engine = ServeEngine(
            arch=arch, deadline_s=args.deadline, max_batch=args.max_batch,
            executor=args.executor, backends=backends,
            jobs=_resolve_jobs_arg(args),
            registry=obs.reset_registry(), tracer=obs.reset_tracer(),
        )
    except ReproError as exc:
        print("bad serving configuration: %s" % exc, file=sys.stderr)
        return 2
    responses = engine.serve_trace(trace)

    if args.verify:
        for request, response in zip(trace, responses):
            reference = conv2d_reference(
                request.image, request.filters, request.problem.padding)
            if args.executor == "reference":
                ok = np.array_equal(response.output, reference)
            else:
                ok = np.allclose(response.output, reference,
                                 rtol=1e-4, atol=1e-5)
            if not ok:
                print("request %d (%s backend) does not match the reference"
                      % (request.req_id, response.backend), file=sys.stderr)
                return 1

    if args.emit_trace:
        engine.export_trace(args.emit_trace)

    snap = engine.stats()
    if args.compare_unbatched:
        # Private registry: the comparison run must not pollute the
        # process-wide series the batched engine reported through.
        unbatched = ServeEngine(arch=arch, deadline_s=0.0, max_batch=1,
                                executor=args.executor)
        unbatched.serve_trace(trace)
        snap["unbatched_throughput_rps"] = unbatched.stats()["throughput_rps"]
        snap["batching_speedup"] = (
            snap["throughput_rps"] / snap["unbatched_throughput_rps"]
            if snap["unbatched_throughput_rps"] else 0.0
        )

    if args.json:
        print(json.dumps(snap, indent=2))
    else:
        print(format_stats(snap))
        if args.verify:
            print("verified               : all %d responses match the "
                  "reference" % len(responses))
        if args.compare_unbatched:
            print("unbatched throughput  : %.0f req/modeled-s "
                  "(batching speedup %.2fx)"
                  % (snap["unbatched_throughput_rps"],
                     snap["batching_speedup"]))
    return 0


def _serve_fleet(args, trace) -> int:
    """The `repro serve --replicas N` path: a routed multi-engine fleet."""
    import numpy as np

    from repro import obs
    from repro.conv.reference import conv2d_reference
    from repro.fleet import (
        FleetConfig, FleetEngine, check_queue_depth, check_replicas,
    )
    from repro.serve import ServeEngine

    arch = ARCHITECTURES[args.arch]
    try:
        check_replicas(args.replicas)
        check_queue_depth(args.queue_depth)
        backends = None
        if args.backends:
            backends = tuple(
                name.strip() for name in args.backends.split(",")
                if name.strip())
        config = FleetConfig(
            arch=arch, replicas=args.replicas, deadline_s=args.deadline,
            max_batch=args.max_batch, executor=args.executor,
            backends=backends, queue_depth=args.queue_depth,
            jobs=_resolve_jobs_arg(args),
        )
        fleet = FleetEngine(config, registry=obs.reset_registry(),
                            tracer=obs.reset_tracer(), chaos=args.chaos)
    except ReproError as exc:
        print("bad serving configuration: %s" % exc, file=sys.stderr)
        return 2
    result = fleet.serve_trace(trace)

    if args.verify:
        for request, response in zip(trace, result.responses):
            if response is None:
                continue
            reference = conv2d_reference(
                request.image, request.filters, request.problem.padding)
            if args.executor == "reference":
                ok = np.array_equal(response.output, reference)
            else:
                ok = np.allclose(response.output, reference,
                                 rtol=1e-4, atol=1e-5)
            if not ok:
                print("request %d (%s backend) does not match the reference"
                      % (request.req_id, response.backend), file=sys.stderr)
                return 1

    mismatches = None
    serial_rps = None
    if args.compare_serial:
        # Private engine: the serial leg must not pollute the fleet's
        # telemetry surface.
        serial = ServeEngine(
            arch=arch, deadline_s=args.deadline, max_batch=args.max_batch,
            executor=args.executor, backends=fleet._planner.backends)
        serial_responses = {r.req_id: r for r in serial.serve_trace(trace)}
        mismatches = 0
        for response in result.responses:
            if response is None:
                continue
            twin = serial_responses[response.req_id]
            if (response.backend != twin.backend
                    or not np.array_equal(response.output, twin.output)):
                mismatches += 1
        serial_rps = serial.stats()["throughput_rps"]

    if args.emit_trace:
        fleet.export_trace(args.emit_trace)

    snap = fleet.stats()
    if args.compare_serial:
        snap["serial_throughput_rps"] = serial_rps
        snap["serial_mismatches"] = mismatches
        snap["fleet_speedup"] = (
            snap["sustained_rps"] / serial_rps if serial_rps else 0.0)
    if fleet.chaos is not None:
        snap["chaos"] = {
            "plan": fleet.chaos.plan.describe(),
            "fired": fleet.chaos.fired(),
            "unfired": fleet.chaos.unfired(),
        }
    if args.json:
        print(json.dumps(snap, indent=2))
        return 0 if not mismatches else 1
    print(fleet.format_stats())
    if fleet.chaos is not None:
        fired = sum(entry["fired"] for entry in snap["chaos"]["fired"])
        unfired = snap["chaos"]["unfired"]
        print("chaos                 : %s (%d firings%s)"
              % (snap["chaos"]["plan"], fired,
                 ("; unfired: " + ", ".join(unfired)) if unfired else ""))
    if args.verify:
        print("verified               : all %d served responses match the "
              "reference" % result.served)
    if args.compare_serial:
        print("serial engine         : %.0f req/modeled-s; "
              "%d response mismatches vs fleet" % (serial_rps, mismatches))
    return 0 if not mismatches else 1


def _cmd_chaos(args) -> int:
    """Run the canned fault matrix; exit 1 on any recovery failure.

    This is the CI chaos-gate: every fault kind is injected against a
    seeded fleet replay (each scenario twice, independently) and the
    report states — per scenario — whether anything was lost,
    duplicated, served with non-baseline bytes, left a breaker stuck
    open, or diverged between the two same-seed runs.
    """
    from repro.chaos.matrix import format_chaos_report, run_matrix
    from repro.errors import ChaosError

    try:
        report = run_matrix(
            args.matrix, seed=args.seed, jobs=_resolve_jobs_arg(args),
            log=None if args.json else print)
    except ChaosError as exc:
        print("chaos: %s" % exc, file=sys.stderr)
        return 2
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_chaos_report(report))
    return 0 if report["passed"] else 1


def _cmd_obs(args) -> int:
    """Run a pinned workload and dump the telemetry registry.

    The workload is deterministic: one traced cost prediction for each
    of the paper's kernels (so the GM-transaction / bank-conflict /
    cycle counters are exactly the cost model's return values for those
    kernels), then an optional synthetic serving leg (so the plan-cache
    and serving series are populated too).
    """
    from repro import obs
    from repro.conv.tensors import ConvProblem
    from repro.gpu.timing import TimingModel
    from repro.kernels import default_registry
    from repro.serve import ServeEngine, synthetic_trace

    arch = ARCHITECTURES[args.arch]
    registry = obs.reset_registry()
    tracer = obs.reset_tracer()

    # Pinned kernel leg: default-config predictions on fixed shapes,
    # built through the backend registry (so its lookup counters land in
    # the dump too).
    kernels = default_registry()
    model = TimingModel(arch)
    with obs.instrument("obs.pinned-kernels", category="experiment"):
        kernels.get("special").timing(
            ConvProblem.square(512, 3, channels=1, filters=8),
            model, arch=arch)
        kernels.get("general").timing(
            ConvProblem.square(64, 3, channels=16, filters=32),
            model, arch=arch)

    if args.synthetic > 0:
        engine = ServeEngine(arch=arch, registry=registry, tracer=tracer,
                             jobs=_resolve_jobs_arg(args))
        engine.serve_trace(synthetic_trace(args.synthetic, seed=args.seed))

    if args.fmt == "prometheus":
        dump = obs.to_prometheus(registry)
    else:
        dump = json.dumps(obs.registry_to_json(registry), indent=1)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(dump)
            if not dump.endswith("\n"):
                fh.write("\n")
    else:
        print(dump)
    if args.emit_trace:
        obs.write_chrome_trace(args.emit_trace, tracer, registry=registry)
        print("trace written to %s" % args.emit_trace, file=sys.stderr)
    return 0


#: Probe shapes for the `backends` applicability table: one per regime
#: that separates the built-in capability predicates.
_BACKEND_PROBES = (
    ("C=1 3x3", (64, 3, 1, 4)),
    ("C>1 3x3", (32, 3, 8, 8)),
    ("C>1 5x5", (32, 5, 8, 8)),
)


def _backends_matrix(registry, args) -> int:
    """The backend x generalized-axis capability matrix (from AXES)."""
    records = []
    for backend in registry:
        axes = backend.AXES
        records.append({
            "name": backend.name,
            "stride": bool(axes.get("stride", False)),
            "dilation": bool(axes.get("dilation", False)),
            "groups": axes.get("groups", "single"),
            "layouts": list(axes.get("layouts", ("nchw",))),
        })
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    width = max(len(r["name"]) for r in records) + 2
    header = ("backend".ljust(width) + "stride".ljust(8)
              + "dilation".ljust(10) + "groups".ljust(11) + "layouts")
    print(header)
    print("-" * len(header))
    for r in records:
        print(r["name"].ljust(width)
              + ("yes" if r["stride"] else "-").ljust(8)
              + ("yes" if r["dilation"] else "-").ljust(10)
              + r["groups"].ljust(11)
              + ",".join(r["layouts"]))
    print()
    print("groups: single = ungrouped only; depthwise = groups == channels; "
          "any = every divisor")
    return 0


def _cmd_backends(args) -> int:
    from repro.conv.tensors import ConvProblem
    from repro.kernels import default_registry

    registry = default_registry()
    if args.matrix:
        return _backends_matrix(registry, args)
    arch_names = [args.arch] if args.arch else sorted(ARCHITECTURES)
    probes = [
        (label, ConvProblem.square(n, k, channels=c, filters=f))
        for label, (n, k, c, f) in _BACKEND_PROBES
    ]
    records = []
    for backend in registry:
        supports = {}
        for arch_name in arch_names:
            arch = ARCHITECTURES[arch_name]
            supports[arch_name] = {
                label: backend.supports(problem, arch)
                for label, problem in probes
            }
        records.append({
            "name": backend.name,
            "fallback": backend.name == registry.fallback,
            "supports": supports,
        })
    if args.json:
        print(json.dumps(records, indent=2))
        return 0

    def cell(flags: dict) -> str:
        if all(flags.values()):
            return "all"
        hits = [label for label, ok in flags.items() if ok]
        return ",".join(hits) if hits else "-"

    width = max(len(r["name"]) for r in records) + 2
    arch_width = max(
        [len(a) for a in arch_names]
        + [len(cell(r["supports"][a])) for r in records for a in arch_names]
    ) + 2
    header = "backend".ljust(width + 11)
    header += "".join(a.ljust(arch_width) for a in arch_names)
    print(header)
    print("-" * len(header.rstrip()))
    for r in records:
        tag = "(fallback)" if r["fallback"] else ""
        line = r["name"].ljust(width) + tag.ljust(11)
        line += "".join(
            cell(r["supports"][a]).ljust(arch_width) for a in arch_names)
        print(line.rstrip())
    print()
    print("applicability probes: %s"
          % "; ".join("%s = N%d K%d C%d F%d" % ((label,) + dims)
                      for label, dims in _BACKEND_PROBES))
    return 0


def _cmd_claims(args) -> int:
    from repro.bench.claims import format_claim_results, verify_claims

    ids = args.ids or None
    pairs = verify_claims(ids)
    if not pairs:
        print("no matching claims; see repro.bench.claims.PAPER_CLAIMS",
              file=sys.stderr)
        return 2
    print(format_claim_results(pairs))
    return 0 if all(r.supported for _, r in pairs) else 1


#: The general-case tile audited by ``repro audit``: small enough to fit
#: every supported architecture's register/smem limits (the repo default,
#: tuned for Kepler, is infeasible on Fermi).
_AUDIT_GENERAL_CONFIG = dict(w=16, h=4, ftb=8, wt=8, ft=2, csh=1)


def _cmd_audit(args) -> int:
    import numpy as np

    from repro.core.config import GeneralCaseConfig
    from repro.errors import AuditMismatchError
    from repro.gpu.fastsim import FastGeneralKernel, FastSpecialKernel
    from repro.gpu.memory import BankConflictPolicy

    arch = ARCHITECTURES[args.arch]
    if args.case == "both":
        cases = ("special", "general")
    elif args.case == "all":
        cases = ("special", "general", "depthwise")
    else:
        cases = (args.case,)
    policies = (BankConflictPolicy.WORD_MERGE, BankConflictPolicy.PAPER)
    rng = np.random.default_rng(args.seed)
    records = []
    failures = 0
    for case in cases:
        for policy in policies:
            for trial in range(max(1, args.trials)):
                k = int(rng.choice((3, 5)))
                if case == "special":
                    kern = FastSpecialKernel(arch, bank_policy=policy)
                    cfg = kern.config
                    oh = cfg.block_h * int(rng.integers(1, 4))
                    ow = cfg.block_w * int(rng.integers(1, 3))
                    image = rng.standard_normal(
                        (oh + k - 1, ow + k - 1)).astype(np.float32)
                    filters = rng.standard_normal(
                        (int(rng.integers(1, 5)), k, k)).astype(np.float32)
                elif case == "depthwise":
                    from repro.core.depthwise import DepthwiseKernel

                    kern = DepthwiseKernel(arch, bank_policy=policy)
                    cfg = kern.config
                    oh = cfg.block_h * int(rng.integers(1, 3))
                    ow = cfg.block_w
                    channels = int(rng.integers(2, 5))
                    mult = int(rng.integers(1, 3))
                    image = rng.standard_normal(
                        (channels, oh + k - 1, ow + k - 1)).astype(np.float32)
                    filters = rng.standard_normal(
                        (channels * mult, 1, k, k)).astype(np.float32)
                else:
                    cfg = GeneralCaseConfig(**_AUDIT_GENERAL_CONFIG)
                    kern = FastGeneralKernel(arch, config=cfg,
                                             bank_policy=policy)
                    oh = cfg.h * int(rng.integers(1, 4))
                    ow = cfg.w * int(rng.integers(1, 3))
                    channels = int(rng.integers(1, 4)) * cfg.csh
                    f_count = int(rng.integers(1, 3)) * cfg.ftb
                    image = rng.standard_normal(
                        (channels, oh + k - 1, ow + k - 1)).astype(np.float32)
                    filters = rng.standard_normal(
                        (f_count, channels, k, k)).astype(np.float32)
                record = {
                    "case": case,
                    "policy": policy.value,
                    "trial": trial,
                    "kernel": kern.name,
                    "image": list(image.shape),
                    "filters": list(filters.shape),
                }
                try:
                    _, cost = kern.run_traced(image, filters, audit=True)
                except AuditMismatchError as exc:
                    failures += 1
                    record["ok"] = False
                    record["error"] = str(exc)
                    print("AUDIT FAIL %s/%s trial %d: %s"
                          % (case, policy.value, trial, exc), file=sys.stderr)
                else:
                    record["ok"] = True
                    record["cycles"] = float(cost.ledger.smem_cycles)
                    record["gmem_transactions"] = float(
                        cost.ledger.gmem_read_transactions
                        + cost.ledger.gmem_write_transactions)
                records.append(record)
    if args.json:
        print(json.dumps({
            "arch": args.arch,
            "seed": args.seed,
            "trials": records,
            "failures": failures,
        }, indent=2, sort_keys=True))
    else:
        for rec in records:
            status = "ok" if rec["ok"] else "MISMATCH"
            print("%-8s %-10s trial %d  image=%-16s filters=%-16s %s"
                  % (rec["case"], rec["policy"], rec["trial"],
                     "x".join(map(str, rec["image"])),
                     "x".join(map(str, rec["filters"])), status))
        print("audit: %d trial(s), %d mismatch(es) on %s"
              % (len(records), failures, ARCHITECTURES[args.arch].name))
    return 1 if failures else 0


def _perf_delta_rows(baseline: dict, current: dict):
    """Baseline-vs-current rows over shared metrics, nothing enforced."""
    from repro.obs import perf

    result = perf.compare_points(current, baseline,
                                 tolerance=float("inf"),
                                 model_tolerance=float("inf"))
    return result.rows


def _perf_rows_table(rows) -> List[str]:
    header = "%-16s %-22s %-8s %12s %12s %9s" % (
        "workload", "metric", "kind", "baseline", "current", "delta")
    lines = [header, "-" * len(header)]
    for row in rows:
        delta = row.delta_pct
        finite = delta == delta and abs(delta) != float("inf")
        delta_text = ("%+8.1f%%" % delta) if finite else "     new"
        lines.append("%-16s %-22s %-8s %12.6g %12.6g %9s" % (
            row.workload, row.metric, row.kind, row.baseline, row.current,
            delta_text))
    return lines


def _perf_point_line(index: int, point: dict) -> str:
    import time as _time

    meta = point["meta"]
    when = "?"
    if "recorded_unix" in meta:
        when = _time.strftime("%Y-%m-%d %H:%M",
                              _time.localtime(meta["recorded_unix"]))
    tags = ""
    if meta.get("backfilled"):
        tags += " backfilled"
    if meta.get("note"):
        tags += " note=%r" % meta["note"]
    return ("[%d] %s  source=%-10s scale=%-5s %s@%s%s"
            % (index, when, meta.get("source", "?"), meta.get("scale", "?"),
               meta.get("version", "?"), meta.get("git_sha", "?"), tags))


@contextlib.contextmanager
def _audit_env(enabled: bool):
    """Set REPRO_AUDIT=1 around a suite run, restoring the prior value."""
    from repro.gpu.fastsim import AUDIT_ENV

    if not enabled:
        yield
        return
    prior = os.environ.get(AUDIT_ENV)
    os.environ[AUDIT_ENV] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(AUDIT_ENV, None)
        else:
            os.environ[AUDIT_ENV] = prior


def _perf_record(args) -> int:
    from repro import obs
    from repro.obs import perf
    from repro.obs.perf import suite as perf_suite

    obs.reset_registry()
    tracer = obs.reset_tracer()
    with _audit_env(args.audit):
        point = perf_suite.run_suite(
            scale=args.scale, jobs=_resolve_jobs_arg(args), note=args.note,
            progress=lambda msg: print(msg, file=sys.stderr))
    if args.flamegraph:
        with open(args.flamegraph, "w") as fh:
            fh.write(perf.collapsed_stacks(tracer))
        print("flamegraph written to %s" % args.flamegraph, file=sys.stderr)
    if args.emit_trace:
        obs.write_chrome_trace(args.emit_trace, tracer,
                               registry=obs.get_registry(), profile=True)
        print("trace written to %s" % args.emit_trace, file=sys.stderr)
    if args.point_out:
        with open(args.point_out, "w") as fh:
            json.dump(point, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print("point written to %s" % args.point_out, file=sys.stderr)
    if not args.no_append:
        doc = perf.append_point(args.trajectory, point)
        print("appended point %d to %s"
              % (len(doc["points"]) - 1, args.trajectory), file=sys.stderr)
    if args.json:
        print(json.dumps(point, indent=2, sort_keys=True))
        return 0
    meta = point["meta"]
    print("recorded scale=%s calibration=%.4fs (%s@%s)"
          % (meta["scale"], meta.get("calibration_s", 0.0),
             meta["version"], meta.get("git_sha", "?")))
    for workload, metrics in sorted(point["workloads"].items()):
        others = ", ".join(
            "%s=%.6g" % (k, v) for k, v in sorted(metrics.items())
            if k != "wall_s")
        print("  %-14s wall %8.3fs  %s"
              % (workload, metrics.get("wall_s", 0.0), others))
    return 0


def _perf_report(args) -> int:
    from repro.obs import perf

    doc = perf.load_trajectory(args.trajectory)
    points = doc["points"]
    if args.json:
        deltas = []
        for i in range(1, len(points)):
            rows = _perf_delta_rows(points[i - 1], points[i])
            deltas.append({
                "from": i - 1, "to": i,
                "rows": [{
                    "workload": r.workload, "metric": r.metric,
                    "kind": r.kind, "baseline": r.baseline,
                    "current": r.current, "delta_pct": r.delta_pct,
                } for r in rows],
            })
        print(json.dumps({
            "path": args.trajectory, "schema": doc["schema"],
            "points": [p["meta"] for p in points], "deltas": deltas,
        }, indent=2, sort_keys=True))
        return 0
    print("trajectory %s: %d point%s (%s)"
          % (args.trajectory, len(points), "" if len(points) == 1 else "s",
             doc["schema"]))
    for i, point in enumerate(points):
        print(_perf_point_line(i, point))
        print("      workloads: %s" % ", ".join(sorted(point["workloads"])))
    for i in range(1, len(points)):
        rows = _perf_delta_rows(points[i - 1], points[i])
        print()
        print("delta [%d] -> [%d]:" % (i - 1, i))
        if not rows:
            print("  (no shared workload metrics)")
            continue
        for line in _perf_rows_table(rows):
            print("  " + line)
    return 0


def _perf_diff(args) -> int:
    from repro.obs import perf

    doc = perf.load_trajectory(args.trajectory)
    points = doc["points"]
    indices = args.indices or [-2, -1]
    if len(indices) != 2:
        print("perf diff takes exactly two point indices", file=sys.stderr)
        return 2
    resolved = []
    for index in indices:
        real = index if index >= 0 else len(points) + index
        if not 0 <= real < len(points):
            print("point index %d is out of range (trajectory has %d "
                  "points)" % (index, len(points)), file=sys.stderr)
            return 2
        resolved.append(real)
    base_i, cur_i = resolved
    rows = _perf_delta_rows(points[base_i], points[cur_i])
    if args.json:
        print(json.dumps([{
            "workload": r.workload, "metric": r.metric, "kind": r.kind,
            "baseline": r.baseline, "current": r.current,
            "delta_pct": r.delta_pct,
        } for r in rows], indent=2, sort_keys=True))
        return 0
    print(_perf_point_line(base_i, points[base_i]))
    print(_perf_point_line(cur_i, points[cur_i]))
    if not rows:
        print("(no shared workload metrics)")
        return 0
    for line in _perf_rows_table(rows):
        print(line)
    return 0


def _perf_gate(args) -> int:
    from repro import obs
    from repro.obs import perf

    doc = perf.load_trajectory(args.trajectory)
    baseline = perf.select_baseline(doc, scale=args.scale)
    if baseline is None:
        print("no baseline point at scale %r in %s; record one with "
              "`repro perf record --scale %s`"
              % (args.scale, args.trajectory, args.scale), file=sys.stderr)
        return 2
    budgets = perf.parse_budgets(args.budget)

    if args.point:
        try:
            with open(args.point) as fh:
                current = perf.validate_point(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            print("cannot load point %s: %s" % (args.point, exc),
                  file=sys.stderr)
            return 2
    else:
        obs.reset_registry()
        tracer = obs.reset_tracer()
        from repro.obs.perf import suite as perf_suite

        with _audit_env(args.audit):
            current = perf_suite.run_suite(
                scale=args.scale, jobs=_resolve_jobs_arg(args),
                progress=lambda msg: print(msg, file=sys.stderr))
        if args.flamegraph:
            with open(args.flamegraph, "w") as fh:
                fh.write(perf.collapsed_stacks(tracer))
            print("flamegraph written to %s" % args.flamegraph,
                  file=sys.stderr)

    result = perf.compare_points(
        current, baseline, tolerance=args.tolerance,
        model_tolerance=args.model_tolerance, budgets=budgets)
    if args.json:
        print(json.dumps({
            "passed": result.passed,
            "calibration_ratio": result.calibration_ratio,
            "baseline_meta": result.baseline_meta,
            "rows": [{
                "workload": r.workload, "metric": r.metric, "kind": r.kind,
                "baseline": r.baseline, "current": r.current,
                "budget": r.budget, "violated": r.violated,
                "delta_pct": r.delta_pct,
            } for r in result.rows],
            "violations": [{
                "workload": v.workload, "metric": v.metric,
                "message": v.message,
            } for v in result.violations],
        }, indent=2, sort_keys=True))
    else:
        print(perf.format_comparison(result, title="repro perf gate"))
    return 0 if result.passed else 1


def _cmd_perf(args) -> int:
    from repro.errors import ObservabilityError

    try:
        if args.perf_command == "record":
            return _perf_record(args)
        if args.perf_command == "report":
            return _perf_report(args)
        if args.perf_command == "diff":
            return _perf_diff(args)
        if args.perf_command == "gate":
            return _perf_gate(args)
    except ObservabilityError as exc:
        print("perf: %s" % exc, file=sys.stderr)
        return 2
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import ParallelError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "summary":
            return _cmd_summary(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "obs":
            return _cmd_obs(args)
        if args.command == "backends":
            return _cmd_backends(args)
        if args.command == "claims":
            return _cmd_claims(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "perf":
            return _cmd_perf(args)
    except ParallelError as exc:
        print("bad --jobs / REPRO_JOBS value: %s" % exc, file=sys.stderr)
        return 2
    return 2


if __name__ == "__main__":
    sys.exit(main())
