"""Command-line interface: regenerate any of the paper's experiments.

::

    python -m repro list                     # available experiment ids
    python -m repro run fig2                 # regenerate one experiment
    python -m repro run fig8a --arch maxwell # on another architecture
    python -m repro run all --skip-slow      # everything quick
    python -m repro summary                  # headline paper-vs-measured lines

Tables are printed to stdout (the same renderer the benchmark suite
uses to fill ``benchmarks/output/``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.report import format_experiment, format_summary_line
from repro.gpu.arch import ARCHITECTURES

__all__ = ["main", "build_parser"]

#: Experiments that take noticeably longer than a second to regenerate.
SLOW_EXPERIMENTS = ("table1",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DAC'17 convolution paper's experiments "
        "on the simulated GPU substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--arch", choices=sorted(ARCHITECTURES), default="kepler",
                     help="architecture preset (where the experiment takes one)")
    run.add_argument("--precision", type=int, default=1,
                     help="decimal places in the table")
    run.add_argument("--skip-slow", action="store_true",
                     help="with 'all': skip the long-running experiments")

    sub.add_parser("summary", help="print the headline paper-vs-measured lines")

    claims = sub.add_parser("claims",
                            help="verify every quantitative claim of the paper")
    claims.add_argument("ids", nargs="*",
                        help="claim ids to check (default: all)")
    return parser


def _build(exp_id: str, arch_name: str):
    builder = ALL_EXPERIMENTS[exp_id]
    arch = ARCHITECTURES[arch_name]
    try:
        params = inspect.signature(builder).parameters
    except (TypeError, ValueError):
        params = {}
    if "arch" in params:
        return builder(arch=arch)
    return builder()


def _cmd_list() -> int:
    for exp_id in ALL_EXPERIMENTS:
        slow = "  (slow)" if exp_id in SLOW_EXPERIMENTS else ""
        print("%s%s" % (exp_id, slow))
    return 0


def _cmd_run(args) -> int:
    if args.experiment == "all":
        ids = [e for e in ALL_EXPERIMENTS
               if not (args.skip_slow and e in SLOW_EXPERIMENTS)]
    elif args.experiment in ALL_EXPERIMENTS:
        ids = [args.experiment]
    else:
        print("unknown experiment %r; try: python -m repro list"
              % args.experiment, file=sys.stderr)
        return 2
    for exp_id in ids:
        exp = _build(exp_id, args.arch)
        print(format_experiment(exp, precision=args.precision))
        print()
    return 0


def _cmd_summary() -> int:
    from repro.bench.figures import fig2_gemm, fig7_special, fig8_general

    fig2 = fig2_gemm()
    print(format_summary_line(fig2, "MAGMA", "cuBLAS", paper_value="2.4x"))
    for k in (1, 3, 5):
        exp = fig7_special(k)
        paper = {1: "6.16x", 3: "6.43x", 5: "2.90x"}[k]
        print(format_summary_line(exp, "ours", "cuDNN", paper_value=paper))
    for k in (3, 5, 7):
        exp = fig8_general(k)
        paper = {3: "+30.5%", 5: "+45.3%", 7: "+30.8%"}[k]
        print(format_summary_line(exp, "ours", "cuDNN", paper_value=paper))
    return 0


def _cmd_claims(args) -> int:
    from repro.bench.claims import format_claim_results, verify_claims

    ids = args.ids or None
    pairs = verify_claims(ids)
    if not pairs:
        print("no matching claims; see repro.bench.claims.PAPER_CLAIMS",
              file=sys.stderr)
        return 2
    print(format_claim_results(pairs))
    return 0 if all(r.supported for _, r in pairs) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "summary":
        return _cmd_summary()
    if args.command == "claims":
        return _cmd_claims(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
