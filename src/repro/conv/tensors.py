"""Convolution problem descriptions and tensor-layout helpers.

The paper parameterizes its experiments by image size ``N`` (square
images), filter size ``K``, channel count ``C`` and filter count ``F``
(Figs. 7–8).  :class:`ConvProblem` captures one such instance plus the
boundary-handling mode, and provides the derived quantities every kernel
and benchmark needs (output extent, nominal FLOPs, tensor shapes).

Beyond the paper's dense unit-stride case the problem model carries the
axes real CNN layers use: ``stride``, ``dilation``, ``groups`` (with
``groups == channels`` being depthwise convolution), and the tensor
``layout`` (NCHW or NHWC).  All four default to the paper's setting —
stride 1, dilation 1, a single group, channels-first — and every derived
quantity reduces exactly to the historical formula at those defaults.

Layouts follow the paper (and Caffe/cuDNN of its era) by default: images
are CHW, filters are F x C/g x K x K, outputs are F x OH x OW, all
``float32`` — the 4-byte ``W_CD`` of the paper's bank-width model.  NHWC
problems carry HWC images and OH x OW x F outputs; kernels canonicalize
to channels-first internally via :meth:`ConvProblem.chw_image`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ShapeError

__all__ = ["Padding", "Layout", "ConvProblem", "FLOAT_BYTES"]

#: Bytes per element of the basic computation data type (float).
FLOAT_BYTES = 4


class Padding(enum.Enum):
    """Boundary handling for the convolution."""

    VALID = "valid"    # output shrinks by the dilated span minus one
    SAME = "same"      # zero-pad so output extent equals ceil(extent/stride)


class Layout(enum.Enum):
    """Memory order of image and output tensors (no batch dimension)."""

    NCHW = "nchw"      # channels-first: image (C,H,W), output (F,OH,OW)
    NHWC = "nhwc"      # channels-last:  image (H,W,C), output (OH,OW,F)


@dataclass(frozen=True)
class ConvProblem:
    """One convolution instance: C x H x W image, F filters of size K x K.

    ``stride``/``dilation`` are square (the same factor on both spatial
    axes), matching the shapes CNN layers actually use.  ``groups``
    partitions channels and filters into independent convolutions;
    ``groups == channels`` is depthwise.  ``layout`` states how the
    *arrays* are ordered — the arithmetic is layout-invariant.
    """

    height: int
    width: int
    channels: int
    filters: int
    kernel_size: int
    padding: Padding = Padding.VALID
    stride: int = 1
    dilation: int = 1
    groups: int = 1
    layout: Layout = Layout.NCHW

    def __post_init__(self):
        if min(self.height, self.width, self.channels, self.filters) < 1:
            raise ShapeError("all convolution extents must be positive in %s"
                             % (self.describe(),))
        if self.kernel_size < 1:
            raise ShapeError("kernel_size must be positive in %s"
                             % (self.describe(),))
        if min(self.stride, self.dilation, self.groups) < 1:
            raise ShapeError(
                "stride, dilation and groups must be positive in %s"
                % (self.describe(),))
        if self.channels % self.groups != 0:
            raise ShapeError(
                "groups=%d does not divide channels=%d in %s"
                % (self.groups, self.channels, self.describe()))
        if self.filters % self.groups != 0:
            raise ShapeError(
                "groups=%d does not divide filters=%d in %s"
                % (self.groups, self.filters, self.describe()))
        if self.padding is Padding.VALID:
            if self.span > min(self.height, self.width):
                raise ShapeError(
                    "a %dx%d filter (dilated span %d) does not fit a %dx%d "
                    "image in 'valid' mode: %s"
                    % (self.kernel_size, self.kernel_size, self.span,
                       self.height, self.width, self.describe())
                )
        elif self.kernel_size % 2 == 0:
            raise ShapeError("'same' padding requires an odd kernel_size: %s"
                             % (self.describe(),))

    # ------------------------------------------------------------------
    @classmethod
    def square(
        cls,
        n: int,
        kernel_size: int,
        channels: int = 1,
        filters: int = 1,
        padding: Padding = Padding.VALID,
        stride: int = 1,
        dilation: int = 1,
        groups: int = 1,
        layout: Layout = Layout.NCHW,
    ) -> "ConvProblem":
        """The paper's (N, K, C, F) parameterization plus the new axes."""
        return cls(
            height=n,
            width=n,
            channels=channels,
            filters=filters,
            kernel_size=kernel_size,
            padding=padding,
            stride=stride,
            dilation=dilation,
            groups=groups,
            layout=layout,
        )

    def describe(self) -> str:
        """The full problem tuple, for error messages and logs."""
        return ("conv(h=%d, w=%d, c=%d, f=%d, k=%d, pad=%s, stride=%d, "
                "dilation=%d, groups=%d, layout=%s)"
                % (self.height, self.width, self.channels, self.filters,
                   self.kernel_size, self.padding.value, self.stride,
                   self.dilation, self.groups, self.layout.value))

    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        """Dilated receptive-field extent: ``dilation * (K-1) + 1``."""
        return self.dilation * (self.kernel_size - 1) + 1

    @property
    def has_default_axes(self) -> bool:
        """True for the paper's setting: dense, ungrouped, channels-first."""
        return (self.stride == 1 and self.dilation == 1
                and self.groups == 1 and self.layout is Layout.NCHW)

    @property
    def channels_per_group(self) -> int:
        return self.channels // self.groups

    @property
    def filters_per_group(self) -> int:
        return self.filters // self.groups

    @property
    def pad(self) -> int:
        """Zero-padding applied to each image border."""
        if self.padding is Padding.SAME:
            return self.dilation * (self.kernel_size - 1) // 2
        return 0

    @property
    def out_height(self) -> int:
        if self.padding is Padding.SAME:
            return (self.height - 1) // self.stride + 1
        return (self.height - self.span) // self.stride + 1

    @property
    def out_width(self) -> int:
        if self.padding is Padding.SAME:
            return (self.width - 1) // self.stride + 1
        return (self.width - self.span) // self.stride + 1

    @property
    def image_shape(self) -> tuple:
        if self.layout is Layout.NHWC:
            return (self.height, self.width, self.channels)
        return (self.channels, self.height, self.width)

    @property
    def filter_shape(self) -> tuple:
        return (self.filters, self.channels_per_group,
                self.kernel_size, self.kernel_size)

    @property
    def output_shape(self) -> tuple:
        if self.layout is Layout.NHWC:
            return (self.out_height, self.out_width, self.filters)
        return (self.filters, self.out_height, self.out_width)

    @property
    def flops(self) -> int:
        """Nominal operation count: one multiply + one add per tap.

        This is the count the paper's GFlop/s figures are normalized by.
        Grouping divides the per-output channel fan-in by ``groups``.
        """
        k = self.kernel_size
        return (2 * k * k * self.channels_per_group * self.filters
                * self.out_height * self.out_width)

    @property
    def image_bytes(self) -> int:
        return self.channels * self.height * self.width * FLOAT_BYTES

    @property
    def filter_bytes(self) -> int:
        k = self.kernel_size
        return self.filters * self.channels_per_group * k * k * FLOAT_BYTES

    @property
    def output_bytes(self) -> int:
        return self.filters * self.out_height * self.out_width * FLOAT_BYTES

    @property
    def max_pixel_reuse(self) -> int:
        """Upper bound on uses of one input pixel: K * K * F/g (Sec. 2.2)."""
        return self.kernel_size * self.kernel_size * self.filters_per_group

    def as_valid(self) -> "ConvProblem":
        """The equivalent 'valid' problem on the zero-padded image.

        Kernels implement only the valid case; 'same' problems are run
        by padding the image first and converting with this method.
        """
        if self.padding is Padding.VALID:
            return self
        return replace(
            self,
            height=self.height + 2 * self.pad,
            width=self.width + 2 * self.pad,
            padding=Padding.VALID,
        )

    def single_group(self) -> "ConvProblem":
        """One group's slice of a grouped problem, as an NCHW problem.

        A grouped convolution is ``groups`` independent convolutions of
        ``channels/groups`` input channels onto ``filters/groups``
        outputs; kernels that handle grouping by iteration work on this
        per-group problem.
        """
        return replace(
            self,
            channels=self.channels_per_group,
            filters=self.filters_per_group,
            groups=1,
            layout=Layout.NCHW,
        )

    # ------------------------------------------------------------------
    def check_image(self, image: np.ndarray) -> np.ndarray:
        """Validate and canonicalize an image array, in problem layout.

        2-D arrays are promoted to one channel (unambiguous in either
        layout).  The returned array keeps the problem's layout; use
        :meth:`chw_image` when channels-first indexing is needed.
        """
        arr = np.asarray(image, dtype=np.float32)
        if arr.ndim == 2:
            arr = (arr[..., np.newaxis] if self.layout is Layout.NHWC
                   else arr[np.newaxis])
        if arr.shape != self.image_shape:
            raise ShapeError(
                "image shape %s does not match %s layout shape %s of %s"
                % (arr.shape, self.layout.value, self.image_shape,
                   self.describe())
            )
        return arr

    def chw_image(self, image: np.ndarray) -> np.ndarray:
        """Validate ``image`` and return it channels-first (C, H, W)."""
        arr = self.check_image(image)
        if self.layout is Layout.NHWC:
            arr = np.ascontiguousarray(np.moveaxis(arr, 2, 0))
        return arr

    def layout_output(self, chw_out: np.ndarray) -> np.ndarray:
        """Convert a canonical (F, OH, OW) output into the problem layout."""
        if self.layout is Layout.NHWC:
            return np.ascontiguousarray(np.moveaxis(chw_out, 0, 2))
        return chw_out

    def check_filters(self, filters: np.ndarray) -> np.ndarray:
        """Validate and canonicalize a filter array (KK, FKK or FCKK)."""
        arr = np.asarray(filters, dtype=np.float32)
        if arr.ndim == 2:
            arr = arr[np.newaxis, np.newaxis]
        elif arr.ndim == 3:
            arr = arr[:, np.newaxis]
        if arr.shape != self.filter_shape:
            raise ShapeError(
                "filter shape %s does not match shape %s of %s"
                % (arr.shape, self.filter_shape, self.describe())
            )
        return arr

    def padded_image(self, image: np.ndarray) -> np.ndarray:
        """Zero-pad ``image`` per the padding mode; always returns (C,H,W)."""
        arr = self.chw_image(image)
        if self.pad == 0:
            return arr
        p = self.pad
        return np.pad(arr, ((0, 0), (p, p), (p, p)))

    def random_instance(self, seed: int = 0) -> tuple:
        """A reproducible (image, filters) pair for tests and benchmarks."""
        rng = np.random.default_rng(seed)
        image = rng.standard_normal(self.image_shape).astype(np.float32)
        filters = rng.standard_normal(self.filter_shape).astype(np.float32)
        return image, filters
