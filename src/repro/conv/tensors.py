"""Convolution problem descriptions and tensor-layout helpers.

The paper parameterizes its experiments by image size ``N`` (square
images), filter size ``K``, channel count ``C`` and filter count ``F``
(Figs. 7–8).  :class:`ConvProblem` captures one such instance plus the
boundary-handling mode, and provides the derived quantities every kernel
and benchmark needs (output extent, nominal FLOPs, tensor shapes).

Layouts follow the paper (and Caffe/cuDNN of its era): images are CHW,
filters are FCKK, outputs are F x OH x OW, all ``float32`` — the 4-byte
``W_CD`` of the paper's bank-width model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ShapeError

__all__ = ["Padding", "ConvProblem", "FLOAT_BYTES"]

#: Bytes per element of the basic computation data type (float).
FLOAT_BYTES = 4


class Padding(enum.Enum):
    """Boundary handling for the convolution."""

    VALID = "valid"    # output shrinks by K-1
    SAME = "same"      # zero-pad so output extent equals input extent


@dataclass(frozen=True)
class ConvProblem:
    """One convolution instance: C x H x W image, F filters of size K x K."""

    height: int
    width: int
    channels: int
    filters: int
    kernel_size: int
    padding: Padding = Padding.VALID

    def __post_init__(self):
        if min(self.height, self.width, self.channels, self.filters) < 1:
            raise ShapeError("all convolution extents must be positive")
        if self.kernel_size < 1:
            raise ShapeError("kernel_size must be positive")
        if self.padding is Padding.VALID:
            if self.kernel_size > min(self.height, self.width):
                raise ShapeError(
                    "a %dx%d filter does not fit a %dx%d image in 'valid' mode"
                    % (self.kernel_size, self.kernel_size, self.height, self.width)
                )
        elif self.kernel_size % 2 == 0:
            raise ShapeError("'same' padding requires an odd kernel_size")

    # ------------------------------------------------------------------
    @classmethod
    def square(
        cls,
        n: int,
        kernel_size: int,
        channels: int = 1,
        filters: int = 1,
        padding: Padding = Padding.VALID,
    ) -> "ConvProblem":
        """The paper's (N, K, C, F) parameterization."""
        return cls(
            height=n,
            width=n,
            channels=channels,
            filters=filters,
            kernel_size=kernel_size,
            padding=padding,
        )

    @property
    def pad(self) -> int:
        """Zero-padding applied to each image border."""
        return (self.kernel_size - 1) // 2 if self.padding is Padding.SAME else 0

    @property
    def out_height(self) -> int:
        if self.padding is Padding.SAME:
            return self.height
        return self.height - self.kernel_size + 1

    @property
    def out_width(self) -> int:
        if self.padding is Padding.SAME:
            return self.width
        return self.width - self.kernel_size + 1

    @property
    def image_shape(self) -> tuple:
        return (self.channels, self.height, self.width)

    @property
    def filter_shape(self) -> tuple:
        return (self.filters, self.channels, self.kernel_size, self.kernel_size)

    @property
    def output_shape(self) -> tuple:
        return (self.filters, self.out_height, self.out_width)

    @property
    def flops(self) -> int:
        """Nominal operation count: one multiply + one add per tap.

        This is the count the paper's GFlop/s figures are normalized by.
        """
        k = self.kernel_size
        return 2 * k * k * self.channels * self.filters * self.out_height * self.out_width

    @property
    def image_bytes(self) -> int:
        return self.channels * self.height * self.width * FLOAT_BYTES

    @property
    def filter_bytes(self) -> int:
        k = self.kernel_size
        return self.filters * self.channels * k * k * FLOAT_BYTES

    @property
    def output_bytes(self) -> int:
        return self.filters * self.out_height * self.out_width * FLOAT_BYTES

    @property
    def max_pixel_reuse(self) -> int:
        """Upper bound on uses of one input pixel: K * K * F (Sec. 2.2)."""
        return self.kernel_size * self.kernel_size * self.filters

    def as_valid(self) -> "ConvProblem":
        """The equivalent 'valid' problem on the zero-padded image.

        Kernels implement only the valid case; 'same' problems are run
        by padding the image first and converting with this method.
        """
        if self.padding is Padding.VALID:
            return self
        return replace(
            self,
            height=self.height + 2 * self.pad,
            width=self.width + 2 * self.pad,
            padding=Padding.VALID,
        )

    # ------------------------------------------------------------------
    def check_image(self, image: np.ndarray) -> np.ndarray:
        """Validate and canonicalize an image array (HW or CHW)."""
        arr = np.asarray(image, dtype=np.float32)
        if arr.ndim == 2:
            arr = arr[np.newaxis]
        if arr.shape != self.image_shape:
            raise ShapeError(
                "image shape %s does not match problem %s" % (arr.shape, self.image_shape)
            )
        return arr

    def check_filters(self, filters: np.ndarray) -> np.ndarray:
        """Validate and canonicalize a filter array (KK, FKK or FCKK)."""
        arr = np.asarray(filters, dtype=np.float32)
        if arr.ndim == 2:
            arr = arr[np.newaxis, np.newaxis]
        elif arr.ndim == 3:
            arr = arr[:, np.newaxis]
        if arr.shape != self.filter_shape:
            raise ShapeError(
                "filter shape %s does not match problem %s" % (arr.shape, self.filter_shape)
            )
        return arr

    def padded_image(self, image: np.ndarray) -> np.ndarray:
        """Zero-pad ``image`` according to the padding mode."""
        arr = self.check_image(image)
        if self.pad == 0:
            return arr
        p = self.pad
        return np.pad(arr, ((0, 0), (p, p), (p, p)))

    def random_instance(self, seed: int = 0) -> tuple:
        """A reproducible (image, filters) pair for tests and benchmarks."""
        rng = np.random.default_rng(seed)
        image = rng.standard_normal(self.image_shape).astype(np.float32)
        filters = rng.standard_normal(self.filter_shape).astype(np.float32)
        return image, filters
