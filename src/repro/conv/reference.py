"""Reference convolution implementations.

These are the golden models every kernel in :mod:`repro.core` and
:mod:`repro.baselines` is verified against.  Like the paper (and the
deep-learning libraries it compares with), "convolution" here means
cross-correlation: filters are not flipped.

The implementation is a tap-loop over (dy, dx) with a ``tensordot``
across channels, which is exact, simple to audit, and fast enough to act
as a golden model for multi-megapixel tests.  It handles every problem
axis — stride, dilation, groups, and both layouts — and at the default
axes it reduces to the historical dense path operation-for-operation.

:func:`conv2d_oracle` is the deliberately-naive seven-loop scalar model
(filters, rows, cols, channels, taps) the generalized reference is
property-tested against; it shares no vectorized slicing with the
reference, so an indexing mistake in one cannot hide in the other.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError

__all__ = ["conv2d_reference", "conv2d_single_channel", "conv2d_oracle"]


def conv2d_reference(
    image: np.ndarray,
    filters: np.ndarray,
    padding: Padding = Padding.VALID,
    problem: Optional[ConvProblem] = None,
) -> np.ndarray:
    """Multi-channel 2-D cross-correlation.

    Parameters
    ----------
    image:
        ``(C, H, W)`` array (a 2-D array is promoted to one channel);
        ``(H, W, C)`` when ``problem.layout`` is NHWC.
    filters:
        ``(F, C/groups, K, K)`` array (2-D/3-D arrays are promoted).
    padding:
        Boundary mode; 'same' zero-pads so the output matches the input
        extent.  Ignored when ``problem`` is given.
    problem:
        Full problem description carrying stride/dilation/groups/layout.
        When omitted, the problem is inferred from the array shapes with
        default axes (stride 1, dilation 1, one group, NCHW).

    Returns
    -------
    ``(F, OH, OW)`` float32 array (``(OH, OW, F)`` for NHWC problems).
    """
    if problem is None:
        img = np.asarray(image, dtype=np.float32)
        if img.ndim == 2:
            img = img[np.newaxis]
        flt = np.asarray(filters, dtype=np.float32)
        if flt.ndim == 2:
            flt = flt[np.newaxis, np.newaxis]
        elif flt.ndim == 3:
            flt = flt[:, np.newaxis]
        if img.ndim != 3 or flt.ndim != 4:
            raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
        if flt.shape[2] != flt.shape[3]:
            raise ShapeError("only square filters are supported")

        problem = ConvProblem(
            height=img.shape[1],
            width=img.shape[2],
            channels=img.shape[0],
            filters=flt.shape[0],
            kernel_size=flt.shape[2],
            padding=padding,
        )
        if flt.shape[1] != img.shape[0]:
            raise ShapeError(
                "filters have %d channels, image has %d"
                % (flt.shape[1], problem.channels)
            )
        image = img
        filters = flt

    img = problem.padded_image(image)
    flt = problem.check_filters(filters)

    k = problem.kernel_size
    s, d, g = problem.stride, problem.dilation, problem.groups
    oh, ow = problem.out_height, problem.out_width
    cpg, fpg = problem.channels_per_group, problem.filters_per_group
    out = np.zeros((problem.filters, oh, ow), dtype=np.float64)
    for dy in range(k):
        for dx in range(k):
            window = img[:,
                         dy * d : dy * d + (oh - 1) * s + 1 : s,
                         dx * d : dx * d + (ow - 1) * s + 1 : s]
            taps = flt[:, :, dy, dx]
            if g == 1:
                out += np.tensordot(taps, window, axes=([1], [0]))
            else:
                for gi in range(g):
                    out[gi * fpg : (gi + 1) * fpg] += np.tensordot(
                        taps[gi * fpg : (gi + 1) * fpg],
                        window[gi * cpg : (gi + 1) * cpg],
                        axes=([1], [0]),
                    )
    return problem.layout_output(out.astype(np.float32))


def conv2d_single_channel(image: np.ndarray, filters: np.ndarray,
                          padding: Padding = Padding.VALID) -> np.ndarray:
    """The paper's special case: one input channel (Sec. 3).

    ``image`` is ``(H, W)``; ``filters`` is ``(F, K, K)`` or ``(K, K)``.
    """
    img = np.asarray(image, dtype=np.float32)
    if img.ndim != 2:
        raise ShapeError("special-case image must be 2-D, got %d-D" % img.ndim)
    return conv2d_reference(img, filters, padding)


def conv2d_oracle(problem: ConvProblem, image: np.ndarray,
                  filters: np.ndarray) -> np.ndarray:
    """Seven-loop scalar cross-correlation: the oracle of last resort.

    Wilfully unoptimized — every output element is an explicit scalar
    accumulation over (channel, tap-row, tap-col) — so it exercises the
    stride/dilation/group index arithmetic one multiply at a time.  Use
    only on small shapes.
    """
    img = problem.padded_image(image).astype(np.float64)
    flt = problem.check_filters(filters).astype(np.float64)
    k = problem.kernel_size
    s, d = problem.stride, problem.dilation
    oh, ow = problem.out_height, problem.out_width
    cpg, fpg = problem.channels_per_group, problem.filters_per_group
    out = np.zeros((problem.filters, oh, ow), dtype=np.float64)
    for f in range(problem.filters):
        c0 = (f // fpg) * cpg
        for oy in range(oh):
            for ox in range(ow):
                acc = 0.0
                for c in range(cpg):
                    for ky in range(k):
                        for kx in range(k):
                            acc += (img[c0 + c, oy * s + ky * d, ox * s + kx * d]
                                    * flt[f, c, ky, kx])
                out[f, oy, ox] = acc
    return problem.layout_output(out.astype(np.float32))
