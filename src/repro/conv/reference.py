"""Reference convolution implementations.

These are the golden models every kernel in :mod:`repro.core` and
:mod:`repro.baselines` is verified against.  Like the paper (and the
deep-learning libraries it compares with), "convolution" here means
cross-correlation: filters are not flipped.

The implementation is a tap-loop over (dy, dx) with a ``tensordot``
across channels, which is exact, simple to audit, and fast enough to act
as a golden model for multi-megapixel tests.
"""

from __future__ import annotations

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError

__all__ = ["conv2d_reference", "conv2d_single_channel"]


def conv2d_reference(
    image: np.ndarray,
    filters: np.ndarray,
    padding: Padding = Padding.VALID,
) -> np.ndarray:
    """Multi-channel 2-D cross-correlation.

    Parameters
    ----------
    image:
        ``(C, H, W)`` array (a 2-D array is promoted to one channel).
    filters:
        ``(F, C, K, K)`` array (2-D/3-D arrays are promoted).
    padding:
        Boundary mode; 'same' zero-pads so the output matches the input
        extent.

    Returns
    -------
    ``(F, OH, OW)`` float32 array.
    """
    img = np.asarray(image, dtype=np.float32)
    if img.ndim == 2:
        img = img[np.newaxis]
    flt = np.asarray(filters, dtype=np.float32)
    if flt.ndim == 2:
        flt = flt[np.newaxis, np.newaxis]
    elif flt.ndim == 3:
        flt = flt[:, np.newaxis]
    if img.ndim != 3 or flt.ndim != 4:
        raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
    if flt.shape[2] != flt.shape[3]:
        raise ShapeError("only square filters are supported")

    problem = ConvProblem(
        height=img.shape[1],
        width=img.shape[2],
        channels=img.shape[0],
        filters=flt.shape[0],
        kernel_size=flt.shape[2],
        padding=padding,
    )
    img = problem.padded_image(img)
    if flt.shape[1] != img.shape[0]:
        raise ShapeError(
            "filters have %d channels, image has %d" % (flt.shape[1], problem.channels)
        )

    k = problem.kernel_size
    oh, ow = problem.out_height, problem.out_width
    out = np.zeros((problem.filters, oh, ow), dtype=np.float64)
    for dy in range(k):
        for dx in range(k):
            window = img[:, dy : dy + oh, dx : dx + ow]
            taps = flt[:, :, dy, dx]
            out += np.tensordot(taps, window, axes=([1], [0]))
    return out.astype(np.float32)


def conv2d_single_channel(image: np.ndarray, filters: np.ndarray,
                          padding: Padding = Padding.VALID) -> np.ndarray:
    """The paper's special case: one input channel (Sec. 3).

    ``image`` is ``(H, W)``; ``filters`` is ``(F, K, K)`` or ``(K, K)``.
    """
    img = np.asarray(image, dtype=np.float32)
    if img.ndim != 2:
        raise ShapeError("special-case image must be 2-D, got %d-D" % img.ndim)
    return conv2d_reference(img, filters, padding)
