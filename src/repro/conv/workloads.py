"""Workload sweeps for the paper's experiments.

The paper sweeps convolution parameters ``(N, K, F)`` for the special
case (Fig. 7) and ``(N, K, C, F)`` for the general case (Fig. 8), plus
square SGEMM dimensions 2K–8K for the motivating Fig. 2.  The exact
x-axis tuples are tick labels in the paper's plots and are not printed
in the text, so the sweeps below are our documented reconstruction
covering the stated ranges (see DESIGN.md Sec. 4): image sizes from the
small-image regime the paper singles out (32 x 32) up to megapixel
images, channel/filter counts typical of the CNN layers the paper
motivates (AlexNet/VGG era).

Every sweep point is a :class:`WorkloadPoint` with a stable label so
benchmark output lines up across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.conv.tensors import ConvProblem

__all__ = [
    "WorkloadPoint",
    "special_case_sweep",
    "general_case_sweep",
    "gemm_sweep_dims",
    "vgg_layers",
    "alexnet_layers",
    "SPECIAL_FILTER_SIZES",
    "GENERAL_FILTER_SIZES",
]

#: Filter sizes evaluated in Fig. 7 (special case).
SPECIAL_FILTER_SIZES = (1, 3, 5)

#: Filter sizes evaluated in Fig. 8 / Table 1 (general case).
GENERAL_FILTER_SIZES = (3, 5, 7)


@dataclass(frozen=True)
class WorkloadPoint:
    """One x-axis position of a paper figure."""

    label: str
    problem: ConvProblem


def special_case_sweep(kernel_size: int) -> List[WorkloadPoint]:
    """Fig. 7 sweep for one filter size: single-channel images.

    Covers large grayscale images (the image-processing motivation) and
    filter counts from the low-overlap regime ``F = 1`` the paper calls
    out up to filter banks of 32.
    """
    if kernel_size not in SPECIAL_FILTER_SIZES:
        raise ValueError(
            "special-case sweeps cover K in %s, got %d"
            % (SPECIAL_FILTER_SIZES, kernel_size)
        )
    points = []
    for n in (512, 1024, 2048, 4096):
        for f in (1, 8, 32):
            label = "N=%d,K=%d,F=%d" % (n, kernel_size, f)
            points.append(
                WorkloadPoint(
                    label=label,
                    problem=ConvProblem.square(n, kernel_size, channels=1, filters=f),
                )
            )
    return points


def general_case_sweep(kernel_size: int) -> List[WorkloadPoint]:
    """Fig. 8 sweep for one filter size: multi-channel CNN-style layers.

    Includes the 32 x 32 small-image point where the paper reports its
    kernel "may be a little slower than cuDNN".
    """
    if kernel_size not in GENERAL_FILTER_SIZES:
        raise ValueError(
            "general-case sweeps cover K in %s, got %d"
            % (GENERAL_FILTER_SIZES, kernel_size)
        )
    combos = [
        (32, 128, 128),
        (32, 256, 256),
        (64, 64, 64),
        (64, 128, 128),
        (64, 256, 256),
        (128, 64, 64),
        (128, 64, 128),
        (128, 128, 128),
        (224, 32, 64),
        (224, 64, 64),
        (224, 64, 128),
    ]
    points = []
    for n, c, f in combos:
        label = "N=%d,K=%d,C=%d,F=%d" % (n, kernel_size, c, f)
        points.append(
            WorkloadPoint(
                label=label,
                problem=ConvProblem.square(n, kernel_size, channels=c, filters=f),
            )
        )
    return points


def gemm_sweep_dims() -> List[int]:
    """Fig. 2 sweep: square SGEMM dimensions 2K .. 8K."""
    return [2048, 3072, 4096, 5120, 6144, 7168, 8192]


def vgg_layers(kernel_size: int = 3) -> List[WorkloadPoint]:
    """VGG-16-like convolutional layer stack (Simonyan & Zisserman [4])."""
    layers = [
        ("conv1_2", 224, 64, 64),
        ("conv2_2", 112, 128, 128),
        ("conv3_2", 56, 256, 256),
        ("conv4_2", 28, 512, 512),
        ("conv5_2", 14, 512, 512),
    ]
    return [
        WorkloadPoint(
            label="vgg.%s" % name,
            problem=ConvProblem.square(n, kernel_size, channels=c, filters=f),
        )
        for name, n, c, f in layers
    ]


def alexnet_layers() -> List[WorkloadPoint]:
    """AlexNet-like middle layers (Krizhevsky et al. [5]); 5x5 and 3x3."""
    layers = [
        ("conv2", 27, 5, 96, 256),
        ("conv3", 13, 3, 256, 384),
        ("conv4", 13, 3, 384, 384),
        ("conv5", 13, 3, 384, 256),
    ]
    return [
        WorkloadPoint(
            label="alexnet.%s" % name,
            problem=ConvProblem.square(n, k, channels=c, filters=f),
        )
        for name, n, k, c, f in layers
    ]
