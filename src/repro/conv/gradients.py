"""Convolution gradients for CNN training.

The paper motivates its kernels with *both* phases of CNN execution
("propagating through these convolutional layers is always a
computation bottleneck in both the training and inference phases",
Sec. 1) but only evaluates the forward pass.  This module supplies the
training-side operators and shows how they map back onto the paper's
kernels:

* **input gradient** (``dX``) — a full convolution of the output
  gradient with the 180-degree-rotated, channel/filter-transposed
  weights.  After zero-padding it *is* a forward convolution problem
  (channels = F, filters = C), so the general-case kernel runs it
  directly: :func:`input_gradient_problem` builds the equivalent
  :class:`~repro.conv.tensors.ConvProblem`.
* **weight gradient** (``dW``) — per (filter, channel) a valid
  correlation of the input with the output gradient, i.e. a
  convolution whose "filter" is the OH x OW gradient map.  This fits
  the paper's *special-case* kernel per input channel whenever the
  gradient map fits constant memory (late CNN layers);
  :func:`weight_gradient_problem` builds that mapping and raises
  :class:`~repro.errors.ConfigurationError` when the map is too large
  (early layers use dedicated wgrad kernels in production libraries —
  out of the paper's scope).

Functional implementations are exact and are verified in the test suite
through the adjoint identities ``<g, conv(x, W)> = <dgrad(g, W), x> =
<wgrad(x, g), W>``.
"""

from __future__ import annotations

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ConfigurationError, ShapeError

__all__ = [
    "conv2d_input_gradient",
    "conv2d_weight_gradient",
    "input_gradient_problem",
    "weight_gradient_problem",
]


def _check_triplet(grad_output, filters=None, image=None, kernel_size=None):
    g = np.asarray(grad_output, dtype=np.float32)
    if g.ndim == 2:
        g = g[np.newaxis]
    if g.ndim != 3:
        raise ShapeError("grad_output must be (F, OH, OW)")
    return g


def conv2d_input_gradient(grad_output: np.ndarray, filters: np.ndarray) -> np.ndarray:
    """Gradient of a 'valid' convolution w.r.t. its input.

    ``dX[c, y, x] = sum_{f, ky, kx} g[f, y - ky, x - kx] * W[f, c, ky, kx]``
    (out-of-range ``g`` terms are zero).

    Parameters: ``grad_output`` is ``(F, OH, OW)``, ``filters`` is
    ``(F, C, K, K)``.  Returns ``(C, H, W)`` with ``H = OH + K - 1``.
    """
    from repro.conv.reference import conv2d_reference

    g = _check_triplet(grad_output)
    w = np.asarray(filters, dtype=np.float32)
    if w.ndim == 3:
        w = w[:, np.newaxis]
    if w.ndim != 4 or w.shape[0] != g.shape[0]:
        raise ShapeError("filters must be (F, C, K, K) with F matching grad_output")
    k = w.shape[2]
    if w.shape[3] != k:
        raise ShapeError("filters must be square")

    pad = k - 1
    g_padded = np.pad(g, ((0, 0), (pad, pad), (pad, pad)))
    # Full convolution == valid correlation with the rotated, (f, c)-
    # transposed filter bank.
    w_rot = w[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
    return conv2d_reference(g_padded, np.ascontiguousarray(w_rot))


def conv2d_weight_gradient(
    image: np.ndarray, grad_output: np.ndarray, kernel_size: int
) -> np.ndarray:
    """Gradient of a 'valid' convolution w.r.t. its filters.

    ``dW[f, c, ky, kx] = sum_{y, x} img[c, y + ky, x + kx] * g[f, y, x]``.

    Parameters: ``image`` is ``(C, H, W)``, ``grad_output`` is
    ``(F, OH, OW)`` with ``OH = H - K + 1``.  Returns ``(F, C, K, K)``.
    """
    img = np.asarray(image, dtype=np.float32)
    if img.ndim == 2:
        img = img[np.newaxis]
    g = _check_triplet(grad_output)
    k = kernel_size
    oh, ow = g.shape[1], g.shape[2]
    if img.shape[1] != oh + k - 1 or img.shape[2] != ow + k - 1:
        raise ShapeError(
            "image %s inconsistent with grad_output %s for K=%d"
            % (img.shape, g.shape, k)
        )
    out = np.empty((g.shape[0], img.shape[0], k, k), dtype=np.float64)
    for ky in range(k):
        for kx in range(k):
            window = img[:, ky : ky + oh, kx : kx + ow]
            out[:, :, ky, kx] = np.tensordot(g, window, axes=([1, 2], [1, 2]))
    return out.astype(np.float32)


def input_gradient_problem(problem: ConvProblem) -> ConvProblem:
    """The forward-convolution problem equivalent to this layer's dgrad.

    The padded gradient map has extent ``OH + 2(K - 1)``; channels and
    filters swap roles.  Run it on
    :class:`~repro.core.general.GeneralCaseKernel` to cost the backward
    data pass with the paper's kernel.
    """
    valid = problem.as_valid()
    k = valid.kernel_size
    return ConvProblem(
        height=valid.out_height + 2 * (k - 1),
        width=valid.out_width + 2 * (k - 1),
        channels=valid.filters,
        filters=valid.channels,
        kernel_size=k,
        padding=Padding.VALID,
    )


def weight_gradient_problem(
    problem: ConvProblem, const_memory_size: int = 64 * 1024
) -> ConvProblem:
    """The per-channel special-case problem equivalent to wgrad.

    For one input channel, ``dW[:, c]`` is a single-channel convolution
    of the image with ``F`` filters of size ``OH`` (the gradient maps).
    The mapping is valid only while those maps fit constant memory —
    the regime of the deeper CNN layers.  The returned problem should
    be costed once per input channel.
    """
    valid = problem.as_valid()
    if valid.out_height != valid.out_width:
        raise ConfigurationError(
            "wgrad-as-convolution needs square gradient maps, got %dx%d"
            % (valid.out_height, valid.out_width)
        )
    grad_bytes = valid.filters * valid.out_height * valid.out_width * 4
    if grad_bytes > const_memory_size:
        raise ConfigurationError(
            "gradient maps need %d bytes of constant memory (> %d): this "
            "layer's wgrad needs a dedicated kernel, outside the paper's "
            "scope" % (grad_bytes, const_memory_size)
        )
    return ConvProblem(
        height=valid.height,
        width=valid.width,
        channels=1,
        filters=valid.filters,
        kernel_size=valid.out_height,
        padding=Padding.VALID,
    )
