"""Minibatch execution on top of the single-image kernels.

The paper's evaluation is parameterized per image, but its related-work
argument against FFT convolution is a *batch* argument: "in order to
reuse the Fourier transform of the filters, the batch size should be
big enough" (Sec. 1).  This module adds the batch dimension:

* :class:`BatchedKernel` wraps any kernel object.  Functionally it maps
  over the batch; for the cost model it scales the traced ledger by the
  batch size and widens the grid's z dimension (one image per z slice,
  exactly how a CUDA port would batch), so occupancy and wave effects
  are modeled for the *batched* launch.  Per-batch-constant traffic can
  be declared by the wrapped kernel through an optional
  ``batched_cost(problem, batch)`` method — which
  :class:`~repro.baselines.fft_conv.FFTConvolution` implements to pay
  its filter transforms once.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.simt import Dim3
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost

__all__ = ["BatchedKernel"]


class BatchedKernel:
    """Run a single-image kernel over a minibatch."""

    def __init__(self, kernel, batch: int):
        if batch < 1:
            raise ConfigurationError("batch must be positive, got %r" % batch)
        self.kernel = kernel
        self.batch = batch
        self.arch = kernel.arch
        self.name = "%s x batch %d" % (kernel.name, batch)

    # ------------------------------------------------------------------
    def run(
        self,
        images: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
    ) -> np.ndarray:
        """Convolve ``(B, C, H, W)`` images; returns ``(B, F, OH, OW)``."""
        arr = np.asarray(images, dtype=np.float32)
        if arr.ndim == 3:
            arr = arr[:, np.newaxis]   # (B, H, W) -> single channel
        if arr.ndim != 4:
            raise ShapeError("batched images must be (B, C, H, W)")
        if arr.shape[0] != self.batch:
            raise ShapeError(
                "expected batch of %d images, got %d" % (self.batch, arr.shape[0])
            )
        outputs = [self.kernel.run(img, filters, padding) for img in arr]
        return np.stack(outputs)

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        batched = getattr(self.kernel, "batched_cost", None)
        if batched is not None:
            return batched(problem, self.batch)
        cost = self.kernel.cost(problem)
        cost.ledger.scale(self.batch)
        launch = dataclasses.replace(
            cost.launch,
            grid=Dim3(cost.launch.grid.x, cost.launch.grid.y,
                      cost.launch.grid.z * self.batch),
        )
        return dataclasses.replace(cost, launch=launch, name=self.name)

    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        """Throughput normalized by the whole batch's nominal flops."""
        return self.predict(problem, model).gflops(problem.flops * self.batch)

    def time_per_image_ms(self, problem: ConvProblem,
                          model: Optional[TimingModel] = None) -> float:
        return self.predict(problem, model).total / self.batch * 1e3
