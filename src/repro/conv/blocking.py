"""Image partitioning into blocks with halos (paper Fig. 4).

Both of the paper's kernels tile the *output* plane into ``H x W``
blocks; each block additionally reads ``K - 1`` halo rows/columns beyond
its right and bottom boundary.  This module provides the grid geometry,
the input region (with halo) belonging to each block, and the
halo-overhead analysis backing the paper's claim that the special-case
kernel is "(almost) communication-optimal" — only halo pixels are read
more than once, and their proportion is small (Sec. 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.conv.tensors import ConvProblem
from repro.errors import ConfigurationError

__all__ = ["BlockSpec", "BlockView", "BlockGrid", "halo_read_overhead"]


@dataclass(frozen=True)
class BlockSpec:
    """An output tile of ``block_h`` rows by ``block_w`` columns."""

    block_h: int
    block_w: int

    def __post_init__(self):
        if self.block_h < 1 or self.block_w < 1:
            raise ConfigurationError("block extents must be positive")

    def input_rows(self, kernel_size: int, stride: int = 1,
                   dilation: int = 1) -> int:
        """Input rows a block touches, including the bottom halo.

        Strided blocks advance ``stride`` input rows per output row and
        dilated taps span ``dilation * (K-1) + 1`` rows; at the default
        axes this is the paper's ``block_h + K - 1``.
        """
        return (self.block_h - 1) * stride + dilation * (kernel_size - 1) + 1

    def input_cols(self, kernel_size: int, stride: int = 1,
                   dilation: int = 1) -> int:
        return (self.block_w - 1) * stride + dilation * (kernel_size - 1) + 1


@dataclass(frozen=True)
class BlockView:
    """One tile of the output plane and its input footprint."""

    by: int                    # block row index
    bx: int                    # block column index
    out_y0: int                # output-plane origin of the tile
    out_x0: int
    out_rows: int              # tile extent, clipped at the image edge
    out_cols: int
    in_y0: int                 # input-plane origin (same as out origin for valid conv)
    in_x0: int
    in_rows: int               # footprint extent including halo, unclipped
    in_cols: int
    tile_rows: int             # unclipped tile extent (the spec's block_h)
    tile_cols: int

    @property
    def is_partial(self) -> bool:
        """True when the tile hangs over the image edge (clipped output)."""
        return self.out_rows < self.tile_rows or self.out_cols < self.tile_cols

    def extract(self, plane: np.ndarray) -> np.ndarray:
        """Input footprint of this block, zero-filled past the image edge.

        ``plane`` is a 2-D (H, W) input channel.  Real kernels guard
        out-of-range loads with predication and substitute zero; this
        helper reproduces that behaviour for the functional executors.
        """
        h, w = plane.shape
        tile = np.zeros((self.in_rows, self.in_cols), dtype=plane.dtype)
        y1 = min(self.in_y0 + self.in_rows, h)
        x1 = min(self.in_x0 + self.in_cols, w)
        if y1 > self.in_y0 and x1 > self.in_x0:
            tile[: y1 - self.in_y0, : x1 - self.in_x0] = plane[
                self.in_y0 : y1, self.in_x0 : x1
            ]
        return tile


class BlockGrid:
    """The grid of output tiles covering a convolution problem."""

    def __init__(self, problem: ConvProblem, spec: BlockSpec):
        self.problem = problem.as_valid()
        self.spec = spec
        self.blocks_y = math.ceil(self.problem.out_height / spec.block_h)
        self.blocks_x = math.ceil(self.problem.out_width / spec.block_w)

    @property
    def total_blocks(self) -> int:
        return self.blocks_y * self.blocks_x

    def view(self, by: int, bx: int) -> BlockView:
        if not (0 <= by < self.blocks_y and 0 <= bx < self.blocks_x):
            raise ConfigurationError(
                "block (%d, %d) outside grid %dx%d" % (by, bx, self.blocks_y, self.blocks_x)
            )
        p, s = self.problem, self.spec
        out_y0 = by * s.block_h
        out_x0 = bx * s.block_w
        return BlockView(
            by=by,
            bx=bx,
            out_y0=out_y0,
            out_x0=out_x0,
            out_rows=min(s.block_h, p.out_height - out_y0),
            out_cols=min(s.block_w, p.out_width - out_x0),
            in_y0=out_y0 * p.stride,
            in_x0=out_x0 * p.stride,
            in_rows=s.input_rows(p.kernel_size, p.stride, p.dilation),
            in_cols=s.input_cols(p.kernel_size, p.stride, p.dilation),
            tile_rows=s.block_h,
            tile_cols=s.block_w,
        )

    def __iter__(self) -> Iterator[BlockView]:
        for by in range(self.blocks_y):
            for bx in range(self.blocks_x):
                yield self.view(by, bx)

    def input_pixels_read(self) -> int:
        """Total input pixels read by all blocks of one channel (with halos)."""
        p = self.problem
        k = p.kernel_size
        per_block = (self.spec.input_rows(k, p.stride, p.dilation)
                     * self.spec.input_cols(k, p.stride, p.dilation))
        return per_block * self.total_blocks


def halo_read_overhead(problem: ConvProblem, spec: BlockSpec) -> float:
    """Ratio of pixels read (with halos) to unique pixels, one channel.

    1.0 would be the theoretical lower bound where every pixel is read
    exactly once; the excess is the paper's "proportion of such halo
    pixels is small" claim, quantified (Sec. 3.2).
    """
    grid = BlockGrid(problem, spec)
    unique = problem.as_valid().height * problem.as_valid().width
    return grid.input_pixels_read() / unique
