"""Convolution math substrate: problem descriptions, reference
implementations, image blocking, and workload sweeps."""

from repro.conv.tensors import ConvProblem, Padding
from repro.conv.reference import conv2d_reference, conv2d_single_channel
from repro.conv.blocking import BlockSpec, BlockGrid, halo_read_overhead

__all__ = [
    "ConvProblem",
    "Padding",
    "conv2d_reference",
    "conv2d_single_channel",
    "BlockSpec",
    "BlockGrid",
    "halo_read_overhead",
]
