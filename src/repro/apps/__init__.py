"""Applications of the paper's kernels beyond convolution benchmarks —
the "can be applied to other applications" of its conclusion (Sec. 6)."""

from repro.apps.pyramid import GaussianPyramid
from repro.apps.stencil import JacobiStencil

__all__ = ["JacobiStencil", "GaussianPyramid"]
