"""Gaussian and Laplacian image pyramids on the special-case kernel.

Pyramids are the workhorse of classical image processing (blending,
compression, multi-scale detection) and consist of exactly the
operation the paper's special-case kernel optimizes: a small fixed
filter convolved over a single-channel image, repeatedly.  Each level
smooths with the 5x5 binomial kernel and decimates by two; the
Laplacian pyramid stores the per-level residuals and reconstructs the
input exactly.

The cost model composes the per-level traced convolution costs — a
geometric series that converges to ~4/3 of the base level's cost, which
the tests check.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.kernels import default_registry
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost

__all__ = ["GaussianPyramid", "BINOMIAL_5X5"]

_B5 = np.array([1.0, 4.0, 6.0, 4.0, 1.0], dtype=np.float32) / 16.0

#: The classic 5x5 binomial smoothing kernel (separable, sums to 1).
BINOMIAL_5X5 = np.outer(_B5, _B5).astype(np.float32)


class GaussianPyramid:
    """Multi-scale decomposition driven by the special-case kernel."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        levels: int = 4,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        if levels < 1:
            raise ConfigurationError("levels must be positive")
        self.levels = levels
        self.arch = arch
        self.kernel = default_registry().get("special").build(
            None, arch, matched=matched, bank_policy=bank_policy)
        self.name = "pyramid%d[%s]" % (levels, arch.name)

    # ------------------------------------------------------------------
    def _smooth(self, image: np.ndarray) -> np.ndarray:
        return self.kernel.run(image, BINOMIAL_5X5, padding=Padding.SAME)[0]

    def gaussian(self, image: np.ndarray) -> List[np.ndarray]:
        """Levels of the Gaussian pyramid, finest first."""
        img = np.asarray(image, dtype=np.float32)
        if img.ndim != 2:
            raise ShapeError("pyramids take a 2-D image")
        if min(img.shape) < 2 ** (self.levels - 1) * 8:
            raise ConfigurationError(
                "image %s too small for %d levels" % (img.shape, self.levels))
        out = [img]
        for _ in range(self.levels - 1):
            smoothed = self._smooth(out[-1])
            out.append(smoothed[::2, ::2].copy())
        return out

    def laplacian(self, image: np.ndarray) -> List[np.ndarray]:
        """Band-pass residuals plus the coarsest Gaussian level (last)."""
        gaussians = self.gaussian(image)
        bands = []
        for fine, coarse in zip(gaussians, gaussians[1:]):
            upsampled = self._upsample(coarse, fine.shape)
            bands.append(fine - upsampled)
        bands.append(gaussians[-1])
        return bands

    def reconstruct(self, bands: List[np.ndarray]) -> np.ndarray:
        """Exact inverse of :meth:`laplacian`."""
        if len(bands) != self.levels:
            raise ShapeError(
                "expected %d bands, got %d" % (self.levels, len(bands)))
        image = bands[-1]
        for band in reversed(bands[:-1]):
            image = band + self._upsample(image, band.shape)
        return image

    @staticmethod
    def _upsample(coarse: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
        """Nearest-neighbour expansion to ``shape`` (exactly invertible)."""
        up = np.repeat(np.repeat(coarse, 2, axis=0), 2, axis=1)
        return up[: shape[0], : shape[1]]

    # ------------------------------------------------------------------
    def level_problems(self, height: int, width: int) -> List[ConvProblem]:
        """The smoothing problem solved at each level transition."""
        problems = []
        h, w = height, width
        for _ in range(self.levels - 1):
            problems.append(ConvProblem(
                height=h, width=w, channels=1, filters=1,
                kernel_size=5, padding=Padding.SAME))
            h, w = (h + 1) // 2, (w + 1) // 2
        return problems

    def cost(self, height: int, width: int) -> KernelCost:
        """Composed traced cost of the full decomposition."""
        problems = self.level_problems(height, width)
        if not problems:
            raise ConfigurationError("a 1-level pyramid does no work")
        base = self.kernel.cost(problems[0])
        for p in problems[1:]:
            base.ledger.merge(self.kernel.cost(p).ledger)
        return dataclasses.replace(base, name=self.name,
                                   launches=len(problems))

    def predict(self, height: int, width: int,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(height, width))

    def megapixels_per_second(self, height: int, width: int) -> float:
        """Decomposition throughput in input megapixels per second."""
        t = self.predict(height, width).total
        return height * width / t / 1e6
