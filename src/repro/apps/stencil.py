"""Iterative Jacobi stencils on the paper's special-case kernel.

The paper closes by noting its bank-width model and kernel designs
"can be applied to other applications and architectures" (Sec. 6).
Stencil relaxation is the canonical other application: a 5-point (or
9-point) Jacobi update *is* a single-channel 3x3 convolution with a
fixed filter, applied repeatedly with ping-pong buffers.  This module
maps it onto :class:`~repro.core.special.SpecialCaseKernel`, inheriting
its communication-optimal blocking, constant-memory filter broadcast,
and bank-width-matched accesses — and therefore also the matched vs
unmatched experiment.

Boundary handling is Dirichlet: the border cells hold their initial
values; interior cells average their neighbours each sweep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.kernels import default_registry
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost

__all__ = ["JacobiStencil", "FIVE_POINT", "NINE_POINT"]

#: 5-point Laplace relaxation: average of the von Neumann neighbours.
FIVE_POINT = np.array(
    [[0.0, 0.25, 0.0],
     [0.25, 0.0, 0.25],
     [0.0, 0.25, 0.0]], dtype=np.float32)

#: 9-point relaxation: Moore neighbourhood with the classic 4/2/1 weights.
NINE_POINT = np.array(
    [[1.0, 2.0, 1.0],
     [2.0, 0.0, 2.0],
     [1.0, 2.0, 1.0]], dtype=np.float32) / 12.0


class JacobiStencil:
    """Jacobi relaxation driven by the special-case convolution kernel."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        points: int = 5,
        matched: bool = True,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        if points == 5:
            self.filter = FIVE_POINT
        elif points == 9:
            self.filter = NINE_POINT
        else:
            raise ConfigurationError("points must be 5 or 9, got %r" % points)
        self.points = points
        self.arch = arch
        self.kernel = default_registry().get("special").build(
            None, arch, matched=matched, bank_policy=bank_policy)
        self.name = "jacobi%d[%s,n=%d]" % (points, arch.name, self.kernel.n)

    # ------------------------------------------------------------------
    def run(self, grid: np.ndarray, iterations: int = 1) -> np.ndarray:
        """Relax ``grid`` for ``iterations`` sweeps (Dirichlet borders)."""
        state = np.asarray(grid, dtype=np.float32)
        if state.ndim != 2:
            raise ShapeError("the grid must be 2-D, got %d-D" % state.ndim)
        if iterations < 0:
            raise ConfigurationError("iterations cannot be negative")
        state = state.copy()
        for _ in range(iterations):
            smoothed = self.kernel.run(state, self.filter, padding=Padding.SAME)[0]
            # Dirichlet: interior updates, borders pinned.
            state[1:-1, 1:-1] = smoothed[1:-1, 1:-1]
        return state

    def residual(self, grid: np.ndarray) -> float:
        """Max interior change one further sweep would make."""
        after = self.run(grid, iterations=1)
        return float(np.abs(after - np.asarray(grid, dtype=np.float32)).max())

    # ------------------------------------------------------------------
    def problem(self, height: int, width: int) -> ConvProblem:
        return ConvProblem(height=height, width=width, channels=1, filters=1,
                           kernel_size=3, padding=Padding.SAME)

    def cost(self, height: int, width: int, iterations: int = 1) -> KernelCost:
        """Traced cost of the ping-pong iteration loop."""
        if iterations < 1:
            raise ConfigurationError("iterations must be positive")
        cost = self.kernel.cost(self.problem(height, width))
        # Each sweep is one launch over the same traffic.
        cost.ledger.scale(iterations)
        cost.launches = iterations
        return cost

    def predict(self, height: int, width: int, iterations: int = 1,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(height, width, iterations))

    def updates_per_second(self, height: int, width: int,
                           iterations: int = 10) -> float:
        """Modeled cell updates per second (the stencil community's GUPS)."""
        t = self.predict(height, width, iterations).total
        return height * width * iterations / t
