"""repro — reproduction of "Optimizing Memory Efficiency for Convolution
Kernels on Kepler GPUs" (Chen, Chen, Chen & Hu, DAC 2017).

The package builds the paper's two memory-efficient direct-convolution
kernels — and every baseline it compares against — on top of a simulated
Kepler-class GPU substrate (:mod:`repro.gpu`): kernels execute
functionally (bit-exact results, verified against reference
convolution) and are costed by replaying their real warp address
patterns through bank-conflict / coalescing / broadcast models and an
analytical timing model.

Quick start::

    import numpy as np
    from repro import SpecialCaseKernel, ConvProblem

    kernel = SpecialCaseKernel()                  # Kepler K40m, matched
    image = np.random.rand(1024, 1024).astype(np.float32)
    sobel = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]], np.float32)
    edges = kernel.run(image, sobel)              # exact convolution
    problem = ConvProblem.square(1024, 3, channels=1, filters=1)
    print(kernel.gflops(problem))                 # modeled performance

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.conv.reference import conv2d_reference, conv2d_single_channel
from repro.core.special import SpecialCaseKernel
from repro.core.general import GeneralCaseKernel
from repro.core.depthwise import DepthwiseKernel
from repro.core.config import (
    SpecialCaseConfig,
    GeneralCaseConfig,
    TABLE1_CONFIGS,
    BEST_SPECIAL_CONFIG,
)
from repro.core.bankwidth import (
    DataType,
    VectorSpec,
    matched_vector,
    mismatch_factor,
    smem_bandwidth_gain,
)
from repro.gpu.arch import (
    ARCHITECTURES,
    FERMI_M2090,
    GPUArchitecture,
    KEPLER_K40M,
    MAXWELL_GM204,
    PASCAL_P100,
)
from repro.gpu.timing import TimingModel
from repro.kernels import BackendRegistry, ConvBackend, default_registry
from repro.serve.engine import AsyncServeEngine, ServeEngine
from repro.serve.dispatch import Dispatcher
from repro.serve.plan_cache import PlanCache
from repro.serve.trace import synthetic_trace
from repro.obs import Registry, Tracer, instrument

__version__ = "1.9.0"

__all__ = [
    "ConvProblem",
    "Padding",
    "Layout",
    "conv2d_reference",
    "conv2d_single_channel",
    "SpecialCaseKernel",
    "GeneralCaseKernel",
    "DepthwiseKernel",
    "SpecialCaseConfig",
    "GeneralCaseConfig",
    "TABLE1_CONFIGS",
    "BEST_SPECIAL_CONFIG",
    "DataType",
    "VectorSpec",
    "matched_vector",
    "mismatch_factor",
    "smem_bandwidth_gain",
    "GPUArchitecture",
    "KEPLER_K40M",
    "FERMI_M2090",
    "MAXWELL_GM204",
    "PASCAL_P100",
    "ARCHITECTURES",
    "TimingModel",
    "ConvBackend",
    "BackendRegistry",
    "default_registry",
    "ServeEngine",
    "AsyncServeEngine",
    "Dispatcher",
    "PlanCache",
    "synthetic_trace",
    "Registry",
    "Tracer",
    "instrument",
    "__version__",
]
