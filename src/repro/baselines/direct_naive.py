"""Naive direct convolution: one thread per output pixel.

The strawman every optimized kernel is implicitly measured against: no
shared-memory staging, no register blocking — each thread walks the
``K x K x C`` window reading the image and the filter straight from
global memory.  Warp-adjacent threads cover adjacent output columns, so
individual tap reads are coalesced, but nothing is ever reused on chip:
the image is re-read ``K * K * F`` times and the filters ``OH * OW``
times, which is exactly the data-sharing headroom Fig. 3b of the paper
illustrates.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, KernelTracer, cross_block_reuse

__all__ = ["NaiveDirectKernel"]

_F32 = 4
_THREADS = 256


class NaiveDirectKernel:
    """One-thread-per-output direct convolution (no on-chip reuse)."""

    def __init__(self, arch: GPUArchitecture = KEPLER_K40M):
        self.arch = arch
        self.name = "naive-direct[%s]" % arch.name

    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: Optional[ConvProblem] = None,
    ) -> np.ndarray:
        """The per-thread loop nest collapses to the reference result."""
        return conv2d_reference(image, filters, padding, problem=problem)

    def launch_config(self, problem: ConvProblem) -> LaunchConfig:
        valid = problem.as_valid()
        outputs = valid.filters * valid.out_height * valid.out_width
        return LaunchConfig(
            grid=Dim3(x=max(1, math.ceil(outputs / _THREADS))),
            block=Dim3(x=_THREADS),
            registers_per_thread=28,
            smem_per_block=0,
        )

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        valid = problem.as_valid()
        k = valid.kernel_size
        launch = self.launch_config(problem)
        arch = self.arch
        tracer = KernelTracer(arch)
        lanes = np.arange(arch.warp_size, dtype=np.int64)

        outputs = valid.filters * valid.out_height * valid.out_width
        warp_count = outputs / arch.warp_size
        taps = k * k * valid.channels_per_group

        # Image taps: a warp covers contiguous output columns (runs break
        # at output-row ends), so each tap is one mostly-coalesced read.
        # Strided outputs spread the lane addresses by the stride; NHWC
        # images spread them further by the channel count (channels are
        # innermost, so the per-tap channel walk is contiguous instead).
        s = valid.stride
        x_step = s * _F32
        row_step = valid.width * s * _F32
        if valid.layout is Layout.NHWC:
            x_step *= valid.channels
            row_step *= valid.channels
        run = min(valid.out_width, arch.warp_size)
        gather = (lanes % run) * x_step + (lanes // run) * row_step
        # Neighbouring taps and the F output maps re-read the same lines;
        # the L2 catches the K*K-window repeats (the F-fold repeats are
        # spread too far apart in time to credit).
        tracer.gmem_read(gather, _F32, count=warp_count * taps, site="gm.image_tap",
                         l2_reuse=float(k * k))

        # Filter taps: all lanes of a warp share (f, c, ky, kx) — one
        # address, one transaction, but issued for every tap of every warp.
        flt_slab = valid.filters * taps * _F32
        tracer.gmem_read(np.zeros(arch.warp_size, dtype=np.int64), _F32,
                         count=warp_count * taps, site="gm.filter_tap",
                         l2_reuse=cross_block_reuse(
                             arch, flt_slab, warp_count, cap=1024.0))

        tracer.flops(2.0 * taps * outputs)

        out_run = min(valid.out_width, arch.warp_size)
        out_x = _F32
        out_row = valid.out_width * _F32
        if valid.layout is Layout.NHWC:
            out_x *= valid.filters
            out_row *= valid.filters
        out_pat = (lanes % out_run) * out_x + (lanes // out_run) * out_row
        tracer.gmem_write(out_pat, _F32, count=warp_count, site="gm.store_out")

        return tracer.finish(name=self.name, launch=launch)

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        return self.predict(problem, model).gflops(problem.flops)
