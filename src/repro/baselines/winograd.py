"""Winograd convolution F(m x m, 3x3), m in {2, 4} (paper Sec. 1,
refs [15, 16]).

The minimal-filtering algorithm of Lavin & Gray: the output is tiled
m x m; each tile needs an (m+2) x (m+2) input patch, and the per-output
multiply count drops by 9 m^2/(m+2)^2 — 2.25x for F(2x2), 4x for
F(4x4) — at the cost of input/output transforms, extra memory for the
transformed filters, numerical headroom (the F(4x4) transform constants
grow), and specialization to the 3x3 filter: the trade-offs the paper
cites for why direct convolution remains the general workhorse.

Functional execution implements the actual transform pipeline
(``V = B^T d B``, ``U = G g G^T``, ``M = sum_c U . V``,
``Y = A^T M A``) and is verified against the reference convolution; the
cost model is analytic like the FFT baseline's.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, TrafficLedger

__all__ = ["WinogradConvolution"]

_THREADS = 256

# F(2x2, 3x3) transform matrices (Lavin & Gray, CVPR 2016).
_BT2 = np.array(
    [[1, 0, -1, 0],
     [0, 1, 1, 0],
     [0, -1, 1, 0],
     [0, 1, 0, -1]], dtype=np.float32)
_G2 = np.array(
    [[1, 0, 0],
     [0.5, 0.5, 0.5],
     [0.5, -0.5, 0.5],
     [0, 0, 1]], dtype=np.float32)
_AT2 = np.array(
    [[1, 1, 1, 0],
     [0, 1, -1, -1]], dtype=np.float32)

# F(4x4, 3x3) transform matrices (Lavin & Gray, CVPR 2016).
_BT4 = np.array(
    [[4, 0, -5, 0, 1, 0],
     [0, -4, -4, 1, 1, 0],
     [0, 4, -4, -1, 1, 0],
     [0, -2, -1, 2, 1, 0],
     [0, 2, -1, -2, 1, 0],
     [0, 4, 0, -5, 0, 1]], dtype=np.float32)
_G4 = np.array(
    [[1 / 4, 0, 0],
     [-1 / 6, -1 / 6, -1 / 6],
     [-1 / 6, 1 / 6, -1 / 6],
     [1 / 24, 1 / 12, 1 / 6],
     [1 / 24, -1 / 12, 1 / 6],
     [0, 0, 1]], dtype=np.float32)
_AT4 = np.array(
    [[1, 1, 1, 1, 1, 0],
     [0, 1, -1, 2, -2, 0],
     [0, 1, 1, 4, 4, 0],
     [0, 1, -1, 8, -8, 1]], dtype=np.float32)

_TRANSFORMS = {2: (_BT2, _G2, _AT2), 4: (_BT4, _G4, _AT4)}


class WinogradConvolution:
    """F(m x m, 3x3) minimal-filtering convolution, m in {2, 4}."""

    def __init__(self, arch: GPUArchitecture = KEPLER_K40M, tile: int = 2):
        if tile not in _TRANSFORMS:
            raise ConfigurationError("tile must be 2 or 4, got %r" % tile)
        self.arch = arch
        self.tile = tile            # m: output tile extent
        self.patch = tile + 2       # input patch extent (m + r - 1)
        self._bt, self._g, self._at = _TRANSFORMS[tile]
        self.name = "winograd-f%dx%d[%s]" % (tile, tile, arch.name)

    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: "Optional[ConvProblem]" = None,
    ) -> np.ndarray:
        if problem is not None:
            if not problem.has_default_axes:
                raise ShapeError(
                    "transform-domain kernels handle only default axes "
                    "(stride=1, dilation=1, groups=1, NCHW), got %s"
                    % problem.describe())
            padding = problem.padding
        img = np.asarray(image, dtype=np.float32)
        if img.ndim == 2:
            img = img[np.newaxis]
        flt = np.asarray(filters, dtype=np.float32)
        if flt.ndim == 2:
            flt = flt[np.newaxis, np.newaxis]
        elif flt.ndim == 3:
            flt = flt[:, np.newaxis]
        if img.ndim != 3 or flt.ndim != 4:
            raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
        if flt.shape[2:] != (3, 3):
            raise ConfigurationError(
                "F(%dx%d, 3x3) is specialized to 3x3 filters"
                % (self.tile, self.tile))
        if flt.shape[1] != img.shape[0]:
            raise ShapeError("channel mismatch")

        problem = ConvProblem(
            height=img.shape[1], width=img.shape[2], channels=img.shape[0],
            filters=flt.shape[0], kernel_size=3, padding=padding,
        )
        padded = problem.padded_image(img)
        valid = problem.as_valid()
        oh, ow = valid.out_height, valid.out_width

        # Round the output up to whole m x m tiles (zero-pad the input).
        m, t = self.tile, self.patch
        th, tw = math.ceil(oh / m), math.ceil(ow / m)
        need_h, need_w = m * th + 2, m * tw + 2
        work = np.zeros((valid.channels, need_h, need_w), dtype=np.float32)
        work[:, : padded.shape[1], : padded.shape[2]] = padded

        # U = G g G^T for every (f, c).
        u = np.einsum("ij,fcjk,lk->fcil", self._g, flt, self._g)

        # V = B^T d B for every tile and channel: gather the t x t patches.
        patches = np.empty((valid.channels, th, tw, t, t), dtype=np.float32)
        for ty in range(t):
            for tx in range(t):
                patches[:, :, :, ty, tx] = work[
                    :, ty : ty + m * th : m, tx : tx + m * tw : m
                ]
        v = np.einsum("ij,cabjk,lk->cabil", self._bt, patches, self._bt)

        # M = sum_c U .* V ; Y = A^T M A.
        mm = np.einsum("fcil,cabil->fabil", u, v)
        y = np.einsum("ij,fabjk,lk->fabil", self._at, mm, self._at)

        out = np.empty((valid.filters, m * th, m * tw), dtype=np.float32)
        for ty in range(m):
            for tx in range(m):
                out[:, ty::m, tx::m] = y[:, :, :, ty, tx]
        return out[:, :oh, :ow]

    # ------------------------------------------------------------------
    def multiply_reduction(self) -> float:
        """Per-output multiply reduction versus direct 3x3:
        9 m^2 / (m+2)^2 — 2.25x for F(2x2), 4x for F(4x4)."""
        m, t = self.tile, self.patch
        return 9.0 * m * m / (t * t)

    def flop_count(self, problem: ConvProblem) -> float:
        """Analytic flops: elementwise products + all three transforms."""
        valid = problem.as_valid()
        if valid.kernel_size != 3:
            raise ConfigurationError(
                "F(%dx%d, 3x3) is specialized to 3x3 filters"
                % (self.tile, self.tile))
        m, t = self.tile, self.patch
        tiles = math.ceil(valid.out_height / m) * math.ceil(valid.out_width / m)
        c, f = valid.channels, valid.filters
        products = 2.0 * t * t * tiles * c * f
        # Two matrix passes per 2-D transform, ~2 flops per element term.
        input_tf = 4.0 * t * t * t * tiles * c
        filter_tf = 4.0 * t * 3 * (3 + t) * f * c
        output_tf = 4.0 * m * t * (t + m) * tiles * f
        return products + input_tf + filter_tf + output_tf

    def transformed_filter_bytes(self, problem: ConvProblem) -> int:
        """The (m+2)^2/9 filter blow-up the paper counts against Winograd."""
        valid = problem.as_valid()
        return valid.filters * valid.channels * self.patch * self.patch * 4

    def cost(self, problem: ConvProblem) -> KernelCost:
        valid = problem.as_valid()
        ledger = TrafficLedger(gmem_segment_size=self.arch.gmem_transaction_size)
        ledger.flops = self.flop_count(problem)

        m, t = self.tile, self.patch
        tiles = math.ceil(valid.out_height / m) * math.ceil(valid.out_width / m)
        v_bytes = valid.channels * tiles * t * t * 4
        m_bytes = valid.filters * tiles * t * t * 4
        reads = valid.image_bytes + self.transformed_filter_bytes(problem) + v_bytes + m_bytes
        writes = v_bytes + m_bytes + valid.output_bytes
        ledger.gmem_read_bytes_moved = ledger.gmem_read_request_bytes = float(reads)
        ledger.gmem_write_bytes_moved = ledger.gmem_write_request_bytes = float(writes)

        launch = LaunchConfig(
            grid=Dim3(x=max(1, math.ceil(tiles * valid.filters / _THREADS))),
            block=Dim3(x=_THREADS),
            registers_per_thread=48,
            smem_per_block=8192,
        )
        return KernelCost(name=self.name, launch=launch, ledger=ledger, launches=4)

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        """GFlop/s normalized — like the paper — by direct-method flops."""
        return self.predict(problem, model).gflops(problem.flops)
