"""Blocked GEMM kernels (paper Fig. 2 and the substrate for the GEMM
convolution baselines).

:class:`TiledGemmKernel` models the classic register-blocked shared-
memory GEMM of Nath/Tomov/Dongarra (the MAGMA kernel the paper modifies)
with a parameterized tiling: ``BM x BN`` output tiles, ``BK`` reduction
panels staged in shared memory, ``TM x TN`` register tiles per thread,
and per-thread vector width ``n`` for the shared-memory operand reads —
the knob the paper's Fig. 2 experiment turns.

Three tilings reproduce Fig. 2's three curves:

* ``MAGMA_FERMI_TILING`` — MAGMA's Fermi-era kernel: scalar (``float``)
  operand reads, matched on Fermi's 4-byte banks but *unmatched* on
  Kepler's 8-byte banks;
* ``MAGMA_MATCHED_TILING`` — the paper's modification: identical tiling
  with ``float2`` operand reads (``n = 2``);
* ``CUBLAS_KEPLER_TILING`` — a Kepler-tuned kernel with a larger
  register tile and matched reads, standing in for cuBLAS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, KernelTracer, cross_block_reuse

__all__ = [
    "GemmShape",
    "GemmTiling",
    "TiledGemmKernel",
    "MAGMA_FERMI_TILING",
    "MAGMA_MATCHED_TILING",
    "CUBLAS_KEPLER_TILING",
    "magma_fermi_gemm",
    "magma_matched_gemm",
    "cublas_like_gemm",
]

_F32 = 4


@dataclass(frozen=True)
class GemmShape:
    """C[m, n] = A[m, k] @ B[k, n], row-major."""

    m: int
    n: int
    k: int

    def __post_init__(self):
        if min(self.m, self.n, self.k) < 1:
            raise ShapeError("GEMM extents must be positive")

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k

    @classmethod
    def square(cls, dim: int) -> "GemmShape":
        return cls(dim, dim, dim)


@dataclass(frozen=True)
class GemmTiling:
    """Static tiling of a register-blocked GEMM kernel."""

    bm: int
    bn: int
    bk: int
    tm: int
    tn: int
    n: int = 1          # per-thread vector width for SM operand reads

    def __post_init__(self):
        if min(self.bm, self.bn, self.bk, self.tm, self.tn, self.n) < 1:
            raise ConfigurationError("tiling parameters must be positive")
        if self.bm % self.tm or self.bn % self.tn:
            raise ConfigurationError("BM/BN must be divisible by TM/TN")
        if self.tm % self.n or self.tn % self.n:
            raise ConfigurationError("TM and TN must be divisible by n")

    @property
    def threads_x(self) -> int:
        return self.bm // self.tm

    @property
    def threads_y(self) -> int:
        return self.bn // self.tn

    @property
    def threads(self) -> int:
        return self.threads_x * self.threads_y

    def smem_bytes(self) -> int:
        """Double-buffered A (transposed) and B panels."""
        a_panel = self.bk * (self.bm + self.n)
        b_panel = self.bk * (self.bn + self.n)
        return 2 * (a_panel + b_panel) * _F32

    def registers_per_thread(self) -> int:
        prefetch = -(-(self.bm + self.bn) * self.bk // self.threads)
        return self.tm * self.tn + self.tm + self.tn + prefetch + 14


#: MAGMA's Fermi kernel: 64x64x16 tiles, 4x4 register tiles, scalar reads.
MAGMA_FERMI_TILING = GemmTiling(bm=64, bn=64, bk=16, tm=4, tn=4, n=1)

#: The paper's modification: the same kernel reading float2 operands.
MAGMA_MATCHED_TILING = GemmTiling(bm=64, bn=64, bk=16, tm=4, tn=4, n=2)

#: A Kepler-tuned stand-in for cuBLAS: bigger register tile, matched reads.
CUBLAS_KEPLER_TILING = GemmTiling(bm=128, bn=64, bk=8, tm=8, tn=4, n=2)


class TiledGemmKernel:
    """Register-blocked shared-memory GEMM: functional + traced cost."""

    def __init__(
        self,
        tiling: GemmTiling,
        arch: GPUArchitecture = KEPLER_K40M,
        name: Optional[str] = None,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        self.tiling = tiling
        self.arch = arch
        self.bank_policy = bank_policy
        self.name = name or "gemm[%dx%dx%d,n=%d]" % (
            tiling.bm, tiling.bn, tiling.bk, tiling.n,
        )

    # ------------------------------------------------------------------
    def launch_config(self, shape: GemmShape) -> LaunchConfig:
        t = self.tiling
        grid_x = math.ceil(shape.m / t.bm)
        grid_y = math.ceil(shape.n / t.bn)
        # Real kernels spill to local memory rather than exceed the ISA
        # register limit; clamp the estimate the same way.
        regs = min(t.registers_per_thread(), self.arch.max_registers_per_thread)
        return LaunchConfig(
            grid=Dim3(x=grid_x, y=grid_y),
            block=Dim3(x=t.threads_x, y=t.threads_y),
            registers_per_thread=regs,
            smem_per_block=t.smem_bytes(),
        )

    # ------------------------------------------------------------------
    def run(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Block-tiled matrix product (exact float32 accumulation order
        of the BK-panel loop)."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError("incompatible GEMM operands %s, %s" % (a.shape, b.shape))
        shape = GemmShape(m=a.shape[0], n=b.shape[1], k=a.shape[1])
        t = self.tiling
        out = np.zeros((shape.m, shape.n), dtype=np.float32)
        for i0 in range(0, shape.m, t.bm):
            i1 = min(i0 + t.bm, shape.m)
            for j0 in range(0, shape.n, t.bn):
                j1 = min(j0 + t.bn, shape.n)
                acc = np.zeros((i1 - i0, j1 - j0), dtype=np.float32)
                for k0 in range(0, shape.k, t.bk):
                    k1 = min(k0 + t.bk, shape.k)
                    acc += a[i0:i1, k0:k1] @ b[k0:k1, j0:j1]
                out[i0:i1, j0:j1] = acc
        return out

    # ------------------------------------------------------------------
    def cost(self, shape: GemmShape) -> KernelCost:
        t = self.tiling
        arch = self.arch
        launch = self.launch_config(shape)
        blocks = float(launch.total_blocks)
        warps = math.ceil(t.threads / arch.warp_size)
        ksteps = math.ceil(shape.k / t.bk)

        tracer = KernelTracer(arch, self.bank_policy)
        lanes = np.arange(arch.warp_size, dtype=np.int64)
        unit = t.n * _F32

        # --- global loads of the A and B panels (wide, cooperative) -------
        # A is re-read by every block along the N grid axis and B along
        # the M axis; the L2 absorbs the repeats when the slab fits.
        grid_x = math.ceil(shape.m / t.bm)
        grid_y = math.ceil(shape.n / t.bn)
        self._trace_panel_load(tracer, t.bm, t.bk, shape.k, ksteps * blocks,
                               site="gm.load_a",
                               l2_reuse=cross_block_reuse(
                                   arch, shape.m * shape.k * _F32, grid_y))
        self._trace_panel_load(tracer, t.bk, t.bn, shape.n, ksteps * blocks,
                               site="gm.load_b",
                               l2_reuse=cross_block_reuse(
                                   arch, shape.k * shape.n * _F32, grid_x))

        # --- staging into shared memory (contiguous vector writes) --------
        panel_units = (t.bm * t.bk + t.bk * t.bn) / (4.0 * arch.warp_size)
        tracer.smem_write(lanes * 16, 16, count=panel_units * ksteps * blocks,
                          site="sm.store_panels")

        # --- operand reads per FMA round -----------------------------------
        # A is stored transposed; the register tiles are unit-interleaved
        # (thread x's u-th unit lives at u*TX + x), the standard layout
        # that keeps consecutive lanes on consecutive units.
        x_ids = lanes % t.threads_x
        y_ids = lanes // t.threads_x
        rounds = float(warps) * t.bk * ksteps * blocks
        for u in range(t.tm // t.n):
            tracer.smem_read((u * t.threads_x + x_ids) * unit, unit,
                             count=rounds, site="sm.load_a_col")
        for u in range(t.tn // t.n):
            tracer.smem_read((u * t.threads_y + y_ids) * unit, unit,
                             count=rounds, site="sm.load_b_row")

        # --- compute ---------------------------------------------------------
        tracer.flops(2.0 * t.bm * t.bn * t.bk * ksteps * blocks)

        # --- writeback: rows of BN contiguous floats -------------------------
        wb_rows = t.bm
        run_units = t.bn // t.n
        per_warp_rows = max(1, arch.warp_size // run_units)
        wb = (lanes % run_units) * unit + (lanes // run_units) * shape.n * _F32
        reqs = wb_rows * run_units / arch.warp_size
        tracer.gmem_write(wb[: min(arch.warp_size, run_units * per_warp_rows)],
                          unit, count=reqs * blocks, site="gm.store_c")

        tracer.sync(2.0 * ksteps * blocks)
        return tracer.finish(name=self.name, launch=launch, software_prefetch=True)

    def _trace_panel_load(self, tracer, rows, cols, pitch_elems, count, site,
                          l2_reuse=1.0):
        """Cooperative wide loads of a rows x cols panel with row pitch
        ``pitch_elems`` floats; lanes cover consecutive (row, col) pairs.
        The load width is the widest vector the row pitch keeps aligned
        (misaligned pitches force narrower loads, as on hardware)."""
        arch = self.arch
        width = _panel_load_width(cols, pitch_elems)
        run_units = max(1, cols * _F32 // width)
        lanes = np.arange(arch.warp_size, dtype=np.int64)
        addrs = (lanes % run_units) * width + (lanes // run_units) * pitch_elems * _F32
        total_units = rows * run_units
        reqs = total_units / arch.warp_size
        tracer.gmem_read(addrs, width, count=reqs * count, site=site,
                         l2_reuse=l2_reuse)

    # ------------------------------------------------------------------
    def predict(self, shape: GemmShape,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(shape))

    def gflops(self, shape: GemmShape,
               model: Optional[TimingModel] = None) -> float:
        return self.predict(shape, model).gflops(shape.flops)

    def time_ms(self, shape: GemmShape,
                model: Optional[TimingModel] = None) -> float:
        """Predicted execution time in milliseconds (Fig. 2's y-axis)."""
        return self.predict(shape, model).total * 1e3


def _panel_load_width(cols: int, pitch_elems: int) -> int:
    """Widest aligned vector load for panel rows of ``cols`` floats."""
    for width in (16, 8, 4):
        if (pitch_elems * _F32) % width == 0 and (cols * _F32) % width == 0:
            return width
    return 4


def magma_fermi_gemm(arch: GPUArchitecture = KEPLER_K40M) -> TiledGemmKernel:
    """MAGMA's Fermi kernel, as run (unmodified) on ``arch``."""
    return TiledGemmKernel(MAGMA_FERMI_TILING, arch, name="MAGMA")


def magma_matched_gemm(arch: GPUArchitecture = KEPLER_K40M) -> TiledGemmKernel:
    """The paper's bank-width-matched MAGMA modification."""
    return TiledGemmKernel(MAGMA_MATCHED_TILING, arch, name="MAGMA mod.")


def cublas_like_gemm(arch: GPUArchitecture = KEPLER_K40M) -> TiledGemmKernel:
    """A Kepler-tuned GEMM standing in for cuBLAS."""
    return TiledGemmKernel(CUBLAS_KEPLER_TILING, arch, name="cuBLAS")
