"""FFT-based convolution (paper Sec. 1, refs [12-14]).

Convolution by the correlation theorem: pad the filters to the image
size, transform, multiply by the conjugate spectrum, accumulate over
channels, inverse-transform.  Reduces arithmetic complexity for large
filters, but — exactly as the paper argues — pays for (i) padding every
``K x K`` filter to ``H x W`` (a large memory and transform-time
overhead) and (ii) needing a large batch to amortize the filter
transforms.  With the paper's batch of one the filter transforms are
paid in full, which is why this method loses to direct convolution for
the small filters evaluated.

The cost model is first-order analytic (standard 5 N log2 N FFT flop
counts plus memory passes) rather than warp-traced: the paper does not
evaluate FFT convolution, and this baseline exists to reproduce the
related-work argument quantitatively.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, TrafficLedger

__all__ = ["FFTConvolution"]

_F32 = 4
_THREADS = 256


class FFTConvolution:
    """Frequency-domain convolution with padded-filter accounting."""

    def __init__(self, arch: GPUArchitecture = KEPLER_K40M):
        self.arch = arch
        self.name = "fft-conv[%s]" % arch.name

    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: "Optional[ConvProblem]" = None,
    ) -> np.ndarray:
        if problem is not None:
            if not problem.has_default_axes:
                raise ShapeError(
                    "transform-domain kernels handle only default axes "
                    "(stride=1, dilation=1, groups=1, NCHW), got %s"
                    % problem.describe())
            padding = problem.padding
        img = np.asarray(image, dtype=np.float32)
        if img.ndim == 2:
            img = img[np.newaxis]
        flt = np.asarray(filters, dtype=np.float32)
        if flt.ndim == 2:
            flt = flt[np.newaxis, np.newaxis]
        elif flt.ndim == 3:
            flt = flt[:, np.newaxis]
        if img.ndim != 3 or flt.ndim != 4:
            raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
        if flt.shape[1] != img.shape[0]:
            raise ShapeError("channel mismatch")

        problem = ConvProblem(
            height=img.shape[1], width=img.shape[2], channels=img.shape[0],
            filters=flt.shape[0], kernel_size=flt.shape[2], padding=padding,
        )
        padded = problem.padded_image(img)
        valid = problem.as_valid()
        h, w = valid.height, valid.width
        oh, ow = valid.out_height, valid.out_width

        # Filters padded to the image extent — the overhead the paper
        # cites against FFT convolution.
        img_hat = np.fft.rfft2(padded, s=(h, w))
        flt_hat = np.fft.rfft2(flt, s=(h, w))
        # Correlation theorem: multiply by the conjugate filter spectrum.
        prod = np.einsum("chw,fchw->fhw", img_hat, np.conj(flt_hat))
        full = np.fft.irfft2(prod, s=(h, w))
        return full[:, :oh, :ow].astype(np.float32)

    # ------------------------------------------------------------------
    def padded_filter_bytes(self, problem: ConvProblem) -> int:
        """Memory for the padded filter spectra (vs. K*K*C*F*4 raw)."""
        valid = problem.as_valid()
        bins = valid.height * (valid.width // 2 + 1)
        return valid.filters * valid.channels * bins * 8  # complex64

    def flop_count(self, problem: ConvProblem, batch: int = 1) -> float:
        """Analytic FFT-method flops: transforms + pointwise products.

        With ``batch`` images the filter transforms are paid once — the
        amortization the paper says FFT convolution depends on.
        """
        valid = problem.as_valid()
        n = valid.height * valid.width
        fft_one = 2.5 * n * math.log2(max(n, 2))  # real transform ~ half of 5NlogN
        transforms = (
            valid.channels * batch                  # image transforms
            + valid.filters * valid.channels        # filter transforms, once
            + valid.filters * batch                 # inverse transforms
        )
        bins = valid.height * (valid.width // 2 + 1)
        pointwise = 8.0 * valid.channels * valid.filters * bins * batch
        return transforms * fft_one + pointwise

    def cost(self, problem: ConvProblem) -> KernelCost:
        return self.batched_cost(problem, 1)

    def batched_cost(self, problem: ConvProblem, batch: int) -> KernelCost:
        valid = problem.as_valid()
        ledger = TrafficLedger(gmem_segment_size=self.arch.gmem_transaction_size)
        ledger.flops = self.flop_count(problem, batch)

        bins = valid.height * (valid.width // 2 + 1)
        spectra = (
            valid.channels * batch
            + valid.filters * valid.channels
            + valid.filters * batch
        )
        # Each transform makes roughly log-radix passes; charge two
        # read+write passes per array as a generous lower bound.
        pass_bytes = spectra * bins * 8 * 2 * 2
        ledger.gmem_read_bytes_moved = pass_bytes / 2 + valid.image_bytes * batch
        ledger.gmem_read_request_bytes = ledger.gmem_read_bytes_moved
        ledger.gmem_write_bytes_moved = pass_bytes / 2 + valid.output_bytes * batch
        ledger.gmem_write_request_bytes = ledger.gmem_write_bytes_moved

        total_work = valid.filters * valid.out_height * valid.out_width * batch
        launch = LaunchConfig(
            grid=Dim3(x=max(1, math.ceil(total_work / _THREADS))),
            block=Dim3(x=_THREADS),
            registers_per_thread=32,
            smem_per_block=4096,
        )
        launches = 3 + int(math.ceil(math.log2(max(valid.channels, 2))))
        return KernelCost(name=self.name, launch=launch, ledger=ledger,
                          launches=launches)

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        """GFlop/s normalized — like the paper — by direct-method flops."""
        return self.predict(problem, model).gflops(problem.flops)
