"""cuDNN-like implicit-GEMM convolution (Chetlur et al. [8]).

cuDNN's GEMM-based convolution avoids the explicit im2col workspace by
materializing sub-blocks of the lowered matrix *in shared memory at run
time*: a register-blocked GEMM whose B-panel loads gather directly from
the input image with im2col addressing.  This is the comparison kernel
for both of the paper's experiments (Figs. 7 and 8).

Modeling notes (see DESIGN.md):

* The GEMM dimensions are ``M = F``, ``N = OH * OW``, ``K = C*K_f*K_f``.
  Tiles are padded; the padded FLOPs are what the machine executes, but
  achieved GFlop/s is always normalized by the *nominal* operation
  count — this is how the paper's Fig. 7 numbers can sink far below
  hardware peak for small ``F``.
* Shared-memory operand reads are scalar ``float`` — the paper's
  premise is precisely that cuDNN (v5.1) does not restructure its
  per-thread data width for Kepler's 8-byte banks.
* A tile-shape heuristic picks the best tiling per problem from a
  palette, standing in for cuDNN's internal kernel selection.
* Every input pixel is re-gathered for each of the ``K_f * K_f`` lowered
  rows it appears in and for each M-tile — the traffic the paper's
  kernels eliminate (their Sec. 4.2 claims ~1/K of it).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.baselines.gemm import GemmShape, GemmTiling
from repro.baselines.im2col import im2col_matrix
from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, KernelTracer, cross_block_reuse

__all__ = ["ImplicitGemmKernel", "DEFAULT_TILE_PALETTE"]

_F32 = 4

#: Tile shapes the kernel-selection heuristic chooses from, mirroring the
#: few specialized kernels the library of the paper's era ships (scalar
#: operand reads each).  One skinny tile serves small-M problems; below
#: M = 32 the padding is paid in full, as the paper's F = 1 points show.
DEFAULT_TILE_PALETTE = (
    GemmTiling(bm=128, bn=128, bk=8, tm=8, tn=8, n=1),
    GemmTiling(bm=128, bn=64, bk=8, tm=8, tn=4, n=1),
    GemmTiling(bm=64, bn=64, bk=8, tm=4, tn=4, n=1),
    GemmTiling(bm=32, bn=64, bk=8, tm=4, tn=4, n=1),
)


def _aligned_width(pitch_elems: int) -> int:
    """Widest vector access a row pitch of ``pitch_elems`` floats permits."""
    for width in (16, 8, 4):
        if (pitch_elems * _F32) % width == 0:
            return width
    return 4


class ImplicitGemmKernel:
    """GEMM-based convolution with on-chip im2col (the cuDNN analogue)."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        tiling: Optional[GemmTiling] = None,
        palette: tuple = DEFAULT_TILE_PALETTE,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        self.arch = arch
        self._tiling = tiling
        self.palette: List[GemmTiling] = list(palette)
        self.bank_policy = bank_policy
        self.name = "cuDNN-like[%s]" % arch.name

    # ------------------------------------------------------------------
    @staticmethod
    def gemm_shape(problem: ConvProblem) -> GemmShape:
        valid = problem.as_valid()
        k = valid.kernel_size
        return GemmShape(
            m=valid.filters,
            n=valid.out_height * valid.out_width,
            k=valid.channels * k * k,
        )

    def select_tiling(self, problem: ConvProblem) -> GemmTiling:
        """Pick the palette tile with the best predicted time."""
        if self._tiling is not None:
            return self._tiling
        model = TimingModel(self.arch)
        best, best_time = None, float("inf")
        for tiling in self.palette:
            t = model.evaluate(self._cost_with(problem, tiling)).total
            if t < best_time:
                best, best_time = tiling, t
        return best

    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: Optional[ConvProblem] = None,
    ) -> np.ndarray:
        """Functional execution: the implicit lowering made explicit."""
        if problem is None:
            img = np.asarray(image, dtype=np.float32)
            if img.ndim == 2:
                img = img[np.newaxis]
            flt = np.asarray(filters, dtype=np.float32)
            if flt.ndim == 3:
                flt = flt[:, np.newaxis]
            if img.ndim != 3 or flt.ndim != 4:
                raise ShapeError("image must be (C,H,W) and filters (F,C,K,K)")
            problem = ConvProblem(
                height=img.shape[1], width=img.shape[2], channels=img.shape[0],
                filters=flt.shape[0], kernel_size=flt.shape[2], padding=padding,
            )
        else:
            if problem.groups != 1:
                raise ShapeError(
                    "the implicit-GEMM kernel handles ungrouped convolution, "
                    "got %s" % problem.describe())
            # padded_image canonicalizes to CHW itself; handing it the
            # raw array keeps NHWC inputs single-converted.
            img = image
            flt = problem.check_filters(filters)
        padded = problem.padded_image(img)
        valid = problem.as_valid()
        lowered = im2col_matrix(padded, valid.kernel_size,
                                valid.stride, valid.dilation)
        a = flt.reshape(valid.filters, -1)
        return problem.layout_output(
            (a @ lowered).reshape(valid.filters, valid.out_height,
                                  valid.out_width))

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        return self._cost_with(problem, self.select_tiling(problem))

    def _cost_with(self, problem: ConvProblem, t: GemmTiling) -> KernelCost:
        valid = problem.as_valid()
        shape = self.gemm_shape(problem)
        arch = self.arch

        grid_x = math.ceil(shape.m / t.bm)
        grid_y = math.ceil(shape.n / t.bn)
        blocks = float(grid_x * grid_y)
        ksteps = math.ceil(shape.k / t.bk)
        warps = math.ceil(t.threads / arch.warp_size)

        launch = LaunchConfig(
            grid=Dim3(x=grid_x, y=grid_y),
            block=Dim3(x=t.threads_x, y=t.threads_y),
            registers_per_thread=min(t.registers_per_thread() + 8,
                                     arch.max_registers_per_thread),
            smem_per_block=t.smem_bytes(),
        )

        tracer = KernelTracer(arch, self.bank_policy)
        lanes = np.arange(arch.warp_size, dtype=np.int64)
        unit = t.n * _F32

        # --- A panel: BM filters x BK lowered coordinates (contiguous) ----
        # Traffic uses the real K extent; the pad rows are predicated off.
        # The filter pitch (C*K*K floats) is rarely 16-byte aligned, so
        # the load width degrades like the hardware's would.
        a_rows_total = min(shape.k, ksteps * t.bk)
        width = _aligned_width(shape.k)
        run_units = max(1, t.bk * _F32 // width)
        a_addrs = (lanes % run_units) * width + (lanes // run_units) * shape.k * _F32
        a_reqs = min(shape.m, grid_x * t.bm) * run_units / arch.warp_size
        a_slab = shape.m * shape.k * _F32
        tracer.gmem_read(a_addrs, width,
                         count=a_reqs * (a_rows_total / t.bk) * grid_y,
                         site="gm.load_filters",
                         l2_reuse=cross_block_reuse(arch, a_slab, grid_y))

        # --- B panel: BK lowered rows x BN output positions, gathered -----
        # For one lowered row, BN consecutive output positions map to
        # contiguous input pixels within an output row; runs break at row
        # ends.  Scalar loads (gather addressing defeats vectorization).
        ow = valid.out_width
        s = valid.stride
        run = min(ow, arch.warp_size)
        b_addrs = ((lanes % run) * s * _F32
                   + (lanes // run) * valid.width * s * _F32)
        b_reqs_per_row = t.bn / arch.warp_size
        # The K*K lowered rows of one channel re-read the same input
        # lines within a handful of k-steps: classic L2 temporal reuse.
        k_taps = valid.kernel_size ** 2
        tracer.gmem_read(b_addrs, _F32,
                         count=b_reqs_per_row * shape.k * grid_y * grid_x,
                         site="gm.load_image_gather",
                         l2_reuse=float(k_taps))

        # --- shared-memory staging -----------------------------------------
        panel_units = (t.bm * t.bk + t.bk * t.bn) / (4.0 * arch.warp_size)
        tracer.smem_write(lanes * 16, 16, count=panel_units * ksteps * blocks,
                          site="sm.store_panels")

        # --- operand reads per FMA round (scalar float: unmatched) ----------
        x_ids = lanes % t.threads_x
        y_ids = lanes // t.threads_x
        rounds = float(warps) * t.bk * ksteps * blocks
        for u in range(t.tm // t.n):
            tracer.smem_read((u * t.threads_x + x_ids) * unit, unit,
                             count=rounds, site="sm.load_a_col")
        for u in range(t.tn // t.n):
            tracer.smem_read((u * t.threads_y + y_ids) * unit, unit,
                             count=rounds, site="sm.load_b_row")

        # --- compute (padded tiles execute in full) ---------------------------
        tracer.flops(2.0 * t.bm * t.bn * t.bk * ksteps * blocks)

        # --- writeback: BN contiguous output pixels per tile row --------------
        w_width = _aligned_width(shape.n)
        run_w = max(1, t.bn * _F32 // w_width)
        wb = (lanes % run_w) * w_width + (lanes // run_w) * shape.n * _F32
        wb_rows = min(shape.m, grid_x * t.bm)
        tracer.gmem_write(wb, w_width,
                          count=wb_rows * run_w / arch.warp_size * grid_y,
                          site="gm.store_out")

        tracer.sync(2.0 * ksteps * blocks)
        return tracer.finish(name=self.name, launch=launch, software_prefetch=True)

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        return self.predict(problem, model).gflops(problem.flops)
