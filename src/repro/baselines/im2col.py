"""Explicit im2col + GEMM convolution (Caffe's default, paper Sec. 1).

Convolution is lowered to one big matrix product by materializing the
``(C*K*K) x (OH*OW)`` im2col matrix in global memory, then invoking a
tuned GEMM.  Good GEMM efficiency, but the lowered matrix costs a
``K * K``-fold memory blow-up and an extra global-memory round trip —
the "huge amount of additional memory" the paper holds against it.

:func:`im2col_matrix` is also the functional substrate for the
cuDNN-like implicit-GEMM baseline (which forms the same matrix, but
tile-by-tile in shared memory).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.gemm import CUBLAS_KEPLER_TILING, GemmShape, TiledGemmKernel
from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingBreakdown, TimingModel
from repro.gpu.trace import KernelCost, KernelTracer

__all__ = ["im2col_matrix", "Im2colKernel"]

_F32 = 4


def im2col_matrix(image: np.ndarray, kernel_size: int, stride: int = 1,
                  dilation: int = 1) -> np.ndarray:
    """Lower a (C, H, W) image to the (C*K*K, OH*OW) im2col matrix.

    Row ``(c*K + ky)*K + kx`` holds the input window element ``(ky, kx)``
    of channel ``c`` for every output position, row-major over (oy, ox).
    Strided/dilated lowering samples the same windows the convolution
    taps: window (ky, kx) of output (oy, ox) reads input pixel
    ``(oy*stride + ky*dilation, ox*stride + kx*dilation)``.
    """
    img = np.asarray(image, dtype=np.float32)
    if img.ndim == 2:
        img = img[np.newaxis]
    if img.ndim != 3:
        raise ShapeError("image must be (C, H, W)")
    c, h, w = img.shape
    k = kernel_size
    span = dilation * (k - 1) + 1
    if k < 1 or span > min(h, w):
        raise ShapeError(
            "kernel_size %d (dilated span %d) does not fit image %dx%d"
            % (k, span, h, w))
    oh = (h - span) // stride + 1
    ow = (w - span) // stride + 1
    rows = []
    for ci in range(c):
        for ky in range(k):
            for kx in range(k):
                y0 = ky * dilation
                x0 = kx * dilation
                rows.append(
                    img[ci,
                        y0 : y0 + (oh - 1) * stride + 1 : stride,
                        x0 : x0 + (ow - 1) * stride + 1 : stride].reshape(-1))
    return np.stack(rows)


class Im2colKernel:
    """Caffe-style convolution: explicit lowering pass + blocked GEMM."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40M,
        bank_policy: BankConflictPolicy = BankConflictPolicy.WORD_MERGE,
    ):
        self.arch = arch
        self.bank_policy = bank_policy
        self.gemm = TiledGemmKernel(CUBLAS_KEPLER_TILING, arch,
                                    name="im2col.gemm", bank_policy=bank_policy)
        self.name = "im2col+gemm[%s]" % arch.name

    # ------------------------------------------------------------------
    def gemm_shape(self, problem: ConvProblem) -> GemmShape:
        """The per-group GEMM: grouped problems run ``groups`` of these."""
        valid = problem.as_valid()
        k = valid.kernel_size
        return GemmShape(
            m=valid.filters_per_group,
            n=valid.out_height * valid.out_width,
            k=valid.channels_per_group * k * k,
        )

    def workspace_bytes(self, problem: ConvProblem) -> int:
        """Extra global memory for the lowered matrix (the K*K blow-up)."""
        shape = self.gemm_shape(problem)
        return shape.k * shape.n * _F32 * problem.groups

    # ------------------------------------------------------------------
    def run(
        self,
        image: np.ndarray,
        filters: np.ndarray,
        padding: Padding = Padding.VALID,
        problem: Optional[ConvProblem] = None,
    ) -> np.ndarray:
        if problem is None:
            img = np.asarray(image, dtype=np.float32)
            if img.ndim == 2:
                img = img[np.newaxis]
            flt = np.asarray(filters, dtype=np.float32)
            if flt.ndim == 3:
                flt = flt[:, np.newaxis]
            problem = ConvProblem(
                height=img.shape[1], width=img.shape[2], channels=img.shape[0],
                filters=flt.shape[0], kernel_size=flt.shape[2], padding=padding,
            )
        else:
            # padded_image canonicalizes to CHW itself; handing it the
            # raw array keeps NHWC inputs single-converted.
            img = image
            flt = problem.check_filters(filters)
        padded = problem.padded_image(img)
        valid = problem.as_valid()
        if valid.groups == 1:
            lowered = im2col_matrix(padded, valid.kernel_size,
                                    valid.stride, valid.dilation)
            a = flt.reshape(valid.filters, -1)
            out = self.gemm.run(a, lowered)
        else:
            cpg, fpg = valid.channels_per_group, valid.filters_per_group
            parts = []
            for g in range(valid.groups):
                lowered = im2col_matrix(
                    padded[g * cpg : (g + 1) * cpg], valid.kernel_size,
                    valid.stride, valid.dilation)
                a = flt[g * fpg : (g + 1) * fpg].reshape(fpg, -1)
                parts.append(self.gemm.run(a, lowered))
            out = np.concatenate(parts, axis=0)
        return problem.layout_output(
            out.reshape(valid.filters, valid.out_height, valid.out_width))

    # ------------------------------------------------------------------
    def cost(self, problem: ConvProblem) -> KernelCost:
        """Lowering pass plus GEMM, merged into one two-launch cost."""
        valid = problem.as_valid()
        shape = self.gemm_shape(problem)
        gemm_cost = self.gemm.cost(shape)

        # Lowering kernel: one thread per lowered element; reads gather
        # from the image (contiguous runs of OW, spread by the stride),
        # writes are dense.
        tracer = KernelTracer(self.arch, self.bank_policy)
        lanes = np.arange(self.arch.warp_size, dtype=np.int64)
        total = shape.k * shape.n
        ow = valid.out_width
        s = valid.stride
        run = min(ow, self.arch.warp_size)
        gather = ((lanes % run) * s * _F32
                  + (lanes // run) * valid.width * s * _F32)
        reqs = total / self.arch.warp_size
        tracer.gmem_read(gather, _F32, count=reqs, site="gm.im2col_gather",
                         l2_reuse=float(valid.kernel_size ** 2))
        tracer.gmem_write(lanes * _F32, _F32, count=reqs, site="gm.im2col_store")

        threads = 256
        grid = max(1, math.ceil(total / threads))
        lower_launch = LaunchConfig(
            grid=Dim3(x=grid), block=Dim3(x=threads),
            registers_per_thread=20, smem_per_block=0,
        )
        lower_cost = tracer.finish(name="im2col.lower", launch=lower_launch)

        # Merge: the GEMM dominates; report under the GEMM's launch with
        # both launches' traffic and two kernel launches of overhead.
        # Grouped problems run the identical per-group pipeline ``groups``
        # times: scale the merged ledger and the launch count.
        gemm_cost.ledger.merge(lower_cost.ledger)
        if valid.groups > 1:
            gemm_cost.ledger.scale(float(valid.groups))
        return KernelCost(
            name=self.name,
            launch=gemm_cost.launch,
            ledger=gemm_cost.ledger,
            software_prefetch=True,
            launches=2 * valid.groups,
        )

    # ------------------------------------------------------------------
    def predict(self, problem: ConvProblem,
                model: Optional[TimingModel] = None) -> TimingBreakdown:
        model = model or TimingModel(self.arch)
        return model.evaluate(self.cost(problem))

    def gflops(self, problem: ConvProblem,
               model: Optional[TimingModel] = None) -> float:
        return self.predict(problem, model).gflops(problem.flops)
