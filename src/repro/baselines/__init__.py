"""Baseline kernels and algorithms the paper compares against (or that
its related-work section discusses): blocked GEMM (cuBLAS/MAGMA-style,
Fig. 2), cuDNN-like implicit-GEMM convolution, Caffe-style explicit
im2col convolution, naive direct convolution, FFT convolution and
Winograd convolution."""

from repro.baselines.gemm import (
    TiledGemmKernel,
    GemmShape,
    MAGMA_FERMI_TILING,
    MAGMA_MATCHED_TILING,
    CUBLAS_KEPLER_TILING,
    magma_fermi_gemm,
    magma_matched_gemm,
    cublas_like_gemm,
)
from repro.baselines.implicit_gemm import ImplicitGemmKernel
from repro.baselines.im2col import Im2colKernel, im2col_matrix
from repro.baselines.direct_naive import NaiveDirectKernel
from repro.baselines.fft_conv import FFTConvolution
from repro.baselines.winograd import WinogradConvolution

__all__ = [
    "TiledGemmKernel",
    "GemmShape",
    "MAGMA_FERMI_TILING",
    "MAGMA_MATCHED_TILING",
    "CUBLAS_KEPLER_TILING",
    "magma_fermi_gemm",
    "magma_matched_gemm",
    "cublas_like_gemm",
    "ImplicitGemmKernel",
    "Im2colKernel",
    "im2col_matrix",
    "NaiveDirectKernel",
    "FFTConvolution",
    "WinogradConvolution",
]
