"""Canned chaos matrices: every fault kind, verified recovery, twice.

``repro chaos`` (and the CI ``chaos-gate`` job) runs one of these
matrices.  Each scenario builds a fault-free **baseline** replay of a
synthetic trace, then replays the same trace through a chaotic fleet —
**twice, independently** — and checks the resilience contracts from
docs/RESILIENCE.md:

* **nothing lost** — every request is either served or carries a shed
  record (``expired`` / ``overload`` / ``failed``);
* **nothing duplicated** — a request id is answered at most once (the
  fleet raises if its exactly-once reassembly is ever violated);
* **bit-identical service** — every response served under chaos equals
  the baseline response for that request, byte for byte;
* **determinism** — the two chaotic runs agree exactly (same served
  set, same output bytes, same failover/firing counts);
* **no stuck breakers** — after the replay, a cool-down, and one probe
  replay, no circuit breaker is left open;
* **faults actually fired** — a scenario whose declared faults never
  triggered proves nothing and fails loudly.

The ``ci`` matrix covers each fault kind at least once on short traces
(fast enough to gate every commit); ``full`` re-runs the per-kind
scenarios at larger size and finishes with the 10k-request
combined-fault replay from the acceptance bar.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.chaos.plan import FaultKind, FaultPlan
from repro.errors import ChaosError
from repro.fleet.engine import FleetConfig, FleetEngine
from repro.fleet.shared_cache import SharedPlanCache
from repro.serve.trace import DEFAULT_SERVING_SHAPES, synthetic_trace

__all__ = ["MATRICES", "run_matrix", "run_scenario", "format_chaos_report"]


def _scenario(name, chaos, n_requests, kinds, replicas=4, replays=1,
              hedge=False, breaker_threshold=3, warm_shared="no",
              reader_fleet=False, expect_failovers=False,
              expect_hedges=False, expect_corruptions=False,
              expect_skews=False):
    """One matrix row; plain dict so matrices are data, not code.

    ``warm_shared`` pre-publishes good shared-tier entries before the
    chaotic fleet runs: ``"full"`` warms every shape (so chaotic
    *lookups* hit — the version-skew path), ``"partial"`` warms half
    the shape palette (hits and publishes both happen — the combined
    scenarios need both).  ``reader_fleet`` adds a clean fleet that
    re-reads the shared tier afterwards — the stage that detects
    entries a chaotic fleet corrupted at publish time.
    """
    return {
        "name": name, "chaos": chaos, "n_requests": n_requests,
        "kinds": kinds, "replicas": replicas, "replays": replays,
        "hedge": hedge, "breaker_threshold": breaker_threshold,
        "warm_shared": warm_shared, "reader_fleet": reader_fleet,
        "expect_failovers": expect_failovers,
        "expect_hedges": expect_hedges,
        "expect_corruptions": expect_corruptions,
        "expect_skews": expect_skews,
    }


#: Every fault kind, exercised mid-flight, in one spec (the replica
#: targets are spread so recovery paths do not mask one another).
_COMBINED_SPEC = ("crash:replica=1,times=2;wedge:replica=2;"
                  "slow:replica=0,factor=8;obs-drop:replica=3;"
                  "cache-corrupt;version-skew;build-fail:times=2")
_COMBINED_KINDS = ("crash", "wedge", "slow", "obs-drop",
                   "cache-corrupt", "version-skew", "build-fail")

_PER_KIND = [
    _scenario("crash-failover", "crash:replica=1", 60, ("crash",),
              expect_failovers=True),
    _scenario("crash-midflight", "crash:replica=1,after=5", 60, ("crash",),
              expect_failovers=True),
    # replica 3, not 2: with the default shape palette replica 2 homes
    # no shapes, so a fault pinned there would never see an attempt.
    _scenario("wedge-failover", "wedge:replica=3", 60, ("wedge",),
              expect_failovers=True),
    _scenario("slow-hedged", "slow:replica=0,factor=8", 60, ("slow",),
              hedge=True, expect_hedges=True),
    _scenario("breaker-trip-recover", "crash:replica=1,times=2", 40,
              ("crash",), replays=2, breaker_threshold=2,
              expect_failovers=True),
    _scenario("cache-corrupt-quarantine", "cache-corrupt:times=2", 60,
              ("cache-corrupt",), reader_fleet=True,
              expect_corruptions=True),
    _scenario("version-skew-rebuild", "version-skew:times=2", 60,
              ("version-skew",), warm_shared="full", expect_skews=True),
    _scenario("build-fail-retry", "build-fail:times=2", 60,
              ("build-fail",)),
    _scenario("obs-drop-tolerated", "obs-drop:replica=0", 60,
              ("obs-drop",)),
]


def _combined(name, n_requests):
    return _scenario(name, _COMBINED_SPEC, n_requests, _COMBINED_KINDS,
                     warm_shared="partial", reader_fleet=True,
                     expect_failovers=True, expect_corruptions=True,
                     expect_skews=True)


#: Named matrices the CLI accepts.  ``ci``: every kind once, small and
#: fast.  ``full``: the same plus the 10k combined acceptance replay.
MATRICES: Dict[str, List[dict]] = {
    "ci": _PER_KIND + [_combined("combined-all-kinds", 200)],
    "full": _PER_KIND + [
        _combined("combined-all-kinds", 2_000),
        _combined("combined-10k", 10_000),
    ],
}


def _digest(output) -> str:
    return hashlib.blake2b(output.tobytes(), digest_size=8).hexdigest()


def _replay(scenario: dict, seed: int, chaotic: bool,
            jobs=None) -> dict:
    """One independent end-to-end run of a scenario; returns its facts.

    Fresh fleet, fresh shared cache, fresh injector: nothing carries
    over between runs, so two calls with the same arguments must agree
    byte for byte — that *is* the determinism check.
    """
    shared = SharedPlanCache()
    config = FleetConfig(
        replicas=scenario["replicas"], queue_depth=512, jobs=jobs,
        hedge=scenario["hedge"],
        breaker_threshold=scenario["breaker_threshold"])
    if scenario["warm_shared"] != "no":
        # Publish good entries first (a clean fleet, same shapes), so
        # the chaotic fleet's shared-tier *lookups* hit and the
        # read-side validation is what gets exercised.  "partial"
        # warms half the palette, leaving the rest to be published —
        # possibly corrupted — by the chaotic fleet itself.
        shapes = list(DEFAULT_SERVING_SHAPES)
        if scenario["warm_shared"] == "partial":
            shapes = shapes[:max(1, len(shapes) // 2)]
        warmer = FleetEngine(FleetConfig(replicas=scenario["replicas"],
                                         queue_depth=512),
                             shared_cache=shared)
        warmer.serve_trace(synthetic_trace(
            scenario["n_requests"], shapes=tuple(shapes), seed=seed))
    plan = (FaultPlan.parse(scenario["chaos"], seed=seed)
            if chaotic else None)
    fleet = FleetEngine(config, shared_cache=shared, chaos=plan)
    outputs: Dict[tuple, str] = {}
    backends: Dict[tuple, str] = {}
    shed_ids = set()
    served = shed = failovers = offered = 0
    duplicated = False
    for replay in range(scenario["replays"]):
        trace = synthetic_trace(scenario["n_requests"],
                                seed=seed + replay)
        try:
            result = fleet.serve_trace(trace)
        except Exception as exc:
            if "duplicate response" in str(exc):
                duplicated = True
                break
            raise
        served += result.served
        shed += result.shed_count
        failovers += result.failovers
        offered += len(trace)
        shed_ids.update((replay, record.req_id) for record in result.shed)
        for request, response in zip(trace, result.responses):
            if response is None:
                continue
            outputs[(replay, request.req_id)] = _digest(response.output)
            backends[(replay, request.req_id)] = response.backend
    if scenario["reader_fleet"] and not duplicated:
        # A clean fleet re-reads the shared tier the chaotic fleet
        # published into: any entry corrupted at publish time must be
        # quarantined here (and rebuilt), never served.
        reader = FleetEngine(FleetConfig(replicas=scenario["replicas"],
                                         queue_depth=512),
                             shared_cache=shared)
        trace = synthetic_trace(scenario["n_requests"], seed=seed)
        result = reader.serve_trace(trace)
        served += result.served
        shed += result.shed_count
        offered += len(trace)
        shed_ids.update(("reader", record.req_id)
                        for record in result.shed)
        for request, response in zip(trace, result.responses):
            if response is None:
                continue
            outputs[("reader", request.req_id)] = _digest(response.output)
            backends[("reader", request.req_id)] = response.backend
    # Recovery probe: cool every breaker down, then one clean replay —
    # a breaker stuck open past its cool-down is a resilience bug.
    fleet.advance_clock(config.breaker_cooldown_s * 2)
    probe = synthetic_trace(16, seed=seed + 7919)
    probe_result = fleet.serve_trace(probe)
    stuck_open = fleet.health.open_count(fleet.clock_s)
    stats = fleet.stats()
    return {
        "served": served,
        "shed": shed,
        "shed_ids": shed_ids,
        "offered": offered,
        "outputs": outputs,
        "backends": backends,
        "failovers": failovers,
        "hedges": fleet.health.hedges,
        "obs_dropped": fleet.health.obs_dropped,
        "duplicated": duplicated,
        "stuck_open": stuck_open,
        "probe_served": probe_result.served,
        "degradation": stats.get("degradation", "healthy"),
        "corruptions": shared.stats()["corruptions"],
        "skews": shared.stats()["version_skews"],
        "fired": (fleet.chaos.fired() if fleet.chaos else []),
        "unfired": (fleet.chaos.unfired() if fleet.chaos else []),
    }


def run_scenario(scenario: dict, seed: int = 1234, jobs=None) -> dict:
    """Run one scenario (baseline + two chaotic runs); verdict dict."""
    baseline = _replay(scenario, seed, chaotic=False, jobs=jobs)
    first = _replay(scenario, seed, chaotic=True, jobs=jobs)
    second = _replay(scenario, seed, chaotic=True, jobs=jobs)

    # Nothing lost: served + shed covers every offered request.
    lost = first["offered"] - first["served"] - first["shed"]
    # Bit-identical service: every chaos-served response matches the
    # baseline's bytes (and winning backend) for that request.
    mismatched = sum(
        1 for key, digest in first["outputs"].items()
        if baseline["outputs"].get(key) != digest
        or baseline["backends"].get(key) != first["backends"][key])
    deterministic = (
        first["outputs"] == second["outputs"]
        and first["shed_ids"] == second["shed_ids"]
        and first["failovers"] == second["failovers"]
        and first["fired"] == second["fired"])
    kinds_fired = {
        entry["kind"] for entry in first["fired"] if entry["fired"] > 0}
    kinds_missing = [kind for kind in scenario["kinds"]
                     if kind not in kinds_fired]
    checks = {
        "nothing_lost": lost == 0,
        "nothing_duplicated": not first["duplicated"],
        "bit_identical": mismatched == 0,
        "deterministic": deterministic,
        "no_stuck_breaker": first["stuck_open"] == 0,
        "probe_recovers": first["probe_served"] > 0,
        "declared_kinds_fired": not kinds_missing,
    }
    if scenario["expect_failovers"]:
        checks["failovers_observed"] = first["failovers"] > 0
    if scenario["expect_hedges"]:
        checks["hedges_observed"] = first["hedges"] > 0
    if scenario["expect_corruptions"]:
        checks["corruption_quarantined"] = first["corruptions"] > 0
    if scenario["expect_skews"]:
        checks["skew_dropped"] = first["skews"] > 0
    return {
        "name": scenario["name"],
        "chaos": scenario["chaos"],
        "requests": first["offered"],
        "served": first["served"],
        "shed": first["shed"],
        "lost": lost,
        "mismatched": mismatched,
        "failovers": first["failovers"],
        "hedges": first["hedges"],
        "obs_dropped": first["obs_dropped"],
        "degradation": first["degradation"],
        "fired": first["fired"],
        "unfired": first["unfired"],
        "kinds_missing": kinds_missing,
        "checks": checks,
        "passed": all(checks.values()),
    }


def run_matrix(matrix: str = "ci", seed: int = 1234,
               jobs=None, log=None) -> dict:
    """Run a named matrix; the report is the chaos-gate artifact."""
    scenarios = MATRICES.get(matrix)
    if scenarios is None:
        raise ChaosError("unknown chaos matrix %r; matrices: %s"
                         % (matrix, ", ".join(sorted(MATRICES))))
    outcomes = []
    for scenario in scenarios:
        outcome = run_scenario(scenario, seed=seed, jobs=jobs)
        if log is not None:
            log("chaos %-26s %s  (served %d/%d, failovers %d)"
                % (outcome["name"],
                   "PASS" if outcome["passed"] else "FAIL",
                   outcome["served"], outcome["requests"],
                   outcome["failovers"]))
        outcomes.append(outcome)
    kinds_covered = sorted({
        entry["kind"] for outcome in outcomes
        for entry in outcome["fired"] if entry["fired"] > 0})
    return {
        "matrix": matrix,
        "seed": seed,
        "scenarios": outcomes,
        "requests": sum(o["requests"] for o in outcomes),
        "kinds_covered": kinds_covered,
        "kinds_declared": sorted(kind.value for kind in FaultKind),
        "passed": all(o["passed"] for o in outcomes),
    }


def format_chaos_report(report: dict) -> str:
    """Human-readable rendering of a :func:`run_matrix` report."""
    lines = []
    lines.append("chaos matrix %r (seed %d): %s"
                 % (report["matrix"], report["seed"],
                    "PASS" if report["passed"] else "FAIL"))
    lines.append("requests replayed     : %d" % report["requests"])
    lines.append("fault kinds covered   : %s"
                 % (", ".join(report["kinds_covered"]) or "none"))
    for outcome in report["scenarios"]:
        lines.append("  %-26s %s  served %d/%d shed %d lost %d "
                     "mismatched %d failovers %d"
                     % (outcome["name"],
                        "PASS" if outcome["passed"] else "FAIL",
                        outcome["served"], outcome["requests"],
                        outcome["shed"], outcome["lost"],
                        outcome["mismatched"], outcome["failovers"]))
        failed = [name for name, ok in outcome["checks"].items() if not ok]
        if failed:
            lines.append("    failed checks: %s" % ", ".join(failed))
        if outcome["unfired"]:
            lines.append("    declared but unfired: %s"
                         % ", ".join(outcome["unfired"]))
    return "\n".join(lines)
