"""Deterministic fault plans: what breaks, where, and how often.

A :class:`FaultPlan` is a *seeded, declarative* description of every
fault a chaos run will inject — nothing fires at random wall-clock
whim, so the same plan over the same trace produces the same failures,
the same recoveries, and the same final telemetry on every run.  That
determinism is what turns chaos testing from a flaky stress tool into a
CI gate: the recovery machinery is exercised by *exactly* reproducible
partial failures.

Fault kinds (:class:`FaultKind`):

* ``crash`` — a replica fails its shard attempt mid-flight; every
  response from the attempt is lost and the fleet must fail the shard
  over to survivors.
* ``wedge`` — a replica's worker wedges (the modeled analogue of a
  pool-task timeout); same recovery path as a crash, distinct reason.
* ``slow`` — a straggler: the replica completes but its modeled clock
  is inflated by ``factor`` (hedged dispatch exists for this).
* ``cache-corrupt`` — a shared-plan-cache entry's stored bytes rot;
  the read-side checksum must quarantine and rebuild, never serve it.
* ``version-skew`` — a shared-cache entry surfaces under a stale
  version token and must be treated as unreachable.
* ``build-fail`` — a backend's plan construction fails transiently;
  bounded retry with backoff must recover.
* ``obs-drop`` — a replica's telemetry snapshot is dropped in transit;
  serving must continue and the loss must be counted.

Spec grammar (the ``REPRO_CHAOS`` environment variable and every
``--chaos`` flag accept it)::

    spec    := clause (";" clause)*
    clause  := "seed=" INT | fault
    fault   := KIND [":" key "=" value ("," key "=" value)*]
    keys    := replica | times | after | factor | nth

Examples::

    REPRO_CHAOS="crash:replica=1"
    REPRO_CHAOS="seed=7;crash:replica=1,times=2;slow:replica=0,factor=8"
    REPRO_CHAOS="cache-corrupt:nth=2;build-fail:times=2;obs-drop"

``times`` is how many attempts/events the fault fires on (consecutive),
``after`` is how many requests a crashing replica serves before dying
(the mid-flight point), ``factor`` is the straggler slowdown, and
``nth`` is the 1-based event index (publish/lookup/build) at which an
event-gated fault starts firing.  A fault with no ``replica=`` is
pinned to a seeded-random replica when the plan is installed.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ChaosError

__all__ = ["CHAOS_ENV", "FaultKind", "FaultSpec", "FaultPlan"]

#: Environment variable holding a chaos spec; parsed by the fleet when
#: no explicit ``chaos=`` argument is given.
CHAOS_ENV = "REPRO_CHAOS"


class FaultKind(enum.Enum):
    """Every fault the injector knows how to fire."""

    REPLICA_CRASH = "crash"
    WORKER_WEDGE = "wedge"
    SLOW_REPLICA = "slow"
    CACHE_CORRUPT = "cache-corrupt"
    VERSION_SKEW = "version-skew"
    BUILD_FAIL = "build-fail"
    OBS_DROP = "obs-drop"


#: Kinds that target one replica's shard attempt (directives ride to
#: the worker); the rest are event-gated parent-side faults.
REPLICA_KINDS = (
    FaultKind.REPLICA_CRASH,
    FaultKind.WORKER_WEDGE,
    FaultKind.SLOW_REPLICA,
    FaultKind.OBS_DROP,
)

_KINDS_BY_VALUE = {kind.value: kind for kind in FaultKind}

_SPEC_KEYS = ("replica", "times", "after", "factor", "nth")


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: a kind plus its firing parameters."""

    kind: FaultKind
    replica: Optional[int] = None
    times: int = 1
    after: int = 0
    factor: float = 4.0
    nth: int = 1

    def __post_init__(self):
        if not isinstance(self.kind, FaultKind):
            raise ChaosError("unknown fault kind %r; kinds: %s"
                             % (self.kind, ", ".join(sorted(_KINDS_BY_VALUE))))
        if self.times < 1:
            raise ChaosError("fault %s: times must be >= 1, got %d"
                             % (self.kind.value, self.times))
        if self.after < 0:
            raise ChaosError("fault %s: after must be >= 0, got %d"
                             % (self.kind.value, self.after))
        if self.factor <= 1.0:
            raise ChaosError("fault %s: factor must be > 1.0, got %g"
                             % (self.kind.value, self.factor))
        if self.nth < 1:
            raise ChaosError("fault %s: nth must be >= 1, got %d"
                             % (self.kind.value, self.nth))
        if self.replica is not None and self.replica < 0:
            raise ChaosError("fault %s: replica must be >= 0, got %d"
                             % (self.kind.value, self.replica))

    def describe(self) -> str:
        parts = []
        if self.replica is not None:
            parts.append("replica=%d" % self.replica)
        if self.times != 1:
            parts.append("times=%d" % self.times)
        if self.after:
            parts.append("after=%d" % self.after)
        if self.kind is FaultKind.SLOW_REPLICA:
            parts.append("factor=%g" % self.factor)
        if self.nth != 1:
            parts.append("nth=%d" % self.nth)
        return self.kind.value + (":" + ",".join(parts) if parts else "")


def _parse_fault(clause: str) -> FaultSpec:
    head, sep, tail = clause.partition(":")
    kind = _KINDS_BY_VALUE.get(head.strip())
    if kind is None:
        raise ChaosError(
            "unknown fault kind %r in chaos spec; kinds: %s"
            % (head.strip(), ", ".join(sorted(_KINDS_BY_VALUE))))
    kwargs = {}
    if sep:
        for item in tail.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or key not in _SPEC_KEYS:
                raise ChaosError(
                    "bad chaos parameter %r for %s; keys: %s"
                    % (item, kind.value, ", ".join(_SPEC_KEYS)))
            try:
                kwargs[key] = (float(value) if key == "factor"
                               else int(value))
            except ValueError:
                raise ChaosError(
                    "bad chaos value %r for %s.%s (expected a number)"
                    % (value.strip(), kind.value, key))
    return FaultSpec(kind=kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of declared faults — the whole chaos run, upfront."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def parse(cls, spec: str, seed: Optional[int] = None) -> "FaultPlan":
        """Parse the chaos spec grammar (see the module docstring).

        An explicit ``seed`` argument overrides a ``seed=`` clause in
        the spec string.
        """
        if not isinstance(spec, str) or not spec.strip():
            raise ChaosError("empty chaos spec")
        plan_seed = 0
        specs = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    plan_seed = int(clause[len("seed="):])
                except ValueError:
                    raise ChaosError("bad chaos seed %r"
                                     % clause[len("seed="):])
                continue
            specs.append(_parse_fault(clause))
        if not specs:
            raise ChaosError("chaos spec %r declares no faults" % spec)
        if seed is not None:
            plan_seed = seed
        return cls(seed=plan_seed, specs=tuple(specs))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan from ``REPRO_CHAOS``, or None when unset/blank."""
        raw = os.environ.get(CHAOS_ENV, "").strip()
        if not raw:
            return None
        return cls.parse(raw)

    def describe(self) -> str:
        """Round-trippable spec string for this plan."""
        clauses = ["seed=%d" % self.seed]
        clauses.extend(spec.describe() for spec in self.specs)
        return ";".join(clauses)

    def __len__(self) -> int:
        return len(self.specs)
