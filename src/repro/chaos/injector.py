"""The fault injector: turns a declared plan into deterministic firings.

One :class:`FaultInjector` is installed per fleet (``FleetEngine(
chaos=...)``).  It resolves the plan against the fleet's replica count
— any spec without an explicit ``replica=`` is pinned to a
seeded-random replica at install time — and then answers two kinds of
questions, both deterministically:

* :meth:`replica_directives` — "when replica *r* runs a shard attempt,
  does anything break?"  The answer is a plain picklable dict shipped
  inside the worker payload, so the fault fires identically whether the
  shard runs in-process or in a pool worker.
* :meth:`take` — "does the next *event* of this kind fault?"  Used by
  the parent-side hooks: shared-cache publishes (``cache-corrupt``),
  shared-cache lookups (``version-skew``), and plan builds
  (``build-fail``).  Events are counted per kind; a spec fires on
  events ``nth .. nth+times-1`` (1-based).

Every firing is recorded, so a chaos report can state exactly which
declared faults actually triggered (a plan targeting replica 7 of a
4-replica fleet fires nothing — the report makes that visible instead
of silently passing).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.chaos.plan import REPLICA_KINDS, FaultKind, FaultPlan, FaultSpec
from repro.errors import ChaosError

__all__ = ["FaultInjector"]

#: Worker-side precedence when several replica faults target the same
#: replica attempt: a crash beats a wedge beats a slowdown.
_REPLICA_FAULT_ORDER = (
    FaultKind.REPLICA_CRASH,
    FaultKind.WORKER_WEDGE,
    FaultKind.SLOW_REPLICA,
)


class FaultInjector:
    """Deterministic, install-once firing engine for a fault plan."""

    def __init__(self, plan: FaultPlan, n_replicas: int):
        if n_replicas < 1:
            raise ChaosError("injector needs at least 1 replica, got %d"
                             % n_replicas)
        self.plan = plan
        self.n_replicas = n_replicas
        rng = random.Random(plan.seed)
        # Pin replica-targeted specs that left the replica unspecified;
        # the draw order is the spec order, so the pinning is a pure
        # function of (plan, n_replicas).
        self.specs: List[FaultSpec] = []
        for spec in plan.specs:
            if spec.kind in REPLICA_KINDS and spec.replica is None:
                spec = FaultSpec(
                    kind=spec.kind, replica=rng.randrange(n_replicas),
                    times=spec.times, after=spec.after,
                    factor=spec.factor, nth=spec.nth)
            self.specs.append(spec)
        self._fired = [0] * len(self.specs)
        self._events: Dict[FaultKind, int] = {}

    # ------------------------------------------------------------------
    # Replica-attempt faults (shipped to the worker as directives)
    # ------------------------------------------------------------------
    def replica_directives(self, replica: int) -> Optional[dict]:
        """Faults for this replica's next shard attempt, or None.

        Consumes one firing from every matching spec, so a spec with
        ``times=2`` breaks the replica's first two attempts and then
        lets it recover — exactly what a circuit breaker needs to see.
        """
        directives: dict = {}
        for kind in _REPLICA_FAULT_ORDER:
            if "fault" in directives:
                break
            spec = self._take_replica(kind, replica)
            if spec is None:
                continue
            directives["fault"] = spec.kind.value
            if spec.kind is FaultKind.REPLICA_CRASH:
                directives["after"] = spec.after
            elif spec.kind is FaultKind.SLOW_REPLICA:
                directives["factor"] = spec.factor
        if self._take_replica(FaultKind.OBS_DROP, replica) is not None:
            directives["drop_obs"] = True
        return directives or None

    def _take_replica(self, kind: FaultKind,
                      replica: int) -> Optional[FaultSpec]:
        for index, spec in enumerate(self.specs):
            if spec.kind is not kind or spec.replica != replica:
                continue
            if self._fired[index] >= spec.times:
                continue
            self._fired[index] += 1
            return spec
        return None

    # ------------------------------------------------------------------
    # Event-gated faults (parent-side hooks)
    # ------------------------------------------------------------------
    def take(self, kind: FaultKind) -> Optional[FaultSpec]:
        """Advance this kind's event counter; the firing spec, or None.

        Call once per eligible event (shared-cache publish, lookup,
        plan build).  A spec fires on the ``times`` consecutive events
        starting at its 1-based ``nth``.
        """
        event = self._events.get(kind, 0) + 1
        self._events[kind] = event
        for index, spec in enumerate(self.specs):
            if spec.kind is not kind:
                continue
            if self._fired[index] >= spec.times:
                continue
            if event < spec.nth:
                continue
            self._fired[index] += 1
            return spec
        return None

    # ------------------------------------------------------------------
    @property
    def total_fired(self) -> int:
        return sum(self._fired)

    def fired(self) -> List[dict]:
        """Per-spec firing report: what was declared, what triggered."""
        return [
            {"spec": spec.describe(), "kind": spec.kind.value,
             "declared": spec.times, "fired": count}
            for spec, count in zip(self.specs, self._fired)
        ]

    def unfired(self) -> List[str]:
        """Declared faults that never (fully) triggered — worth a look:
        a chaos run that injects nothing proves nothing."""
        return [spec.describe()
                for spec, count in zip(self.specs, self._fired)
                if count < spec.times]
