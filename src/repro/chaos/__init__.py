"""repro.chaos — deterministic fault injection for the serving fleet.

A :class:`FaultPlan` declares every fault upfront (seeded, so two runs
inject identically); a :class:`FaultInjector` installed on a fleet
(``FleetEngine(chaos=...)``, the ``REPRO_CHAOS`` environment variable,
or ``repro serve --chaos``) fires them against the recovery machinery:
circuit breakers, shard failover, shared-cache quarantine, plan-build
retry.  ``repro chaos`` runs the canned fault matrix
(:mod:`repro.chaos.matrix`) and reports recovery outcomes — that
matrix, not hope, is what guards the fleet's exactly-once and
bit-identical-under-chaos contracts in CI.  See docs/RESILIENCE.md.

The matrix runner lives in :mod:`repro.chaos.matrix` and is imported
lazily (it depends on :mod:`repro.fleet`, which itself imports this
package to resolve ``chaos=`` arguments).
"""

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import CHAOS_ENV, FaultKind, FaultPlan, FaultSpec

__all__ = [
    "CHAOS_ENV",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
]
