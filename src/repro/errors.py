"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` et al.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ArchitectureError(ReproError):
    """An architecture description is inconsistent or unsupported."""


class LaunchConfigError(ReproError):
    """A kernel launch configuration violates architecture limits."""


class ResourceError(ReproError):
    """A kernel exceeds a hardware resource limit (registers, shared memory)."""


class ConfigurationError(ReproError):
    """A kernel tile/blocking configuration is invalid for the problem."""


class ShapeError(ReproError):
    """Tensor shapes are inconsistent with the convolution problem."""


class BackendError(ReproError):
    """A kernel-backend registry operation (lookup, registration) is invalid."""


class TransientBackendError(BackendError):
    """A backend operation failed transiently and may succeed on retry."""


class ChaosError(ReproError):
    """A fault-injection plan or chaos spec is invalid."""


class TraceError(ReproError):
    """A memory-access trace request is malformed."""


class AuditMismatchError(TraceError):
    """The fast trace generator disagrees with the interpreted oracle."""


class ObservabilityError(ReproError):
    """A telemetry operation (metric, span, exporter) is invalid."""


class ParallelError(ReproError):
    """A parallel-execution request (job count, sharding) is invalid."""
