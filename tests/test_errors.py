"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ArchitectureError,
        errors.LaunchConfigError,
        errors.ResourceError,
        errors.ConfigurationError,
        errors.ShapeError,
        errors.TraceError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catching_the_base_catches_library_failures(self):
        from repro import ConvProblem

        with pytest.raises(errors.ReproError):
            ConvProblem.square(4, 9)  # filter larger than image

    def test_library_misuse_never_raises_bare_valueerror(self):
        """A few representative misuse paths, all typed."""
        import numpy as np

        from repro import SpecialCaseKernel
        from repro.gpu.memory.banks import SharedMemoryModel
        from repro.gpu.arch import KEPLER_K40M

        with pytest.raises(errors.ReproError):
            SharedMemoryModel(KEPLER_K40M).access(np.array([2]), 4)
        with pytest.raises(errors.ReproError):
            SpecialCaseKernel().run(np.zeros((4, 4, 4, 4)), np.ones((3, 3)))
