"""Tests for the constant-memory broadcast model."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.gpu.memory.constmem import ConstantMemoryModel


@pytest.fixture
def model(kepler):
    return ConstantMemoryModel(kepler)


class TestBroadcast:
    def test_uniform_address_is_single_broadcast(self, model):
        res = model.access(np.zeros(32, dtype=np.int64))
        assert res.is_broadcast
        assert res.serializations == 1

    def test_distinct_addresses_serialize(self, model):
        res = model.access(np.arange(32) * 4)
        assert res.serializations == 32
        assert not res.is_broadcast

    def test_partial_divergence(self, model):
        res = model.access(np.array([0] * 16 + [4] * 16))
        assert res.serializations == 2


class TestCache:
    def test_small_working_set_hits(self, model, kepler):
        assert model.hit_rate(kepler.const_cache_per_sm) == 1.0

    def test_zero_working_set(self, model):
        assert model.hit_rate(0) == 1.0

    def test_large_working_set_degrades(self, model, kepler):
        ws = kepler.const_cache_per_sm * 4
        assert model.hit_rate(ws) == pytest.approx(0.25)

    def test_working_set_beyond_constant_memory_rejected(self, model, kepler):
        with pytest.raises(TraceError):
            model.hit_rate(kepler.const_memory_size + 1)

    def test_negative_working_set_rejected(self, model):
        with pytest.raises(TraceError):
            model.hit_rate(-1)


class TestValidation:
    def test_rejects_empty(self, model):
        with pytest.raises(TraceError):
            model.access(np.array([], dtype=np.int64))

    def test_rejects_oversized_warp(self, model):
        with pytest.raises(TraceError):
            model.access(np.zeros(64, dtype=np.int64))
