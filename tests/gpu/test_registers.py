"""Tests for register-file accounting."""

import pytest

from repro.errors import ResourceError
from repro.gpu.memory.registers import RegisterFile


@pytest.fixture
def regs(kepler):
    return RegisterFile(kepler)


class TestAllocation:
    def test_rounding_to_allocation_unit(self, regs, kepler):
        raw = 33 * 100  # not a multiple of the unit
        rounded = regs.block_allocation(33, 100)
        assert rounded >= raw
        assert rounded % kepler.register_alloc_unit == 0

    def test_exact_multiple_not_rounded(self, regs):
        assert regs.block_allocation(32, 256) == 32 * 256

    def test_max_blocks(self, regs, kepler):
        per_block = regs.block_allocation(64, 256)
        assert regs.max_blocks(64, 256) == kepler.registers_per_sm // per_block

    def test_max_blocks_zero_when_block_too_big(self, fermi):
        rf = RegisterFile(fermi)
        assert rf.max_blocks(63, 1024) == 0 or rf.max_blocks(63, 1024) >= 0


class TestLimits:
    def test_thread_demand_over_isa_limit(self, regs, kepler):
        with pytest.raises(ResourceError):
            regs.check_thread_demand(kepler.max_registers_per_thread + 1)

    def test_fermi_limit_is_63(self, fermi):
        rf = RegisterFile(fermi)
        rf.check_thread_demand(63)
        with pytest.raises(ResourceError):
            rf.check_thread_demand(64)

    def test_nonpositive_demand_rejected(self, regs):
        with pytest.raises(ResourceError):
            regs.check_thread_demand(0)

    def test_nonpositive_threads_rejected(self, regs):
        with pytest.raises(ResourceError):
            regs.block_allocation(32, 0)
