"""Byte-identity audit of the vectorized trace generators.

``repro.gpu.fastsim`` replaces the per-warp interpreter loop with
whole-block address matrices folded through the same bank/coalescing
models.  The contract is *byte identity*: every ledger counter, every
per-site row, the launch geometry and the functional output must equal
the interpreted executor's exactly — not approximately.  These tests
sweep randomized aligned shapes across both kernels, both bank-conflict
policies and several architectures, and additionally prove the audit
machinery itself fails loudly when the two paths are forced apart.
"""

import numpy as np
import pytest

from repro.core.config import GeneralCaseConfig, SpecialCaseConfig
from repro.core.general_interpreted import InterpretedGeneralKernel
from repro.core.special_interpreted import InterpretedSpecialKernel
from repro.errors import (
    AuditMismatchError,
    ConfigurationError,
    TraceError,
)
from repro.gpu.arch import (
    FERMI_M2090,
    KEPLER_K40M,
    MAXWELL_GM204,
    PASCAL_P100,
)
from repro.gpu.fastsim import (
    AUDIT_ENV,
    FastGeneralKernel,
    FastSpecialKernel,
    audit_enabled,
    kernel_cost_diffs,
)
from repro.gpu.memory.banks import BankConflictPolicy

POLICIES = (BankConflictPolicy.WORD_MERGE, BankConflictPolicy.PAPER)

#: Small general-case tile feasible on every architecture (the Kepler
#: default needs more registers than Fermi's per-thread limit allows).
SMALL_GENERAL = GeneralCaseConfig(w=16, h=4, ftb=8, wt=8, ft=2, csh=1)


def special_shapes(rng, cfg, k, trials):
    """Randomized aligned (image, filters) pairs for the special case."""
    for _ in range(trials):
        oh = cfg.block_h * int(rng.integers(1, 4))
        ow = cfg.block_w * int(rng.integers(1, 3))
        img = rng.standard_normal((oh + k - 1, ow + k - 1))
        flt = rng.standard_normal((int(rng.integers(1, 5)), k, k))
        yield img.astype(np.float32), flt.astype(np.float32)


def general_shapes(rng, cfg, k, trials):
    """Randomized aligned (image, filters) pairs for the general case."""
    for _ in range(trials):
        oh = cfg.h * int(rng.integers(1, 4))
        ow = cfg.w * int(rng.integers(1, 3))
        c = cfg.csh * int(rng.integers(1, 4))
        f = cfg.ftb * int(rng.integers(1, 3))
        img = rng.standard_normal((c, oh + k - 1, ow + k - 1))
        flt = rng.standard_normal((f, c, k, k))
        yield img.astype(np.float32), flt.astype(np.float32)


def assert_pair_identical(fast, oracle, img, flt):
    out_f, cost_f = fast.run_traced(img, flt)
    out_o, cost_o = oracle.run_traced(img, flt)
    diffs = kernel_cost_diffs(cost_f, cost_o)
    assert diffs == [], "\n".join(diffs)
    assert out_f.shape == out_o.shape
    np.testing.assert_array_equal(out_f.view(np.uint32),
                                  out_o.view(np.uint32))


class TestSpecialByteIdentity:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("k", (3, 5))
    def test_kepler_sweep(self, policy, k):
        rng = np.random.default_rng(100 * k + (policy is POLICIES[1]))
        fast = FastSpecialKernel(KEPLER_K40M, bank_policy=policy)
        oracle = InterpretedSpecialKernel(
            arch=KEPLER_K40M, config=fast.config, bank_policy=policy)
        for img, flt in special_shapes(rng, fast.config, k, trials=3):
            assert_pair_identical(fast, oracle, img, flt)

    @pytest.mark.parametrize(
        "arch", (FERMI_M2090, MAXWELL_GM204, PASCAL_P100),
        ids=lambda a: a.name)
    def test_other_architectures(self, arch):
        rng = np.random.default_rng(7)
        fast = FastSpecialKernel(arch)
        oracle = InterpretedSpecialKernel(arch=arch, config=fast.config)
        for img, flt in special_shapes(rng, fast.config, 3, trials=2):
            assert_pair_identical(fast, oracle, img, flt)

    def test_unmatched_vector(self):
        rng = np.random.default_rng(11)
        cfg = SpecialCaseConfig(block_w=64, block_h=4)
        fast = FastSpecialKernel(KEPLER_K40M, config=cfg, matched=False)
        oracle = InterpretedSpecialKernel(
            arch=KEPLER_K40M, config=cfg, matched=False)
        for img, flt in special_shapes(rng, cfg, 5, trials=2):
            assert_pair_identical(fast, oracle, img, flt)


class TestGeneralByteIdentity:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("k", (3, 5))
    def test_kepler_sweep(self, policy, k):
        rng = np.random.default_rng(200 * k + (policy is POLICIES[1]))
        fast = FastGeneralKernel(KEPLER_K40M, bank_policy=policy)
        oracle = InterpretedGeneralKernel(
            arch=KEPLER_K40M, config=fast.config, bank_policy=policy)
        for img, flt in general_shapes(rng, fast.config, k, trials=2):
            assert_pair_identical(fast, oracle, img, flt)

    @pytest.mark.parametrize(
        "arch", (FERMI_M2090, MAXWELL_GM204, PASCAL_P100),
        ids=lambda a: a.name)
    def test_other_architectures(self, arch):
        rng = np.random.default_rng(13)
        fast = FastGeneralKernel(arch, config=SMALL_GENERAL)
        oracle = InterpretedGeneralKernel(arch=arch, config=SMALL_GENERAL)
        for img, flt in general_shapes(rng, SMALL_GENERAL, 3, trials=2):
            assert_pair_identical(fast, oracle, img, flt)


class TestErrorParity:
    """Both paths must reject bad inputs with the same exception text."""

    def _error(self, kern, img, flt):
        with pytest.raises(Exception) as info:
            kern.run_traced(img, flt)
        return type(info.value), str(info.value)

    def test_partial_tiling_rejected_identically(self):
        img = np.zeros((9, 67), dtype=np.float32)   # 7x65 out: no tiling
        flt = np.zeros((2, 3, 3), dtype=np.float32)
        fast = self._error(FastSpecialKernel(), img, flt)
        oracle = self._error(
            InterpretedSpecialKernel(config=FastSpecialKernel().config),
            img, flt)
        assert fast == oracle
        assert fast[0] is ConfigurationError

    def test_general_ftb_divisibility_rejected_identically(self):
        cfg = SMALL_GENERAL
        img = np.zeros((1, 6, 18), dtype=np.float32)
        flt = np.zeros((cfg.ftb + 1, 1, 3, 3), dtype=np.float32)
        fast = self._error(FastGeneralKernel(config=cfg), img, flt)
        oracle = self._error(InterpretedGeneralKernel(config=cfg), img, flt)
        assert fast == oracle
        assert fast[0] is ConfigurationError

    def test_fermi_register_pressure_rejected_identically(self):
        # The Kepler-tuned default exceeds Fermi's 63-register limit;
        # the fast path must surface the oracle's exact launch error.
        img = np.zeros((2, 6, 34), dtype=np.float32)
        flt = np.zeros((16, 2, 3, 3), dtype=np.float32)
        fast = self._error(FastGeneralKernel(FERMI_M2090), img, flt)
        oracle = self._error(InterpretedGeneralKernel(arch=FERMI_M2090),
                             img, flt)
        assert fast == oracle


class TestAuditMachinery:
    def test_audit_enabled_env_parsing(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert not audit_enabled()
        for value, expect in (("1", True), ("true", True), ("YES", True),
                              ("on", True), ("0", False), ("", False),
                              ("off", False)):
            monkeypatch.setenv(AUDIT_ENV, value)
            assert audit_enabled() is expect
        # The explicit override beats the environment either way.
        monkeypatch.setenv(AUDIT_ENV, "1")
        assert audit_enabled(False) is False
        monkeypatch.delenv(AUDIT_ENV)
        assert audit_enabled(True) is True

    def test_audited_run_passes_clean(self):
        rng = np.random.default_rng(3)
        img = rng.standard_normal((10, 66)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3)).astype(np.float32)
        out, cost = FastSpecialKernel().run_traced(img, flt, audit=True)
        assert out.shape == (2, 8, 64)
        assert cost.ledger.flops > 0

    def test_injected_ledger_skew_trips_audit(self, monkeypatch):
        # Force the fast path to lie about one counter: the audit must
        # refuse to return a result rather than report it quietly.
        kern = FastSpecialKernel()
        real = FastSpecialKernel.trace_cost

        def skewed(self, problem):
            cost = real(self, problem)
            cost.ledger.flops += 1.0
            return cost

        monkeypatch.setattr(FastSpecialKernel, "trace_cost", skewed)
        img = np.zeros((6, 66), dtype=np.float32)
        flt = np.zeros((1, 3, 3), dtype=np.float32)
        with pytest.raises(AuditMismatchError) as info:
            kern.run_traced(img, flt, audit=True)
        assert "flops" in str(info.value)

    def test_injected_site_skew_trips_audit(self, monkeypatch):
        kern = FastGeneralKernel(config=SMALL_GENERAL)
        real = FastGeneralKernel.trace_cost

        def skewed(self, problem):
            cost = real(self, problem)
            next(iter(cost.ledger.sites.values())).cycles += 1.0
            return cost

        monkeypatch.setattr(FastGeneralKernel, "trace_cost", skewed)
        img = np.zeros((1, 6, 18), dtype=np.float32)
        flt = np.zeros((8, 1, 3, 3), dtype=np.float32)
        with pytest.raises(AuditMismatchError):
            kern.run_traced(img, flt, audit=True)

    def test_kernel_cost_diffs_flags_missing_site(self):
        img = np.zeros((6, 66), dtype=np.float32)
        flt = np.zeros((1, 3, 3), dtype=np.float32)
        _, cost_a = FastSpecialKernel().run_traced(img, flt)
        _, cost_b = FastSpecialKernel().run_traced(img, flt)
        assert kernel_cost_diffs(cost_a, cost_b) == []
        dropped = next(iter(cost_b.ledger.sites))
        del cost_b.ledger.sites[dropped]
        diffs = kernel_cost_diffs(cost_a, cost_b)
        assert any(dropped in d for d in diffs)


class TestClosedFormPath:
    def test_cost_exact_false_matches_analytic_model(self):
        from repro.conv.tensors import ConvProblem
        from repro.core.special import SpecialCaseKernel

        fast = FastSpecialKernel()
        problem = ConvProblem(height=10, width=130, channels=1,
                              filters=2, kernel_size=3)
        analytic = SpecialCaseKernel(
            arch=fast.arch, config=fast.config).cost(problem)
        modeled = fast.cost(problem)
        assert kernel_cost_diffs(modeled, analytic) == []

    def test_cost_exact_true_matches_run_traced(self):
        from repro.conv.tensors import ConvProblem

        fast = FastSpecialKernel()
        rng = np.random.default_rng(5)
        img = rng.standard_normal((10, 130)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3)).astype(np.float32)
        _, executed = fast.run_traced(img, flt)
        problem = ConvProblem(height=10, width=130, channels=1,
                              filters=2, kernel_size=3)
        assert kernel_cost_diffs(fast.cost(problem, exact=True),
                                 executed) == []


class TestInheritedBugFixes:
    """Regression pins for the interpreter bugs fastsim must not inherit."""

    def test_vector_span_bounds_checked_globally(self):
        from repro.gpu.device import DeviceExecutor

        executor = DeviceExecutor(KEPLER_K40M)
        arr = executor.alloc_global(np.zeros(8), "a")
        # Base element in range but the vector tail is not.
        with pytest.raises(TraceError, match=r"vector=4.*'tail'"):
            arr.addresses(np.array([6]), vector=4, site="tail")
        with pytest.raises(TraceError):
            arr.addresses(np.array([0]), vector=0)

    def test_vector_span_bounds_checked_shared(self):
        from repro.gpu.device import SharedArray

        buf = SharedArray(8, "buf")
        with pytest.raises(TraceError, match=r"shared index.*vector=2"):
            buf.addresses(np.array([7]), vector=2)

    def test_narrow_register_row_rejected_not_clamped_oob(self):
        # A register row narrower than one vector unit would make the
        # clamped staging offset negative; validate() must name the
        # rejection instead of letting the kernel trace garbage.
        cfg = GeneralCaseConfig(w=16, h=4, ftb=8, wt=4, ft=4, csh=1)
        with pytest.raises(ConfigurationError,
                           match="narrower than one vector unit"):
            cfg.validate(kernel_size=0, n=4)
