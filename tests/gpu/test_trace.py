"""Tests for the traffic ledger and kernel tracer."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.trace import (
    KernelTracer,
    SiteStats,
    TrafficLedger,
    cross_block_reuse,
)


@pytest.fixture
def tracer(kepler):
    return KernelTracer(kepler)


def _launch():
    return LaunchConfig(grid=Dim3(4), block=Dim3(128),
                        registers_per_thread=32, smem_per_block=1024)


class TestAccumulation:
    def test_smem_counts_scale_with_count(self, tracer):
        tracer.smem_read(np.arange(32) * 8, 8, count=10, site="a")
        led = tracer.ledger
        assert led.smem_requests == 10
        assert led.smem_cycles == 10
        assert led.smem_request_bytes == 10 * 32 * 8

    def test_gmem_read_and_write_separate(self, tracer):
        tracer.gmem_read(np.arange(32) * 4, 4, count=2)
        tracer.gmem_write(np.arange(32) * 4, 4, count=3)
        led = tracer.ledger
        assert led.gmem_read_request_bytes == 2 * 128
        assert led.gmem_write_request_bytes == 3 * 128
        # Reads and writes both priced in 32-byte sectors.
        assert led.gmem_read_bytes_moved == 2 * 128
        assert led.gmem_write_bytes_moved == 3 * 128

    def test_l2_reuse_divides_dram_reads_only(self, tracer):
        tracer.gmem_read(np.arange(32) * 4, 4, count=8, l2_reuse=4.0)
        led = tracer.ledger
        assert led.gmem_read_bytes_moved == pytest.approx(8 * 128 / 4)
        assert led.gmem_l2_bytes == pytest.approx(8 * 128)

    def test_cmem_broadcast_counts(self, tracer):
        tracer.cmem_read(np.zeros(32, dtype=np.int64), count=5)
        assert tracer.ledger.cmem_cycles == 5

    def test_flops_and_sync(self, tracer):
        tracer.flops(1000)
        tracer.sync(3)
        assert tracer.ledger.flops == 1000
        assert tracer.ledger.syncthreads == 3

    def test_site_stats_recorded(self, tracer):
        tracer.smem_read(np.arange(32) * 8, 8, count=2, site="load_row")
        key = "load_row[smem.read]"
        assert key in tracer.ledger.sites
        assert tracer.ledger.sites[key].executions == 2

    def test_negative_count_rejected(self, tracer):
        with pytest.raises(TraceError):
            tracer.smem_read(np.arange(4) * 8, 8, count=-1)
        with pytest.raises(TraceError):
            tracer.flops(-5)
        with pytest.raises(TraceError):
            tracer.gmem_read(np.arange(4) * 4, 4, l2_reuse=0.5)

    def test_finish_validates_launch(self, tracer, kepler):
        bad = LaunchConfig(grid=Dim3(1), block=Dim3(2048))
        with pytest.raises(Exception):
            tracer.finish(name="k", launch=bad)

    def test_finish_returns_cost(self, tracer):
        tracer.flops(10)
        cost = tracer.finish(name="k", launch=_launch(), software_prefetch=True)
        assert cost.flops == 10
        assert cost.software_prefetch


class TestLedgerProperties:
    def test_efficiencies_default_to_one(self):
        led = TrafficLedger()
        assert led.gmem_read_efficiency == 1.0
        assert led.smem_conflict_overhead == 1.0

    def test_arithmetic_intensity(self):
        led = TrafficLedger()
        led.flops = 100.0
        led.gmem_read_bytes_moved = 50.0
        assert led.arithmetic_intensity == pytest.approx(2.0)

    def test_merge_is_additive(self, kepler):
        t1, t2 = KernelTracer(kepler), KernelTracer(kepler)
        for t, n in ((t1, 2), (t2, 3)):
            t.flops(n * 10)
            t.smem_read(np.arange(32) * 8, 8, count=n, site="x")
            t.gmem_read(np.arange(32) * 4, 4, count=n, site="y")
        t1.ledger.merge(t2.ledger)
        assert t1.ledger.flops == 50
        assert t1.ledger.smem_requests == 5
        assert t1.ledger.sites["x[smem.read]"].executions == 5

    def test_merge_mismatched_segment_size_rejected(self):
        a = TrafficLedger(gmem_segment_size=128)
        b = TrafficLedger(gmem_segment_size=64)
        with pytest.raises(TraceError):
            a.merge(b)

    def test_site_merge_kind_mismatch_rejected(self):
        a = SiteStats(kind="smem.read")
        b = SiteStats(kind="gmem.read")
        with pytest.raises(TraceError):
            a.merge_from(b)


class TestCrossBlockReuse:
    def test_slab_fits_reuse_is_sharing(self, kepler):
        assert cross_block_reuse(kepler, 1024, 4) == 4.0

    def test_slab_too_big_reuse_capped_by_size(self, kepler):
        r = cross_block_reuse(kepler, kepler.l2_size * 2, 100)
        assert r == pytest.approx(0.5) or r == 1.0
        assert r >= 1.0

    def test_cap_applies(self, kepler):
        assert cross_block_reuse(kepler, 1024, 1000) == 16.0

    def test_never_below_one(self, kepler):
        assert cross_block_reuse(kepler, 10 * kepler.l2_size, 2) == 1.0

    def test_zero_slab(self, kepler):
        assert cross_block_reuse(kepler, 0, 10) == 1.0
