"""Tests for repro.gpu.arch."""

import dataclasses

import pytest

from repro.errors import ArchitectureError
from repro.gpu.arch import (
    ARCHITECTURES,
    FERMI_M2090,
    KEPLER_K40M,
    MAXWELL_GM204,
    PASCAL_P100,
)


class TestPresets:
    def test_kepler_bank_width_is_eight(self):
        assert KEPLER_K40M.smem_bank_width == 8

    def test_fermi_and_maxwell_bank_width_is_four(self):
        assert FERMI_M2090.smem_bank_width == 4
        assert MAXWELL_GM204.smem_bank_width == 4

    def test_kepler_peak_matches_paper(self):
        # The paper states 4290 GFlop/s single-precision (Sec. 5).
        assert KEPLER_K40M.peak_sp_gflops == pytest.approx(4290.0)

    def test_registry_contains_all_presets(self):
        assert set(ARCHITECTURES) == {"kepler", "fermi", "maxwell", "pascal"}

    def test_pascal_preset(self):
        # Chang & Onishi (2022): Pascal has 4-byte banks, cc 6.0.
        assert PASCAL_P100.smem_bank_width == 4
        assert PASCAL_P100.compute_capability == (6, 0)
        assert ARCHITECTURES["pascal"] is PASCAL_P100

    def test_max_warps_per_sm(self):
        assert KEPLER_K40M.max_warps_per_sm == 64
        assert FERMI_M2090.max_warps_per_sm == 48

    def test_smem_bandwidth_per_clock(self):
        # 32 banks x 8 bytes on Kepler = 256 B/clock/SM.
        assert KEPLER_K40M.smem_bandwidth_bytes_per_sm_clock == 256
        assert FERMI_M2090.smem_bandwidth_bytes_per_sm_clock == 128

    def test_aggregate_smem_bandwidth_positive(self):
        assert KEPLER_K40M.smem_bandwidth_gbs > 1000  # TB/s-scale on chip

    def test_sustained_gmem_bandwidth_below_peak(self):
        for arch in ARCHITECTURES.values():
            assert arch.sustained_gmem_bandwidth_gbs < arch.gmem_bandwidth_gbs


class TestBankMapping:
    def test_bank_of_wraps_around(self, kepler):
        width = kepler.smem_bank_width
        count = kepler.smem_bank_count
        assert kepler.bank_of(0) == 0
        assert kepler.bank_of(width) == 1
        assert kepler.bank_of(width * count) == 0

    def test_bank_of_sub_word_addresses(self, kepler):
        # Two floats inside the same 8-byte word share a bank.
        assert kepler.bank_of(0) == kepler.bank_of(4)

    def test_fermi_floats_get_distinct_banks(self, fermi):
        assert fermi.bank_of(0) != fermi.bank_of(4)


class TestWithBankWidth:
    def test_switch_to_four_byte_mode(self, kepler):
        four = kepler.with_bank_width(4)
        assert four.smem_bank_width == 4
        assert four.name == kepler.name
        assert kepler.smem_bank_width == 8  # original untouched

    def test_invalid_bank_width_rejected(self, kepler):
        with pytest.raises(ArchitectureError):
            kepler.with_bank_width(3)


class TestValidation:
    def test_rejects_zero_sm_count(self, kepler):
        with pytest.raises(ArchitectureError):
            dataclasses.replace(kepler, sm_count=0)

    def test_rejects_odd_bank_count(self, kepler):
        with pytest.raises(ArchitectureError):
            dataclasses.replace(kepler, smem_bank_count=31)

    def test_rejects_bad_achievable_fraction(self, kepler):
        with pytest.raises(ArchitectureError):
            dataclasses.replace(kepler, gmem_achievable_fraction=1.5)

    def test_rejects_nonpositive_transaction_size(self, kepler):
        with pytest.raises(ArchitectureError):
            dataclasses.replace(kepler, gmem_transaction_size=0)
