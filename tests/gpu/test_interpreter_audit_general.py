"""Cost-model audit for Algorithm 2: executed trace vs analytic model.

Same methodology as ``test_interpreter_audit.py`` but for the far more
intricate general-case kernel (Fig. 6): staged channels, transposed
padded filter block, 2-D thread grid, register tiles, uncoalesced
writeback.  Compute, barrier, request-byte and DRAM counters must agree
exactly; shared-memory request counts carry a small tolerance because
the analytic model lumps cooperative staging into fractional
warp-request counts.
"""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.core.config import GeneralCaseConfig
from repro.core.general import GeneralCaseKernel
from repro.core.general_interpreted import InterpretedGeneralKernel
from repro.errors import ConfigurationError
from repro.gpu.arch import KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy

CFG = GeneralCaseConfig(w=32, h=4, ftb=16, wt=16, ft=4, csh=2)

EXACT_COUNTERS = (
    "flops",
    "syncthreads",
    "smem_request_bytes",
    "gmem_read_request_bytes",
    "gmem_read_transactions",
    "gmem_write_request_bytes",
    "gmem_write_transactions",
)


def run_pair(k=3, c=4, f=32, n_img=34, seed=1,
             policy=BankConflictPolicy.WORD_MERGE):
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((c, n_img, n_img)).astype(np.float32)
    flt = rng.standard_normal((f, c, k, k)).astype(np.float32)
    interp = InterpretedGeneralKernel(config=CFG, bank_policy=policy)
    out, executed = interp.run_traced(img, flt)
    problem = ConvProblem(height=n_img, width=n_img, channels=c,
                          filters=f, kernel_size=k)
    analytic = GeneralCaseKernel(config=CFG, bank_policy=policy).cost(problem)
    return img, flt, out, executed, analytic


class TestFunctional:
    def test_output_exact(self):
        img, flt, out, _, _ = run_pair()
        np.testing.assert_allclose(out, conv2d_reference(img, flt),
                                   rtol=1e-3, atol=1e-3)

    def test_output_exact_5x5(self):
        img, flt, out, _, _ = run_pair(k=5, n_img=36)
        np.testing.assert_allclose(out, conv2d_reference(img, flt),
                                   rtol=1e-3, atol=1e-3)

    def test_rejects_partial_tiling(self):
        interp = InterpretedGeneralKernel(config=CFG)
        img = np.zeros((2, 33, 34), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            interp.run_traced(img, np.zeros((16, 2, 3, 3), dtype=np.float32))


class TestAudit:
    @pytest.mark.parametrize("k,n_img", [(3, 34), (5, 36)])
    def test_exact_counters(self, k, n_img):
        _, _, _, executed, analytic = run_pair(k=k, n_img=n_img)
        for counter in EXACT_COUNTERS:
            assert getattr(executed.ledger, counter) == pytest.approx(
                getattr(analytic.ledger, counter)
            ), counter

    def test_smem_requests_within_lumping_slack(self):
        _, _, _, executed, analytic = run_pair()
        a = analytic.ledger.smem_requests
        e = executed.ledger.smem_requests
        assert abs(a - e) <= 0.10 * max(a, e)

    def test_conflict_free_under_word_merge(self):
        _, _, _, executed, _ = run_pair()
        assert executed.ledger.smem_conflict_overhead == pytest.approx(1.0)

    def test_filter_padding_prevents_conflicts_in_execution(self):
        """The padded transposed filter store stays conflict-free even
        under the paper's strict serialization policy for the vectorized
        reads (only the scalar transposed store pays)."""
        _, _, _, executed, _ = run_pair(policy=BankConflictPolicy.PAPER)
        led = executed.ledger
        read_sites = [s for name, s in led.sites.items()
                      if name.startswith("sm.load_filter_row")]
        for site in read_sites:
            assert site.cycles == pytest.approx(site.executions)

    def test_timing_predictions_close(self):
        from repro.gpu.timing import TimingModel

        _, _, _, executed, analytic = run_pair()
        model = TimingModel(KEPLER_K40M)
        t_exec = model.evaluate(executed).total
        t_anal = model.evaluate(analytic).total
        assert t_exec == pytest.approx(t_anal, rel=0.15)

    def test_writeback_is_genuinely_uncoalesced_in_execution(self):
        _, _, _, executed, _ = run_pair()
        site = executed.ledger.sites["gm.store_out[gmem.write]"]
        # Far more sectors than a coalesced writeback would need.
        useful = site.request_bytes
        assert site.transactions * 32 > 1.5 * useful
