"""Tests for the profiler-style cost/timing reports."""

from repro.conv.tensors import ConvProblem
from repro.core.special import SpecialCaseKernel
from repro.gpu.report import format_breakdown, format_cost


def make_cost():
    p = ConvProblem.square(512, 3, channels=1, filters=4)
    kernel = SpecialCaseKernel()
    return kernel.cost(p), kernel.predict(p)


class TestFormatCost:
    def test_contains_launch_and_ledger_summary(self):
        cost, _ = make_cost()
        text = format_cost(cost)
        assert "launch: grid" in text
        assert "flops" in text
        assert "gmem read" in text
        assert "conflict overhead" in text

    def test_lists_every_site(self):
        cost, _ = make_cost()
        text = format_cost(cost)
        for site in cost.ledger.sites:
            assert site in text

    def test_human_units(self):
        cost, _ = make_cost()
        text = format_cost(cost)
        assert "MiB" in text or "KiB" in text
        assert "M" in text  # megacounts


class TestFormatBreakdown:
    def test_components_and_total(self):
        _, tb = make_cost()
        text = format_breakdown(tb)
        assert "compute" in text and "gmem" in text
        assert "total" in text
        assert "bound by" in text

    def test_bars_scale_with_share(self):
        _, tb = make_cost()
        lines = format_breakdown(tb).splitlines()
        dominant = [l for l in lines if tb.bound_by.split()[0] in l][0]
        assert dominant.count("#") >= 1
