"""Tests for the shared-memory bank model (paper Sec. 2.1 / Fig. 1)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel


@pytest.fixture
def paper_model(kepler):
    return SharedMemoryModel(kepler, BankConflictPolicy.PAPER)


@pytest.fixture
def merge_model(kepler):
    return SharedMemoryModel(kepler, BankConflictPolicy.WORD_MERGE)


class TestFig1:
    """The paper's Fig. 1 scenarios, byte for byte."""

    def test_conventional_floats_serialize_on_kepler(self, paper_model):
        # 32 consecutive floats on 8-byte banks: two floats per bank word.
        res = paper_model.access(np.arange(32) * 4, 4)
        assert res.cycles == 2
        assert res.conflict_degree == 2
        assert not res.conflict_free

    def test_matched_float2_is_conflict_free(self, paper_model):
        res = paper_model.access(np.arange(32) * 8, 8)
        assert res.cycles == 1
        assert res.conflict_free
        assert res.bandwidth_utilization == pytest.approx(1.0)

    def test_word_merge_resolves_subword_pairs(self, merge_model):
        res = merge_model.access(np.arange(32) * 4, 4)
        assert res.cycles == 1
        # ... but only half the bank width is used.
        assert res.bandwidth_utilization == pytest.approx(0.5)

    def test_fermi_floats_conflict_free(self, fermi):
        model = SharedMemoryModel(fermi, BankConflictPolicy.PAPER)
        res = model.access(np.arange(32) * 4, 4)
        assert res.cycles == 1
        assert res.bandwidth_utilization == pytest.approx(1.0)


class TestBroadcast:
    def test_identical_addresses_broadcast(self, paper_model):
        res = paper_model.access(np.zeros(32, dtype=np.int64), 4)
        assert res.cycles == 1
        assert res.unique_bytes == 4

    def test_two_address_groups_two_banks(self, paper_model):
        # Half the warp reads word 0, half reads word 1: distinct banks.
        addrs = np.array([0] * 16 + [8] * 16)
        res = paper_model.access(addrs, 4)
        assert res.cycles == 1


class TestConflicts:
    def test_stride_equal_to_bank_row_serializes_fully(self, paper_model, kepler):
        row = kepler.smem_bank_count * kepler.smem_bank_width
        res = paper_model.access(np.arange(32) * row, 4)
        assert res.cycles == 32
        assert res.conflict_degree == 32

    def test_word_merge_also_sees_true_conflicts(self, merge_model, kepler):
        row = kepler.smem_bank_count * kepler.smem_bank_width
        res = merge_model.access(np.arange(32) * row, 4)
        assert res.cycles == 32

    def test_odd_stride_padding_avoids_conflicts(self, paper_model, kepler):
        # The classic padding trick: stride of 33 words cycles all banks.
        word = kepler.smem_bank_width
        res = paper_model.access(np.arange(32) * 33 * word, word)
        assert res.conflict_free


class TestWideAccesses:
    def test_float4_takes_two_phases_on_kepler(self, paper_model):
        res = paper_model.access(np.arange(32) * 16, 16)
        assert res.phases == 2
        assert res.cycles == 2  # one clean cycle per phase
        assert res.bandwidth_utilization == pytest.approx(1.0)

    def test_float4_on_fermi_takes_four_phases(self, fermi):
        model = SharedMemoryModel(fermi)
        res = model.access(np.arange(32) * 16, 16)
        assert res.phases == 4
        assert res.cycles == 4


class TestValidation:
    def test_rejects_empty_request(self, paper_model):
        with pytest.raises(TraceError):
            paper_model.access(np.array([], dtype=np.int64), 4)

    def test_rejects_oversized_warp(self, paper_model):
        with pytest.raises(TraceError):
            paper_model.access(np.arange(33) * 4, 4)

    def test_rejects_misaligned_access(self, paper_model):
        with pytest.raises(TraceError):
            paper_model.access(np.array([2]), 4)

    def test_rejects_negative_address(self, paper_model):
        with pytest.raises(TraceError):
            paper_model.access(np.array([-4]), 4)

    def test_rejects_odd_access_size(self, paper_model):
        with pytest.raises(TraceError):
            paper_model.access(np.array([0]), 3)

    def test_read_write_aliases(self, paper_model):
        addrs = np.arange(16) * 8
        assert paper_model.read(addrs, 8) == paper_model.write(addrs, 8)
