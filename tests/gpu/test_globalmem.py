"""Tests for the global-memory coalescing model."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.gpu.memory.globalmem import GlobalMemoryModel


@pytest.fixture
def model(kepler):
    return GlobalMemoryModel(kepler)


class TestCoalescing:
    def test_contiguous_floats_fill_one_segment(self, model):
        res = model.access(np.arange(32) * 4, 4)
        assert res.transactions == 1
        assert res.efficiency == pytest.approx(1.0)
        assert res.fully_coalesced

    def test_contiguous_float4_fills_four_segments(self, model):
        res = model.access(np.arange(32) * 16, 16)
        assert res.transactions == 4
        assert res.efficiency == pytest.approx(1.0)

    def test_misaligned_base_costs_one_extra_segment(self, model):
        res = model.access(64 + np.arange(32) * 4, 4)
        assert res.transactions == 2
        assert res.efficiency == pytest.approx(0.5)

    def test_fully_strided_access_is_worst_case(self, model):
        res = model.access(np.arange(32) * 128, 4)
        assert res.transactions == 32
        assert res.efficiency == pytest.approx(4 / 128)

    def test_duplicate_addresses_count_once(self, model):
        res = model.access(np.zeros(32, dtype=np.int64), 4)
        assert res.transactions == 1
        assert res.unique_bytes == 4
        assert res.request_bytes == 128

    def test_sector_override(self, model):
        # 32-byte sectors: a 128-byte dense row costs 4 sectors.
        res = model.access(np.arange(32) * 4, 4, segment_size=32)
        assert res.transactions == 4
        assert res.bytes_moved == 128


class TestValidation:
    def test_rejects_empty(self, model):
        with pytest.raises(TraceError):
            model.access(np.array([], dtype=np.int64), 4)

    def test_rejects_misaligned(self, model):
        with pytest.raises(TraceError):
            model.access(np.array([3]), 4)

    def test_rejects_too_many_lanes(self, model):
        with pytest.raises(TraceError):
            model.access(np.arange(40) * 4, 4)

    def test_rejects_negative(self, model):
        with pytest.raises(TraceError):
            model.access(np.array([-8]), 4)

    def test_rejects_nonpositive_size(self, model):
        with pytest.raises(TraceError):
            model.access(np.array([0]), 0)
