"""Unit tests for the executable SIMT device."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.gpu.device import DeviceExecutor
from repro.gpu.memory.banks import BankConflictPolicy


@pytest.fixture
def executor(kepler):
    return DeviceExecutor(kepler)


class TestAllocation:
    def test_global_bases_aligned_and_disjoint(self, executor):
        a = executor.alloc_global(np.zeros(100), "a")
        b = executor.alloc_global(np.zeros(100), "b")
        assert a.base % 512 == 0 and b.base % 512 == 0
        assert b.base >= a.base + 100 * 4

    def test_constant_respects_capacity(self, executor, kepler):
        executor.alloc_constant(np.zeros(16))
        with pytest.raises(TraceError):
            executor.alloc_constant(np.zeros(kepler.const_memory_size // 4 + 1))

    def test_out_of_range_index_rejected(self, executor):
        arr = executor.alloc_global(np.zeros(8), "a")
        with pytest.raises(TraceError):
            arr.addresses(np.array([8]))
        with pytest.raises(TraceError):
            arr.addresses(np.array([-1]))


class TestExecution:
    def test_copy_kernel_moves_data_and_counts_traffic(self, executor):
        src_data = np.arange(64, dtype=np.float32)
        src = executor.alloc_global(src_data, "src")
        dst = executor.alloc_global(np.zeros(64), "dst")

        def body(block, src, dst):
            for warp in block.warps():
                vals = warp.gload(src, warp.lane, site="copy.in")
                warp.gstore(dst, warp.lane, vals, site="copy.out")

        executor.run_block(body, (0, 0), 64, src, dst)
        np.testing.assert_array_equal(dst.data, src_data)
        led = executor.tracer.ledger
        assert led.gmem_read_request_bytes == 256
        assert led.gmem_write_request_bytes == 256

    def test_vector_loads_observed_with_width(self, executor):
        src = executor.alloc_global(np.arange(64, dtype=np.float32), "src")

        def body(block, src):
            for warp in block.warps():
                vals = warp.gload(src, warp.lane * 2, vector=2)
                assert vals.shape == (32, 2)

        executor.run_block(body, (0, 0), 32, src)
        # 32 lanes x 8 bytes dense = 256 B = 8 sectors.
        assert executor.tracer.ledger.gmem_read_transactions == 8

    def test_shared_memory_roundtrip_and_banks(self, executor):
        def body(block):
            smem = block.shared(64, "buf")
            for warp in block.warps():
                warp.sstore(smem, warp.lane, warp.lane.astype(np.float32))
            block.sync()
            for warp in block.warps():
                vals = warp.sload(smem, warp.lane)
                np.testing.assert_array_equal(vals, warp.lane)

        block = executor.run_block(body, (0, 0), 32)
        assert block.smem_bytes == 256
        assert executor.tracer.ledger.syncthreads == 1

    def test_paper_policy_sees_unmatched_conflicts(self, kepler):
        ex = DeviceExecutor(kepler, BankConflictPolicy.PAPER)

        def body(block):
            smem = block.shared(32)
            for warp in block.warps():
                warp.sload(smem, warp.lane)  # consecutive floats: 2-way

        ex.run_block(body, (0, 0), 32)
        assert ex.tracer.ledger.smem_conflict_overhead == pytest.approx(2.0)

    def test_constant_broadcast(self, executor):
        carr = executor.alloc_constant(np.arange(9, dtype=np.float32))

        def body(block, carr):
            for warp in block.warps():
                vals = warp.cload(carr, 4)
                np.testing.assert_array_equal(vals, np.full(32, 4.0))

        executor.run_block(body, (0, 0), 32, carr)
        assert executor.tracer.ledger.cmem_cycles == 1

    def test_fma_counts_flops(self, executor):
        def body(block):
            for warp in block.warps():
                acc = np.zeros(warp.lane.size, dtype=np.float32)
                acc = warp.fma(acc, 2.0, 3.0)
                np.testing.assert_array_equal(acc, np.full(32, 6.0))

        executor.run_block(body, (0, 0), 32)
        assert executor.tracer.ledger.flops == 64

    def test_finish_requires_execution(self, executor):
        with pytest.raises(TraceError):
            executor.finish("empty")

    def test_mixed_block_sizes_rejected(self, executor):
        def body(block):
            pass

        executor.run_block(body, (0, 0), 64)
        with pytest.raises(TraceError):
            executor.run_block(body, (1, 0), 128)

    def test_finish_packages_launch(self, executor):
        def body(block):
            block.shared(128)

        executor.run_block(body, (0, 0), 64)
        executor.run_block(body, (1, 0), 64)
        cost = executor.finish("k", registers_per_thread=20)
        assert cost.launch.total_blocks == 2
        assert cost.launch.threads_per_block == 64
        assert cost.launch.smem_per_block == 512
