"""The cost-model audit: Algorithm 1 executed on the SIMT interpreter
versus the analytic site-replay cost model.

``SpecialCaseKernel.cost()`` derives traffic by replaying one
representative warp pattern per access site and scaling;
``InterpretedSpecialKernel`` *executes* the same algorithm with every
access observed.  On aligned problems the two must agree exactly on all
compute and on-chip counters; DRAM sector counts may differ by a few
percent because the analytic model idealizes row-base alignment (the
executed trace sees the true, occasionally sector-straddling, bases).
"""

import numpy as np
import pytest

from repro.conv.reference import conv2d_single_channel
from repro.conv.tensors import ConvProblem
from repro.core.config import SpecialCaseConfig
from repro.core.special import SpecialCaseKernel
from repro.core.special_interpreted import InterpretedSpecialKernel
from repro.errors import ConfigurationError
from repro.gpu.arch import FERMI_M2090, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy

CFG = SpecialCaseConfig(block_w=64, block_h=4)

EXACT_COUNTERS = (
    "flops",
    "smem_requests",
    "smem_cycles",
    "smem_request_bytes",
    "cmem_requests",
    "cmem_cycles",
    "syncthreads",
    "gmem_read_request_bytes",
    "gmem_write_request_bytes",
    "gmem_write_transactions",
)


def run_pair(k=3, f=2, height=10, width=130, arch=KEPLER_K40M,
             policy=BankConflictPolicy.WORD_MERGE, matched=True, seed=0):
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((height, width)).astype(np.float32)
    flt = rng.standard_normal((f, k, k)).astype(np.float32)
    interp = InterpretedSpecialKernel(arch=arch, config=CFG,
                                      matched=matched, bank_policy=policy)
    out, executed = interp.run_traced(img, flt)
    analytic_kernel = SpecialCaseKernel(arch=arch, config=CFG,
                                        matched=matched, bank_policy=policy)
    problem = ConvProblem(height=height, width=width, channels=1,
                          filters=f, kernel_size=k)
    analytic = analytic_kernel.cost(problem)
    return img, flt, out, executed, analytic


class TestFunctional:
    @pytest.mark.parametrize("k,width,height", [(3, 130, 10), (5, 132, 12)])
    def test_interpreted_output_exact(self, k, width, height):
        img, flt, out, _, _ = run_pair(k=k, width=width, height=height)
        ref = conv2d_single_channel(img, flt)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_rejects_unaligned_problems(self):
        interp = InterpretedSpecialKernel(config=CFG)
        img = np.zeros((11, 130), dtype=np.float32)  # out height 9 % 4 != 0
        with pytest.raises(ConfigurationError):
            interp.run_traced(img, np.zeros((1, 3, 3), dtype=np.float32))


class TestAudit:
    @pytest.mark.parametrize("k,width,height", [(3, 130, 10), (5, 132, 12)])
    def test_on_chip_counters_exact(self, k, width, height):
        _, _, _, executed, analytic = run_pair(k=k, width=width, height=height)
        for counter in EXACT_COUNTERS:
            assert getattr(executed.ledger, counter) == pytest.approx(
                getattr(analytic.ledger, counter)
            ), counter

    def test_dram_sectors_within_alignment_slack(self):
        _, _, _, executed, analytic = run_pair()
        a = analytic.ledger.gmem_read_transactions
        e = executed.ledger.gmem_read_transactions
        # The analytic model assumes sector-aligned row bases; the
        # executed trace sees the true bases.
        assert a <= e <= 1.15 * a

    def test_launch_geometry_matches(self):
        _, _, _, executed, analytic = run_pair()
        assert executed.launch.total_blocks == analytic.launch.total_blocks
        assert executed.launch.threads_per_block == \
            analytic.launch.threads_per_block
        assert executed.launch.smem_per_block == analytic.launch.smem_per_block

    def test_unmatched_variant_agrees_too(self):
        _, _, _, executed, analytic = run_pair(matched=False)
        for counter in ("flops", "smem_cycles", "cmem_cycles", "syncthreads"):
            assert getattr(executed.ledger, counter) == pytest.approx(
                getattr(analytic.ledger, counter)
            ), counter

    def test_paper_policy_serialization_agrees(self):
        """Under the paper's policy the executed unmatched kernel shows
        the same 2x shared-memory serialization the analytic model does."""
        _, _, _, exec_m, anal_m = run_pair(policy=BankConflictPolicy.PAPER)
        _, _, _, exec_u, anal_u = run_pair(policy=BankConflictPolicy.PAPER,
                                           matched=False)
        assert exec_u.ledger.smem_conflict_overhead == pytest.approx(
            anal_u.ledger.smem_conflict_overhead)
        assert exec_u.ledger.smem_conflict_overhead == pytest.approx(2.0)
        assert exec_m.ledger.smem_conflict_overhead == pytest.approx(1.0)

    def test_fermi_scalar_kernel_agrees(self):
        _, _, _, executed, analytic = run_pair(arch=FERMI_M2090)
        for counter in ("flops", "smem_cycles", "cmem_cycles"):
            assert getattr(executed.ledger, counter) == pytest.approx(
                getattr(analytic.ledger, counter)
            ), counter

    def test_timing_predictions_close(self):
        """End to end, the executed trace and the analytic model land on
        the same modeled time (within the DRAM alignment slack)."""
        from repro.gpu.timing import TimingModel

        _, _, _, executed, analytic = run_pair()
        model = TimingModel(KEPLER_K40M)
        t_exec = model.evaluate(executed).total
        t_anal = model.evaluate(analytic).total
        assert t_exec == pytest.approx(t_anal, rel=0.15)
