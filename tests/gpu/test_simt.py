"""Tests for grid/block geometry and launch validation."""

import numpy as np
import pytest

from repro.errors import LaunchConfigError
from repro.gpu.simt import Dim3, LaunchConfig, lane_ids, warp_count


class TestDim3:
    def test_count(self):
        assert Dim3(4, 3, 2).count == 24

    def test_defaults(self):
        assert Dim3(5).count == 5

    def test_iteration(self):
        assert tuple(Dim3(1, 2, 3)) == (1, 2, 3)

    def test_rejects_zero(self):
        with pytest.raises(LaunchConfigError):
            Dim3(0)

    def test_rejects_negative(self):
        with pytest.raises(LaunchConfigError):
            Dim3(4, -1)


class TestWarps:
    def test_exact_warps(self):
        assert warp_count(128) == 4

    def test_partial_warp_rounds_up(self):
        assert warp_count(100) == 4

    def test_lane_ids_full_warp(self):
        lanes = lane_ids(1, 128)
        assert lanes[0] == 32 and lanes[-1] == 63

    def test_lane_ids_partial_last_warp(self):
        lanes = lane_ids(3, 100)
        assert len(lanes) == 4
        assert lanes[-1] == 99

    def test_lane_ids_out_of_range(self):
        with pytest.raises(LaunchConfigError):
            lane_ids(4, 128)

    def test_warp_count_rejects_nonpositive(self):
        with pytest.raises(LaunchConfigError):
            warp_count(0)


class TestLaunchConfig:
    def test_totals(self):
        lc = LaunchConfig(grid=Dim3(10, 2), block=Dim3(64, 2))
        assert lc.total_blocks == 20
        assert lc.threads_per_block == 128
        assert lc.total_threads == 2560
        assert lc.warps_per_block() == 4
        assert lc.total_warps() == 80

    def test_validate_passes_reasonable_launch(self, kepler):
        LaunchConfig(grid=Dim3(100), block=Dim3(256),
                     registers_per_thread=32, smem_per_block=8192).validate(kepler)

    def test_validate_rejects_too_many_threads(self, kepler):
        lc = LaunchConfig(grid=Dim3(1), block=Dim3(2048))
        with pytest.raises(LaunchConfigError):
            lc.validate(kepler)

    def test_validate_rejects_too_much_smem(self, kepler):
        lc = LaunchConfig(grid=Dim3(1), block=Dim3(32), smem_per_block=64 * 1024)
        with pytest.raises(LaunchConfigError):
            lc.validate(kepler)

    def test_validate_rejects_register_hogs(self, kepler):
        lc = LaunchConfig(grid=Dim3(1), block=Dim3(32), registers_per_thread=300)
        with pytest.raises(LaunchConfigError):
            lc.validate(kepler)

    def test_fermi_register_limit_differs(self, fermi, kepler):
        lc = LaunchConfig(grid=Dim3(1), block=Dim3(32), registers_per_thread=100)
        lc.validate(kepler)
        with pytest.raises(LaunchConfigError):
            lc.validate(fermi)
