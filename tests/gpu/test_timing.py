"""Tests for the analytical timing model."""

import dataclasses

import numpy as np
import pytest

from repro.errors import TraceError
from repro.gpu.simt import Dim3, LaunchConfig
from repro.gpu.timing import TimingModel
from repro.gpu.trace import KernelCost, KernelTracer


def make_cost(kepler, flops=1e9, gmem_reqs=0, smem_reqs=0, blocks=1000,
              threads=256, prefetch=False, smem_bytes=0):
    tracer = KernelTracer(kepler)
    tracer.flops(flops)
    if gmem_reqs:
        tracer.gmem_read(np.arange(32) * 4, 4, count=gmem_reqs)
    if smem_reqs:
        tracer.smem_read(np.arange(32) * 8, 8, count=smem_reqs)
    launch = LaunchConfig(grid=Dim3(blocks), block=Dim3(threads),
                          registers_per_thread=32, smem_per_block=smem_bytes)
    return tracer.finish(name="t", launch=launch, software_prefetch=prefetch)


class TestComponents:
    def test_pure_compute_time(self, kepler):
        model = TimingModel(kepler)
        cost = make_cost(kepler, flops=1e9)
        tb = model.evaluate(cost)
        expected = 1e9 / (kepler.peak_sp_gflops * 1e9 * model.compute_efficiency)
        assert tb.t_compute == pytest.approx(expected)
        assert tb.bound_by == "compute"

    def test_gmem_bound_kernel(self, kepler):
        model = TimingModel(kepler)
        cost = make_cost(kepler, flops=1.0, gmem_reqs=1e7)
        tb = model.evaluate(cost)
        assert tb.bound_by == "gmem"
        assert tb.t_gmem > tb.t_compute

    def test_smem_bound_kernel(self, kepler):
        model = TimingModel(kepler)
        cost = make_cost(kepler, flops=1.0, smem_reqs=1e8)
        tb = model.evaluate(cost)
        assert tb.bound_by == "smem"

    def test_l2_never_dominates_dram_for_unreused_traffic(self, kepler):
        model = TimingModel(kepler)
        cost = make_cost(kepler, flops=1.0, gmem_reqs=1e7)
        tb = model.evaluate(cost)
        assert tb.t_l2 < tb.t_gmem

    def test_total_at_least_max_component(self, kepler):
        model = TimingModel(kepler)
        cost = make_cost(kepler, flops=1e10, gmem_reqs=1e6, smem_reqs=1e6)
        tb = model.evaluate(cost)
        assert tb.total >= max(tb.t_compute, tb.t_gmem, tb.t_smem)

    def test_launch_overhead_floor(self, kepler):
        model = TimingModel(kepler)
        cost = make_cost(kepler, flops=1.0)
        assert model.evaluate(cost).total >= model.launch_overhead_s


class TestOverlap:
    def test_prefetch_helps_at_low_occupancy(self, kepler):
        # 24 KB of smem per block -> 2 blocks/SM -> 16 warps; without
        # prefetch that is exactly the hiding threshold, with prefetch
        # it saturates.  Use 8 warps to see the difference.
        cost = make_cost(kepler, flops=1e9, gmem_reqs=1e6, threads=128,
                         smem_bytes=24 * 1024)
        model = TimingModel(kepler)
        with_pf = model.evaluate(dataclasses.replace(cost, software_prefetch=True))
        without = model.evaluate(dataclasses.replace(cost, software_prefetch=False))
        assert with_pf.eta >= without.eta
        assert with_pf.total <= without.total

    def test_eta_bounded(self, kepler):
        model = TimingModel(kepler)
        tb = model.evaluate(make_cost(kepler, flops=1e9))
        assert 0.0 <= tb.eta <= model.eta_max


class TestWaves:
    def test_small_grid_pays_quantization(self, kepler):
        model = TimingModel(kepler)
        big = model.evaluate(make_cost(kepler, flops=1e10, blocks=10000))
        small = model.evaluate(make_cost(kepler, flops=1e10, blocks=10))
        # Same work on 10 blocks cannot use the whole machine.
        assert small.total > big.total
        assert small.waves < 1.0

    def test_gflops_helper(self, kepler):
        model = TimingModel(kepler)
        tb = model.evaluate(make_cost(kepler, flops=1e9))
        assert tb.gflops(1e9) == pytest.approx(1.0 / tb.total / 1e9 * 1e9)

    def test_gflops_rejects_zero_time(self, kepler):
        model = TimingModel(kepler)
        tb = model.evaluate(make_cost(kepler, flops=1e9))
        bad = dataclasses.replace(tb, total=0.0)
        with pytest.raises(TraceError):
            bad.gflops(1e9)


class TestSync:
    def test_sync_cost_scales_with_barriers(self, kepler):
        model = TimingModel(kepler)
        tracer = KernelTracer(kepler)
        tracer.flops(1e9)
        tracer.sync(100 * 1000)
        launch = LaunchConfig(grid=Dim3(1000), block=Dim3(256),
                              registers_per_thread=32)
        heavy = model.evaluate(tracer.finish(name="s", launch=launch))
        light = model.evaluate(make_cost(kepler, flops=1e9, blocks=1000))
        assert heavy.t_sync > light.t_sync
