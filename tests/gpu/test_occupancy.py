"""Tests for the occupancy calculator."""

import pytest

from repro.errors import LaunchConfigError
from repro.gpu.occupancy import occupancy
from repro.gpu.simt import Dim3, LaunchConfig


def launch(threads=256, regs=32, smem=0):
    return LaunchConfig(grid=Dim3(64), block=Dim3(threads),
                        registers_per_thread=regs, smem_per_block=smem)


class TestLimits:
    def test_thread_limited(self, kepler):
        occ = occupancy(kepler, launch(threads=1024, regs=16))
        assert occ.blocks_per_sm == 2
        assert occ.limiter in ("threads", "warps")
        assert occ.occupancy_fraction(kepler) == pytest.approx(1.0)

    def test_smem_limited(self, kepler):
        occ = occupancy(kepler, launch(smem=16 * 1024))
        assert occ.limiter == "smem"
        assert occ.blocks_per_sm == 3

    def test_register_limited(self, kepler):
        occ = occupancy(kepler, launch(threads=256, regs=128))
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 2

    def test_block_count_limited(self, kepler):
        occ = occupancy(kepler, launch(threads=32, regs=16))
        assert occ.limiter == "blocks"
        assert occ.blocks_per_sm == kepler.max_blocks_per_sm

    def test_warps_per_sm(self, kepler):
        occ = occupancy(kepler, launch(threads=256, regs=32))
        assert occ.warps_per_sm == occ.blocks_per_sm * 8


class TestMonotonicity:
    def test_more_registers_never_increase_occupancy(self, kepler):
        prev = None
        for regs in (16, 32, 64, 128, 255):
            occ = occupancy(kepler, launch(regs=regs))
            if prev is not None:
                assert occ.blocks_per_sm <= prev
            prev = occ.blocks_per_sm

    def test_more_smem_never_increases_occupancy(self, kepler):
        prev = None
        for smem in (1024, 4096, 16384, 48 * 1024):
            occ = occupancy(kepler, launch(smem=smem))
            if prev is not None:
                assert occ.blocks_per_sm <= prev
            prev = occ.blocks_per_sm


class TestErrors:
    def test_unresident_launch_rejected(self, fermi):
        # 1024 threads x 63 registers exceeds Fermi's register file.
        with pytest.raises(LaunchConfigError):
            occupancy(fermi, launch(threads=1024, regs=63))


class TestLimitsBreakdown:
    def test_limits_dictionary_complete(self, kepler):
        from repro.gpu.occupancy import occupancy_limits

        limits = occupancy_limits(kepler, launch(threads=256, regs=64,
                                                 smem=8192))
        assert set(limits) == {"threads", "warps", "blocks", "smem",
                               "registers"}
        assert all(v >= 0 for v in limits.values())

    def test_report_names_limiter(self, kepler):
        from repro.gpu.report import format_occupancy

        text = format_occupancy(kepler, launch(smem=16 * 1024))
        assert "<- limiter" in text
        assert "smem" in text
        assert "occupancy" in text
