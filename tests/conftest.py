"""Shared fixtures for the repro test suite."""

import pathlib

import numpy as np
import pytest

from repro.gpu.arch import FERMI_M2090, KEPLER_K40M, MAXWELL_GM204


@pytest.fixture
def repo_root():
    return pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture
def kepler():
    return KEPLER_K40M


@pytest.fixture
def fermi():
    return FERMI_M2090


@pytest.fixture
def maxwell():
    return MAXWELL_GM204


@pytest.fixture(params=[KEPLER_K40M, FERMI_M2090, MAXWELL_GM204],
                ids=["kepler", "fermi", "maxwell"])
def any_arch(request):
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
