"""Deterministic span-fold profiler and the opt-in sampling hooks."""

import json
import time

import pytest

from repro.obs import Tracer, chrome_trace, validate_chrome_trace
from repro.obs.perf.profiler import (
    SamplingProfiler,
    clear_sample_profiles,
    collapsed_stacks,
    maybe_profile,
    parse_collapsed,
    profiling_enabled,
    sample_profiles,
    sampled_collapsed,
    span_profile,
)
from repro.obs.tracing import WALL_TRACK


def _add_wall(tracer, name, start_s, duration_s, depth):
    tracer.add_span(name, "test", start_s=start_s, duration_s=duration_s,
                    track=WALL_TRACK, depth=depth)


def _nested_tracer() -> Tracer:
    """outer [0,10) with children inner [1,4) and inner [5,7);
    the first inner has a leaf child [2,3)."""
    tracer = Tracer()
    _add_wall(tracer, "outer", 0.0, 10.0, depth=0)
    _add_wall(tracer, "inner", 1.0, 3.0, depth=1)
    _add_wall(tracer, "leaf", 2.0, 1.0, depth=2)
    _add_wall(tracer, "inner", 5.0, 2.0, depth=1)
    return tracer


class TestSpanFold:
    def test_self_time_subtracts_direct_children(self):
        profile = span_profile(_nested_tracer())
        frames = {f["frame"]: f for f in profile["frames"]}
        # outer: 10 total - 3 - 2 children = 5 self.
        assert frames["outer"]["self_s"] == pytest.approx(5.0)
        assert frames["outer"]["cum_s"] == pytest.approx(10.0)
        # inner aggregates both instances: (3 - 1 leaf) + 2 = 4 self.
        assert frames["inner"]["self_s"] == pytest.approx(4.0)
        assert frames["inner"]["cum_s"] == pytest.approx(5.0)
        assert frames["inner"]["calls"] == 2
        assert frames["leaf"]["self_s"] == pytest.approx(1.0)
        assert profile["total_s"] == pytest.approx(10.0)

    def test_stack_paths(self):
        profile = span_profile(_nested_tracer())
        stacks = {row["stack"]: row for row in profile["stacks"]}
        assert set(stacks) == {"outer", "outer;inner", "outer;inner;leaf"}
        assert stacks["outer;inner"]["calls"] == 2
        assert stacks["outer;inner"]["self_s"] == pytest.approx(4.0)

    def test_recursion_counts_cumulative_once(self):
        tracer = Tracer()
        _add_wall(tracer, "f", 0.0, 4.0, depth=0)
        _add_wall(tracer, "f", 1.0, 2.0, depth=1)
        profile = span_profile(tracer)
        frames = {f["frame"]: f for f in profile["frames"]}
        # Self times still partition the wall (2 + 2) but the recursive
        # instance must not double the cumulative attribution.
        assert frames["f"]["self_s"] == pytest.approx(4.0)
        assert frames["f"]["cum_s"] == pytest.approx(4.0)
        assert frames["f"]["calls"] == 2

    def test_frame_name_folds_payload_token(self):
        tracer = Tracer()
        _add_wall(tracer, "dse:general GeneralCaseConfig(w=32)", 0.0, 1.0, 0)
        _add_wall(tracer, "dse:general GeneralCaseConfig(w=64)", 2.0, 1.0, 0)
        profile = span_profile(tracer)
        assert len(profile["frames"]) == 1
        assert profile["frames"][0]["frame"] == "dse:general"
        assert profile["frames"][0]["calls"] == 2

    def test_virtual_spans_are_excluded(self):
        tracer = Tracer()
        _add_wall(tracer, "host", 0.0, 1.0, depth=0)
        tracer.add_span("device", "kernel", start_s=0.0, duration_s=9.0)
        profile = span_profile(tracer)
        assert [f["frame"] for f in profile["frames"]] == ["host"]

    def test_live_tracer_spans_fold(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.001)
        profile = span_profile(tracer)
        frames = {f["frame"]: f for f in profile["frames"]}
        assert frames["inner"]["cum_s"] >= 0.001
        assert frames["outer"]["cum_s"] >= frames["inner"]["cum_s"]


class TestCollapsedFormat:
    def test_round_trip(self):
        text = collapsed_stacks(_nested_tracer(), include_samples=False)
        stacks = parse_collapsed(text)
        assert stacks[("outer",)] == 5_000_000
        assert stacks[("outer", "inner")] == 4_000_000
        assert stacks[("outer", "inner", "leaf")] == 1_000_000

    def test_zero_self_stacks_are_dropped(self):
        tracer = Tracer()
        _add_wall(tracer, "shell", 0.0, 1.0, depth=0)
        _add_wall(tracer, "work", 0.0, 1.0, depth=1)
        stacks = parse_collapsed(
            collapsed_stacks(tracer, include_samples=False))
        assert ("shell",) not in stacks
        assert stacks[("shell", "work")] == 1_000_000

    @pytest.mark.parametrize("bad", [
        "no-value-line",
        "stack notanumber",
        "stack -3",
        ";empty;frame 5",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_collapsed(bad)


class TestChromeTraceProfile:
    def test_profile_section_embeds_and_validates(self):
        tracer = _nested_tracer()
        doc = chrome_trace(tracer, profile=True)
        validate_chrome_trace(doc)
        profile = doc["otherData"]["profile"]
        assert profile["clock"] == "wall"
        assert profile["span_count"] == 4
        json.dumps(profile)   # must stay JSON-serializable

    def test_profile_section_absent_by_default(self):
        doc = chrome_trace(_nested_tracer())
        validate_chrome_trace(doc)
        assert "profile" not in doc.get("otherData", {})


def _spin(deadline_s):
    end = time.perf_counter() + deadline_s
    total = 0
    while time.perf_counter() < end:
        total += 1
    return total


class TestSamplingProfiler:
    def test_samples_the_calling_thread(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            _spin(0.05)
        assert profiler.sample_count > 0
        stacks = profiler.stop()
        leaves = {stack[-1] for stack in stacks}
        assert any("test_profile" in leaf for leaf in leaves)

    def test_maybe_profile_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        clear_sample_profiles()
        assert not profiling_enabled()
        with maybe_profile("tag") as handle:
            _spin(0.005)
        assert handle.sample_count == 0
        assert sample_profiles() == {}

    def test_maybe_profile_enabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        clear_sample_profiles()
        try:
            assert profiling_enabled()
            with maybe_profile("simt.test", interval_s=0.001):
                _spin(0.05)
            store = sample_profiles()
            assert "simt.test" in store
            assert sum(store["simt.test"].values()) > 0
            lines = sampled_collapsed()
            assert lines and all(
                line.startswith("sampled;simt.test;") for line in lines)
            parse_collapsed("\n".join(lines))
        finally:
            clear_sample_profiles()

    def test_sampled_stacks_ride_the_collapsed_export(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "yes")
        clear_sample_profiles()
        try:
            with maybe_profile("hook", interval_s=0.001):
                _spin(0.03)
            text = collapsed_stacks(_nested_tracer())
            stacks = parse_collapsed(text)
            assert any(stack[0] == "sampled" for stack in stacks)
            assert ("outer",) in stacks
        finally:
            clear_sample_profiles()
