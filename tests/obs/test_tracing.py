"""Tests for the span tracer (wall + virtual clocks)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Tracer,
    VIRTUAL_TRACK,
    WALL_TRACK,
    get_tracer,
    instrument,
    reset_tracer,
    set_tracer,
)


class TestWallSpans:
    def test_span_records_duration_and_args(self):
        tracer = Tracer()
        with tracer.span("work", category="test") as args:
            args["k"] = "v"
        assert len(tracer) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.category == "test"
        assert span.track == WALL_TRACK
        assert span.duration_s >= 0.0
        assert span.args == {"k": "v"}

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # Inner closes first but nests inside the outer's window.
        assert by_name["inner"].start_s >= by_name["outer"].start_s

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert len(tracer) == 1


class TestVirtualSpans:
    def test_add_span_explicit_times(self):
        tracer = Tracer()
        tracer.add_span("kernel", "kernel", start_s=1.5, duration_s=0.25,
                        args={"backend": "special"})
        span = tracer.spans[0]
        assert span.track == VIRTUAL_TRACK
        assert span.start_s == 1.5
        assert span.end_s == 1.75

    def test_instant_marker(self):
        tracer = Tracer()
        tracer.instant("hit", category="plan-cache", track=VIRTUAL_TRACK,
                       ts_s=2.0)
        assert tracer.spans[0].duration_s == 0.0
        assert tracer.spans[0].start_s == 2.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ObservabilityError):
            Tracer().add_span("x", "c", start_s=0.0, duration_s=-1.0)

    def test_rejects_unknown_track(self):
        with pytest.raises(ObservabilityError):
            Tracer().add_span("x", "c", 0.0, 1.0, track="sidereal")


class TestBufferBounds:
    def test_drops_beyond_cap(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.add_span("s%d" % i, "c", float(i), 0.5)
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_clear_resets(self):
        tracer = Tracer(max_spans=1)
        tracer.add_span("a", "c", 0.0, 1.0)
        tracer.add_span("b", "c", 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0


class TestQueries:
    def test_categories_and_by_category(self):
        tracer = Tracer()
        tracer.add_span("a", "batch", 0.0, 1.0)
        tracer.add_span("b", "kernel", 0.0, 1.0)
        tracer.add_span("c", "kernel", 1.0, 1.0)
        assert tracer.categories() == {"batch", "kernel"}
        assert len(tracer.by_category("kernel")) == 2


class TestGlobalTracer:
    def test_swap_and_reset(self):
        original = get_tracer()
        try:
            mine = Tracer()
            assert set_tracer(mine) is original
            assert get_tracer() is mine
            fresh = reset_tracer()
            assert get_tracer() is fresh is not mine
        finally:
            set_tracer(original)


class TestInstrument:
    def test_context_manager_records_span_and_metrics(self):
        from repro.obs import Registry

        tracer = Tracer()
        registry = Registry()
        with instrument("phase.one", category="experiment",
                        registry=registry, tracer=tracer) as inst:
            inst.annotate(rows=3)
        assert tracer.spans[0].category == "experiment"
        assert tracer.spans[0].args["rows"] == 3
        assert registry.counter(
            "phase_one_calls_total", labelnames=("status",)
        ).value(status="ok") == 1
        assert registry.histogram("phase_one_seconds").count() == 1

    def test_decorator_counts_errors(self):
        from repro.obs import Registry

        tracer = Tracer()
        registry = Registry()

        @instrument("job", registry=registry, tracer=tracer)
        def fails():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            fails()
        assert registry.counter(
            "job_calls_total", labelnames=("status",)
        ).value(status="error") == 1
        assert tracer.spans[0].args["error"] == "RuntimeError"

    def test_decorator_passes_through_return(self):
        from repro.obs import Registry

        @instrument("f", registry=Registry(), tracer=Tracer())
        def f(x):
            return x * 2

        assert f(21) == 42


class TestInstrumentErrorPath:
    """An exception must count exactly once, close the span, re-raise."""

    def _surfaces(self):
        from repro.obs import Registry

        return Registry(), Tracer()

    def test_context_manager_counts_error_exactly_once(self):
        registry, tracer = self._surfaces()
        with pytest.raises(KeyError):
            with instrument("step", registry=registry, tracer=tracer):
                raise KeyError("missing")
        counter = registry.counter("step_calls_total",
                                   labelnames=("status",))
        assert counter.value(status="error") == 1
        assert counter.value(status="ok") == 0
        assert counter.total() == 1

    def test_context_manager_closes_span_and_reraises(self):
        registry, tracer = self._surfaces()
        original = ValueError("boom")
        with pytest.raises(ValueError) as caught:
            with instrument("step", registry=registry, tracer=tracer):
                raise original
        assert caught.value is original       # not wrapped or swallowed
        assert len(tracer.spans) == 1         # span closed despite the raise
        span = tracer.spans[0]
        assert span.args["error"] == "ValueError"
        assert span.duration_s >= 0.0
        # The duration still lands in the histogram.
        assert registry.histogram("step_seconds").count() == 1

    def test_decorator_counts_error_exactly_once_and_reraises(self):
        registry, tracer = self._surfaces()

        @instrument("job", registry=registry, tracer=tracer)
        def fails():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            fails()
        counter = registry.counter("job_calls_total", labelnames=("status",))
        assert counter.value(status="error") == 1
        assert counter.total() == 1
        assert len(tracer.spans) == 1

    def test_mixed_outcomes_split_by_status(self):
        registry, tracer = self._surfaces()

        @instrument("job", registry=registry, tracer=tracer)
        def maybe(fail):
            if fail:
                raise RuntimeError("nope")
            return "ok"

        assert maybe(False) == "ok"
        with pytest.raises(RuntimeError):
            maybe(True)
        assert maybe(False) == "ok"
        counter = registry.counter("job_calls_total", labelnames=("status",))
        assert counter.value(status="ok") == 2
        assert counter.value(status="error") == 1
        assert registry.histogram("job_seconds").count() == 3
        assert len(tracer.spans) == 3

    def test_nested_error_closes_both_spans(self):
        registry, tracer = self._surfaces()
        with pytest.raises(RuntimeError):
            with instrument("outer", registry=registry, tracer=tracer):
                with instrument("inner", registry=registry, tracer=tracer):
                    raise RuntimeError("deep")
        by_name = {s.name: s for s in tracer.spans}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].args["error"] == "RuntimeError"
        assert by_name["inner"].args["error"] == "RuntimeError"
