"""End-to-end telemetry: the stack's series must match the models' own
return values, and a served trace must export a loadable Perfetto file."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.core.special import SpecialCaseKernel
from repro.gpu.arch import KEPLER_K40M
from repro.gpu.timing import TimingModel
from repro.obs import (
    Registry,
    Tracer,
    chrome_trace,
    set_registry,
    set_tracer,
    validate_chrome_trace,
)
from repro.serve import ServeEngine, synthetic_trace


@pytest.fixture
def scoped_globals():
    """Swap in fresh process-wide registry/tracer for the test's duration."""
    registry, tracer = Registry(), Tracer()
    old_registry = set_registry(registry)
    old_tracer = set_tracer(tracer)
    try:
        yield registry, tracer
    finally:
        set_registry(old_registry)
        set_tracer(old_tracer)


class TestCostModelCountersMatch:
    """The acceptance bar: registry counters == the model's direct returns."""

    PROBLEM = ConvProblem.square(512, 3, channels=1, filters=8)

    def test_counters_equal_ledger_values(self, scoped_globals):
        registry, _ = scoped_globals
        kernel = SpecialCaseKernel(arch=KEPLER_K40M)
        cost = kernel.cost(self.PROBLEM)     # publishes into the registry
        led, name = cost.ledger, cost.name

        gmem_tx = registry.get("gpu_gmem_transactions_total")
        assert gmem_tx.value(kernel=name, op="read") == pytest.approx(
            led.gmem_read_transactions)
        assert gmem_tx.value(kernel=name, op="write") == pytest.approx(
            led.gmem_write_transactions)
        assert registry.get("gpu_smem_cycles_total").value(
            kernel=name) == pytest.approx(led.smem_cycles)
        assert registry.get("gpu_smem_bank_conflict_cycles_total").value(
            kernel=name) == pytest.approx(
                max(0.0, led.smem_cycles - led.smem_min_cycles))
        assert registry.get("gpu_cmem_cycles_total").value(
            kernel=name) == pytest.approx(led.cmem_cycles)
        assert registry.get("gpu_flops_total").value(
            kernel=name) == pytest.approx(led.flops)
        assert registry.get("gpu_kernel_costs_total").value(kernel=name) == 1

    def test_per_site_series_cover_the_ledger(self, scoped_globals):
        registry, _ = scoped_globals
        cost = SpecialCaseKernel(arch=KEPLER_K40M).cost(self.PROBLEM)
        site_exec = registry.get("gpu_site_executions_total")
        for site, stats in cost.ledger.sites.items():
            assert site_exec.value(kernel=cost.name, site=site) == \
                pytest.approx(stats.executions)

    def test_private_registry_redirects_publication(self, scoped_globals):
        global_registry, _ = scoped_globals
        from repro.gpu.trace import publish_kernel_cost

        private = Registry()
        cost = SpecialCaseKernel(arch=KEPLER_K40M).cost(self.PROBLEM)
        publish_kernel_cost(cost, registry=private)
        tx_global = global_registry.get("gpu_gmem_transactions_total")
        tx_private = private.get("gpu_gmem_transactions_total")
        # cost() published once globally; the explicit call went private.
        assert tx_private.value(kernel=cost.name, op="read") == \
            pytest.approx(tx_global.value(kernel=cost.name, op="read"))

    def test_timing_mirror_matches_breakdown_total(self):
        registry = Registry()
        kernel = SpecialCaseKernel(arch=KEPLER_K40M)
        model = TimingModel(KEPLER_K40M, registry=registry)
        breakdown = kernel.predict(self.PROBLEM, model)
        seconds = registry.get("gpu_modeled_seconds_total")
        assert seconds.value(
            kernel=kernel.name, component="total") == pytest.approx(
                breakdown.total)
        assert registry.get("gpu_timing_evaluations_total").value(
            kernel=kernel.name) == 1

    def test_dse_spans_and_counters(self, scoped_globals):
        registry, tracer = scoped_globals
        from repro.core.dse import best_config

        problem = ConvProblem.square(256, 3, channels=1, filters=8)
        best_config(problem, KEPLER_K40M, case="special")
        assert len(tracer.by_category("dse")) > 0
        candidates = registry.get("dse_candidates_total")
        assert candidates is not None
        assert candidates.value(case="special", outcome="ok") > 0


class TestServingTelemetry:
    def test_trace_has_all_span_categories(self):
        registry, tracer = Registry(), Tracer()
        engine = ServeEngine(registry=registry, tracer=tracer)
        engine.serve_trace(synthetic_trace(30, seed=3))
        assert {"batch", "dispatch", "plan-cache", "kernel"} <= \
            tracer.categories()
        doc = chrome_trace(tracer, registry)
        validate_chrome_trace(doc)
        cats = {e.get("cat") for e in doc["traceEvents"]
                if e.get("ph") == "X"}
        assert {"batch", "dispatch", "plan-cache", "kernel"} <= cats

    def test_plan_cache_counters_match_cache_stats(self):
        registry = Registry()
        engine = ServeEngine(registry=registry)
        engine.serve_trace(synthetic_trace(25, seed=4))
        stats = engine.plan_cache.stats()
        assert registry.get("plan_cache_hits_total").total() == stats["hits"]
        assert registry.get("plan_cache_misses_total").total() == \
            stats["misses"]
        assert registry.get("plan_cache_entries").value() == stats["entries"]

    def test_serve_series_match_snapshot(self):
        registry = Registry()
        engine = ServeEngine(registry=registry)
        engine.serve_trace(synthetic_trace(30, seed=5))
        snap = engine.stats()
        assert registry.get("serve_requests_total").total() == snap["served"]
        assert registry.get("serve_batches_total").total() == snap["batches"]
        assert registry.get("serve_latency_seconds").count() == snap["served"]
        assert registry.get("serve_busy_seconds_total").total() == \
            pytest.approx(snap["modeled_busy_seconds"])

    def test_queue_depth_gauge_returns_to_zero_after_drain(self):
        registry = Registry()
        engine = ServeEngine(registry=registry, deadline_s=1.0, max_batch=64)
        problem = ConvProblem.square(24, 3, channels=1, filters=2)
        for i in range(3):
            image, filters = problem.random_instance(seed=i)
            engine.submit(engine.make_request(image, filters))
        assert registry.get("serve_queue_depth").value() == 3
        engine.flush()
        assert registry.get("serve_queue_depth").value() == 0

    def test_virtual_spans_align_with_modeled_clock(self):
        tracer = Tracer()
        engine = ServeEngine(registry=Registry(), tracer=tracer)
        responses = engine.serve_trace(synthetic_trace(20, seed=6))
        kernel_spans = tracer.by_category("kernel")
        assert kernel_spans
        # The last batch/kernel spans end exactly at the engine's clock.
        assert max(s.end_s for s in kernel_spans) == pytest.approx(
            engine.clock_s)
        batch_spans = tracer.by_category("batch")
        assert max(s.end_s for s in batch_spans) == pytest.approx(
            engine.clock_s)
        assert all(r.completed_s <= engine.clock_s for r in responses)

    def test_export_trace_requires_tracer(self, tmp_path):
        from repro.errors import ReproError

        engine = ServeEngine()
        with pytest.raises(ReproError):
            engine.export_trace(str(tmp_path / "t.json"))

    def test_export_trace_writes_valid_file(self, tmp_path):
        import json

        engine = ServeEngine(registry=Registry(), tracer=Tracer())
        engine.serve_trace(synthetic_trace(10, seed=7))
        path = str(tmp_path / "t.json")
        engine.export_trace(path)
        with open(path) as fh:
            validate_chrome_trace(json.load(fh))
