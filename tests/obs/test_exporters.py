"""Exporter round-trips: Chrome trace JSON validates against the
trace-event schema; Prometheus text re-parses to the same series."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Registry,
    Tracer,
    chrome_trace,
    parse_prometheus,
    registry_to_json,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.exporters import VIRTUAL_PID, WALL_PID


def _sample_registry() -> Registry:
    reg = Registry()
    reg.counter("requests_total", "Requests", labelnames=("backend",)) \
        .inc(7, backend="special")
    reg.counter("requests_total", labelnames=("backend",)).inc(3, backend="naive")
    reg.gauge("queue_depth", "Depth").set(4)
    h = reg.histogram("latency_seconds", "Latency", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 0.5):
        h.observe(v)
    return reg


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("plan", category="plan-cache") as args:
        args["hit"] = False
    tracer.add_span("batch#0", "batch", start_s=0.0, duration_s=2e-3,
                    args={"batch_size": 4})
    tracer.add_span("special kernel", "kernel", start_s=1e-3, duration_s=1e-3)
    return tracer


class TestChromeTrace:
    def test_document_validates(self):
        doc = chrome_trace(_sample_tracer(), _sample_registry())
        validate_chrome_trace(doc)

    def test_tracks_split_by_clock(self):
        doc = chrome_trace(_sample_tracer())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pids = {e["cat"]: e["pid"] for e in events}
        assert pids["plan-cache"] == WALL_PID
        assert pids["batch"] == VIRTUAL_PID
        assert pids["kernel"] == VIRTUAL_PID

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(_sample_tracer())
        kernel = [e for e in doc["traceEvents"]
                  if e.get("cat") == "kernel"][0]
        assert kernel["ts"] == pytest.approx(1e3)   # 1 ms -> 1000 us
        assert kernel["dur"] == pytest.approx(1e3)

    def test_args_survive(self):
        doc = chrome_trace(_sample_tracer())
        batch = [e for e in doc["traceEvents"] if e.get("cat") == "batch"][0]
        assert batch["args"]["batch_size"] == 4

    def test_write_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        written = write_chrome_trace(path, _sample_tracer(),
                                     registry=_sample_registry())
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == written
        validate_chrome_trace(loaded)
        assert loaded["otherData"]["dropped_spans"] == 0

    def test_validator_rejects_malformed(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"no": "traceEvents"})
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "ts": -1.0, "dur": 0.0,
                 "pid": 1, "tid": 0}]})
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "??"}]})


class TestPrometheusRoundTrip:
    def test_counters_and_gauges_reparse_exactly(self):
        reg = _sample_registry()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[("requests_total", (("backend", "special"),))] == 7.0
        assert parsed[("requests_total", (("backend", "naive"),))] == 3.0
        assert parsed[("queue_depth", ())] == 4.0

    def test_histogram_expansion_reparses(self):
        parsed = parse_prometheus(to_prometheus(_sample_registry()))
        assert parsed[("latency_seconds_count", ())] == 4.0
        assert parsed[("latency_seconds_sum", ())] == pytest.approx(0.5555)
        assert parsed[("latency_seconds_bucket", (("le", "0.001"),))] == 1.0
        assert parsed[("latency_seconds_bucket", (("le", "+Inf"),))] == 4.0

    def test_full_round_trip_covers_every_series(self):
        reg = _sample_registry()
        text = to_prometheus(reg)
        parsed = parse_prometheus(text)
        # Every counter/gauge series appears verbatim.
        for metric in reg:
            if metric.type_name == "histogram":
                continue
            for labels, value in metric.series():
                key = (metric.name, tuple(sorted(labels.items())))
                assert parsed[key] == pytest.approx(float(value))

    def test_label_escaping_round_trips(self):
        reg = Registry()
        tricky = 'quote " backslash \\ newline \n end'
        reg.counter("c_total", labelnames=("k",)).inc(k=tricky)
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[("c_total", (("k", tricky),))] == 1.0

    def test_help_and_type_lines_present(self):
        text = to_prometheus(_sample_registry())
        assert "# HELP requests_total Requests" in text
        assert "# TYPE requests_total counter" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_inf_values_serialize(self):
        reg = Registry()
        reg.gauge("g").set(math.inf)
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[("g", ())] == math.inf

    def test_parser_rejects_garbage(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus("metric_without_value\n")
        with pytest.raises(ObservabilityError):
            parse_prometheus('m{k="v"} not_a_number\n')

    @pytest.mark.parametrize("tricky", [
        'back\\slash',
        'double \\\\ backslash',
        'trailing backslash \\',
        'quote"inside',
        '"fully quoted"',
        'newline\nin the middle',
        'ends with newline\n',
        'all \\ of " them \n at once',
        '\\n literal-backslash-n (not a newline)',
    ], ids=["backslash", "double-backslash", "trailing-backslash", "quote",
            "quoted", "newline", "trailing-newline", "combined",
            "literal-backslash-n"])
    def test_special_label_values_round_trip(self, tricky):
        reg = Registry()
        reg.counter("c_total", labelnames=("k",)).inc(2, k=tricky)
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[("c_total", (("k", tricky),))] == 2.0

    def test_escaped_values_stay_single_line(self):
        reg = Registry()
        reg.gauge("g", labelnames=("k",)).set(1, k="two\nlines \\ and \"q\"")
        text = to_prometheus(reg)
        series_lines = [l for l in text.splitlines() if l.startswith("g{")]
        assert len(series_lines) == 1

    def test_multi_series_histogram_expansion_reparses(self):
        reg = Registry()
        h = reg.histogram("latency_seconds", "Latency",
                          labelnames=("backend",), buckets=(0.01, 0.1))
        for v in (0.005, 0.05, 0.5):
            h.observe(v, backend="special")
        h.observe(0.05, backend='nai"ve\\')
        parsed = parse_prometheus(to_prometheus(reg))
        special = (("backend", "special"),)
        assert parsed[("latency_seconds_count", special)] == 3.0
        assert parsed[("latency_seconds_sum", special)] == pytest.approx(0.555)
        # Bucket lines interleave the le label with the series labels.
        assert parsed[("latency_seconds_bucket",
                       (("backend", "special"), ("le", "0.01")))] == 1.0
        assert parsed[("latency_seconds_bucket",
                       (("backend", "special"), ("le", "0.1")))] == 2.0
        assert parsed[("latency_seconds_bucket",
                       (("backend", "special"), ("le", "+Inf")))] == 3.0
        tricky = (("backend", 'nai"ve\\'),)
        assert parsed[("latency_seconds_count", tricky)] == 1.0
        assert parsed[("latency_seconds_bucket",
                       (("backend", 'nai"ve\\'), ("le", "+Inf")))] == 1.0


class TestRegistryJson:
    def test_versioned_document(self):
        doc = registry_to_json(_sample_registry())
        assert doc["version"] == 1
        names = [m["name"] for m in doc["metrics"]]
        assert names == ["requests_total", "queue_depth", "latency_seconds"]
        json.dumps(doc)  # serializable end to end
