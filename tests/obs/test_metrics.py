"""Tests for the metrics registry (counters, gauges, histograms)."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    reset_registry,
    set_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total", labelnames=("backend",))
        c.inc(backend="naive")
        c.inc(2.5, backend="naive")
        c.inc(backend="special")
        assert c.value(backend="naive") == pytest.approx(3.5)
        assert c.value(backend="special") == 1.0
        assert c.total() == pytest.approx(4.5)

    def test_unlabeled(self):
        c = Counter("ticks_total")
        assert c.value() == 0.0
        c.inc()
        assert c.value() == 1.0

    def test_rejects_decrease(self):
        c = Counter("x_total")
        with pytest.raises(ObservabilityError):
            c.inc(-1.0)

    def test_rejects_wrong_labels(self):
        c = Counter("x_total", labelnames=("a",))
        with pytest.raises(ObservabilityError):
            c.inc(b="nope")
        with pytest.raises(ObservabilityError):
            c.inc()

    def test_rejects_bad_name(self):
        with pytest.raises(ObservabilityError):
            Counter("bad name")
        with pytest.raises(ObservabilityError):
            Counter("x", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0

    def test_gauges_can_go_negative(self):
        g = Gauge("delta")
        g.dec(3)
        assert g.value() == -3.0


class TestHistogram:
    def test_count_sum_mean_max(self):
        h = Histogram("latency_seconds")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(0.6)
        assert h.mean() == pytest.approx(0.2)
        assert h.max() == pytest.approx(0.3)

    def test_percentiles_exact_on_small_series(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(95) == pytest.approx(95.05)

    def test_percentile_empty_is_zero(self):
        assert Histogram("x").percentile(99) == 0.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ObservabilityError):
            Histogram("x").percentile(101)

    def test_value_counts(self):
        h = Histogram("batch_size", buckets=(1, 2, 4, 8))
        for v in (1, 1, 2, 4, 4, 4):
            h.observe(v)
        assert h.value_counts() == {1.0: 2, 2.0: 1, 4.0: 3}

    def test_cumulative_buckets_monotone_ending_inf(self):
        h = Histogram("x", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        buckets = h.cumulative_buckets()
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == [1.0, 10.0, 100.0, math.inf]
        assert counts == [1, 2, 3, 4]
        assert counts == sorted(counts)

    def test_deterministic_decimation_bounds_memory(self):
        h = Histogram("x", max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count() == 10_000
        series = h._series[()]
        assert len(series.samples) <= 64
        # Quantiles remain close under decimation of a uniform stream.
        assert h.percentile(50) == pytest.approx(5000, rel=0.15)

    def test_labeled_series_are_independent(self):
        h = Histogram("x", labelnames=("k",))
        h.observe(1.0, k="a")
        h.observe(9.0, k="b")
        assert h.count(k="a") == 1
        assert h.mean(k="b") == 9.0

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("x", buckets=(1.0, 1.0, 2.0))


class TestHistogramTruncation:
    """Reservoir-truncated quantiles must say they are estimates."""

    def test_exact_until_reservoir_fills(self):
        h = Histogram("x", max_samples=64)
        for v in range(64):
            h.observe(float(v))
        assert h.observed_count() == h.sample_count() == 64
        assert h.is_estimated() is False
        series = h.collect()["series"][0]["value"]
        assert series["estimated"] is False
        assert series["observed_count"] == series["sample_count"] == 64
        assert "quantiles" not in series

    def test_observed_vs_sample_count_diverge_after_truncation(self):
        h = Histogram("x", max_samples=64)
        for v in range(1000):
            h.observe(float(v))
        assert h.observed_count() == 1000
        assert h.sample_count() < 1000
        assert h.is_estimated() is True
        # count stays the true observation count, never the reservoir's.
        assert h.count() == 1000

    def test_collect_marks_estimated_quantiles(self):
        h = Histogram("x", max_samples=64)
        for v in range(1000):
            h.observe(float(v))
        series = h.collect()["series"][0]["value"]
        assert series["estimated"] is True
        assert series["observed_count"] == 1000
        assert series["sample_count"] == h.sample_count()
        q = series["quantiles"]
        assert q["p50"] == pytest.approx(500, rel=0.2)
        assert q["p50"] <= q["p95"] <= q["p99"]

    def test_estimated_is_per_labeled_series(self):
        h = Histogram("x", labelnames=("k",), max_samples=64)
        for v in range(1000):
            h.observe(float(v), k="big")
        h.observe(1.0, k="small")
        assert h.is_estimated(k="big") is True
        assert h.is_estimated(k="small") is False
        by_labels = {
            s["labels"]["k"]: s["value"] for s in h.collect()["series"]}
        assert by_labels["big"]["estimated"] is True
        assert by_labels["small"]["estimated"] is False

    def test_untouched_series_not_estimated(self):
        h = Histogram("x")
        assert h.is_estimated() is False
        assert h.observed_count() == h.sample_count() == 0

    def test_serve_and_fleet_snapshots_expose_the_flag(self):
        from repro.fleet.slo import FleetStats
        from repro.serve.stats import ServeStats

        serve = ServeStats(clock_hz=1e9)
        serve.record_latency(1e-3)
        assert serve.snapshot()["latency_estimated"] is False
        fleet = FleetStats()
        assert fleet.snapshot(n_replicas=1)["latency_estimated"] is False


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = Registry()
        a = reg.counter("hits_total", labelnames=("k",))
        b = reg.counter("hits_total", labelnames=("k",))
        assert a is b

    def test_type_conflict_rejected(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")

    def test_labelnames_conflict_rejected(self):
        reg = Registry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(ObservabilityError):
            reg.counter("x", labelnames=("b",))

    def test_collect_is_json_serializable(self):
        import json

        reg = Registry()
        reg.counter("c_total", "help text", labelnames=("k",)).inc(k="v")
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(0.5)
        doc = json.loads(json.dumps(reg.collect()))
        assert [m["name"] for m in doc] == ["c_total", "g", "h"]
        assert doc[0]["type"] == "counter"
        assert doc[2]["series"][0]["value"]["count"] == 1

    def test_contains_iter_len(self):
        reg = Registry()
        reg.counter("a")
        reg.gauge("b")
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]


class TestGlobalRegistry:
    def test_swap_and_restore(self):
        original = get_registry()
        mine = Registry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
            assert previous is original
        finally:
            set_registry(original)

    def test_reset_replaces(self):
        original = get_registry()
        try:
            fresh = reset_registry()
            assert get_registry() is fresh
            assert fresh is not original
        finally:
            set_registry(original)

    def test_set_registry_validates(self):
        with pytest.raises(ObservabilityError):
            set_registry("not a registry")
