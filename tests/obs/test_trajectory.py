"""The perf-trajectory database: schema, append-only writes, ingestion."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.perf.trajectory import (
    SCHEMA,
    SCHEMA_VERSION,
    append_point,
    calibrate,
    environment_fingerprint,
    is_wall_metric,
    load_trajectory,
    make_meta,
    new_trajectory,
    normalize_bench_serve,
    validate_point,
)


def _point(**workload_metrics):
    return {
        "meta": make_meta(source="perf_suite", scale="ci",
                          calibration_s=0.05),
        "workloads": workload_metrics or {"w": {"wall_s": 1.0, "n": 3}},
    }


class TestSchema:
    def test_fingerprint_fields(self):
        fp = environment_fingerprint()
        for field in ("version", "git_sha", "python", "platform",
                      "numpy", "cpu_count"):
            assert field in fp

    def test_make_meta_stamps(self):
        meta = make_meta(source="perf_suite", scale="full",
                         calibration_s=0.1234567, note="hello")
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["scale"] == "full"
        assert meta["calibration_s"] == pytest.approx(0.123457)
        assert meta["note"] == "hello"
        assert "backfilled" not in meta

    def test_validate_accepts_well_formed(self):
        assert validate_point(_point())["workloads"]["w"]["n"] == 3

    @pytest.mark.parametrize("mutate", [
        lambda p: p.pop("meta"),
        lambda p: p["meta"].pop("source"),
        lambda p: p["meta"].pop("scale"),
        lambda p: p.pop("workloads"),
        lambda p: p.update(workloads={}),
        lambda p: p.update(workloads={"w": {"x": "not-a-number"}}),
        lambda p: p.update(workloads={"w": {"x": True}}),
        lambda p: p["meta"].update(schema_version=SCHEMA_VERSION + 1),
    ])
    def test_validate_rejects_malformed(self, mutate):
        point = _point()
        mutate(point)
        with pytest.raises(ObservabilityError):
            validate_point(point)

    def test_wall_metric_convention(self):
        assert is_wall_metric("wall_s")
        assert is_wall_metric("table1_wall_s")
        assert not is_wall_metric("modeled_rps")
        assert not is_wall_metric("walls")


class TestAppendOnly:
    def test_append_creates_and_grows(self, tmp_path):
        path = str(tmp_path / "traj.json")
        doc = append_point(path, _point())
        assert doc["schema"] == SCHEMA
        assert len(doc["points"]) == 1
        doc = append_point(path, _point())
        assert len(doc["points"]) == 2
        # Existing points are byte-preserved, not rewritten.
        loaded = load_trajectory(path)
        assert loaded["points"][0] == doc["points"][0]

    def test_append_rejects_invalid_point(self, tmp_path):
        path = str(tmp_path / "traj.json")
        with pytest.raises(ObservabilityError):
            append_point(path, {"workloads": {}})
        assert not (tmp_path / "traj.json").exists()

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ObservabilityError):
            load_trajectory(str(path))
        path.write_text("not json")
        with pytest.raises(ObservabilityError):
            load_trajectory(str(path))

    def test_load_rejects_newer_schema(self, tmp_path):
        doc = new_trajectory()
        doc["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "traj.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ObservabilityError):
            load_trajectory(str(path))


class TestCalibration:
    def test_fixed_work_is_positive_and_repeatable(self):
        a = calibrate(reps=2)
        b = calibrate(reps=2)
        assert a > 0 and b > 0
        # Same machine, same work: within an order of magnitude.
        assert 0.1 < a / b < 10.0


class TestNormalizeBenchServe:
    def test_checked_in_document_normalizes(self, repo_root):
        point = normalize_bench_serve(str(repo_root / "BENCH_serve.json"))
        assert point["meta"]["source"] == "fleet_proof"
        assert point["meta"]["scale"] == "full"
        assert point["meta"]["version"] == "1.5.0"
        assert point["meta"]["git_sha"] == "f787b1c"
        assert point["meta"]["backfilled"] is True
        workloads = point["workloads"]
        assert workloads["table1_dse"]["rows"] == 3
        assert workloads["fleet_serve"]["requests"] == 100_000
        assert workloads["fleet_serve"]["modeled_rps"] > 0
        assert workloads["serve_engine"]["throughput_rps"] > 0
        assert 0 < workloads["fleet_overload"]["shed_rate"] < 1

    def test_unstamped_document_backfills(self, tmp_path):
        doc = {"version": "0.9.0",
               "legs": {"table1": {"wall_s": 5.0, "rows": 3}}}
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(doc))
        point = normalize_bench_serve(str(path))
        assert point["meta"]["backfilled"] is True
        assert point["meta"]["version"] == "0.9.0"
        assert point["workloads"] == {
            "table1_dse": {"wall_s": 5.0, "rows": 3}}

    def test_document_without_legs_raises(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({"version": "1.0"}))
        with pytest.raises(ObservabilityError):
            normalize_bench_serve(str(path))
        with pytest.raises(ObservabilityError):
            normalize_bench_serve(str(tmp_path / "missing.json"))
