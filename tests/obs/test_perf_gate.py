"""The perf regression gate and the canonical suite behind it."""

import copy

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs.perf.gate import (
    compare_points,
    format_comparison,
    parse_budgets,
    select_baseline,
)


def _point(scale="ci", source="perf_suite", calibration_s=0.05,
           workloads=None):
    return {
        "meta": {"schema_version": 1, "source": source, "scale": scale,
                 "version": "1.6.0", "git_sha": "abc1234",
                 "calibration_s": calibration_s},
        "workloads": workloads if workloads is not None else {
            "simulator": {"wall_s": 1.0, "blocks": 8, "flops": 147456.0},
            "serve_engine": {"wall_s": 2.0, "throughput_rps": 50_000.0},
        },
    }


class TestSelectBaseline:
    def test_latest_matching_scale_preferring_suite(self):
        doc = {"points": [
            _point(scale="ci", source="fleet_proof"),
            _point(scale="ci", source="perf_suite"),
            _point(scale="full", source="perf_suite"),
        ]}
        chosen = select_baseline(doc, scale="ci")
        assert chosen is doc["points"][1]
        assert select_baseline(doc, scale="full") is doc["points"][2]

    def test_falls_back_to_any_source(self):
        doc = {"points": [_point(scale="full", source="fleet_proof")]}
        assert select_baseline(doc, scale="full") is doc["points"][0]
        assert select_baseline(doc, scale="ci") is None


class TestCompare:
    def test_identical_points_pass(self):
        result = compare_points(_point(), _point())
        assert result.passed
        assert result.calibration_ratio == pytest.approx(1.0)
        assert all(not row.violated for row in result.rows)

    def test_wall_slowdown_fails_naming_workload_and_budget(self):
        current = _point()
        current["workloads"]["simulator"]["wall_s"] = 2.0   # 2x, budget 1.25x
        result = compare_points(current, _point(), tolerance=0.25)
        assert not result.passed
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.workload == "simulator"
        assert violation.metric == "wall_s"
        assert "budget" in violation.message
        text = format_comparison(result)
        assert "FAIL" in text and "simulator" in text

    def test_wall_speedup_passes(self):
        current = _point()
        current["workloads"]["simulator"]["wall_s"] = 0.01
        assert compare_points(current, _point()).passed

    def test_wall_within_tolerance_passes(self):
        current = _point()
        current["workloads"]["simulator"]["wall_s"] = 1.2
        assert compare_points(current, _point(), tolerance=0.25).passed
        assert not compare_points(current, _point(), tolerance=0.1).passed

    def test_calibration_ratio_scales_wall_budget(self):
        # The current host is 2x slower (calibration 0.1 vs 0.05): a 2x
        # wall-clock is expected, not a regression.
        slow_host = _point(calibration_s=0.1)
        slow_host["workloads"]["simulator"]["wall_s"] = 2.0
        result = compare_points(slow_host, _point(calibration_s=0.05))
        assert result.calibration_ratio == pytest.approx(2.0)
        assert result.passed
        # Same 2x wall-clock with identical calibration: a regression.
        same_host = copy.deepcopy(slow_host)
        same_host["meta"]["calibration_s"] = 0.05
        assert not compare_points(same_host, _point(calibration_s=0.05)).passed

    def test_modeled_drift_fails_both_directions(self):
        for drifted in (147457.0, 147455.0):
            current = _point()
            current["workloads"]["simulator"]["flops"] = drifted
            result = compare_points(current, _point())
            assert not result.passed
            assert result.violations[0].metric == "flops"
        # Within the drift tolerance: fine.
        current = _point()
        current["workloads"]["simulator"]["flops"] = 147456.0 * (1 + 1e-9)
        assert compare_points(current, _point()).passed

    def test_explicit_budget_overrides(self):
        current = _point()
        current["workloads"]["simulator"]["wall_s"] = 10.0
        budgets = parse_budgets(["simulator.wall_s=20"])
        assert compare_points(current, _point(), budgets=budgets).passed
        budgets = parse_budgets(["simulator.wall_s=5"])
        assert not compare_points(current, _point(), budgets=budgets).passed

    def test_budget_on_unknown_metric_raises(self):
        with pytest.raises(ObservabilityError):
            compare_points(_point(), _point(),
                           budgets=parse_budgets(["nope.wall_s=1"]))

    def test_new_workload_is_untracked_not_violating(self):
        current = _point()
        current["workloads"]["brand_new"] = {"wall_s": 99.0}
        result = compare_points(current, _point())
        assert result.passed

    @pytest.mark.parametrize("bad", ["simulator=1", "wall_s=1",
                                     "simulator.wall_s", "a.b=x"])
    def test_parse_budgets_rejects_malformed(self, bad):
        with pytest.raises(ObservabilityError):
            parse_budgets([bad])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ObservabilityError):
            compare_points(_point(), _point(), tolerance=-0.1)


class TestHandicapInjector:
    """The deliberate-slowdown hook the acceptance criterion leans on."""

    def _run_block_seconds(self, handicap=None):
        import time

        from repro.gpu.arch import KEPLER_K40M
        from repro.gpu.device import DeviceExecutor

        ex = DeviceExecutor(KEPLER_K40M, handicap=handicap)
        buf = ex.alloc_global(np.zeros(64, np.float32), "buf")

        def program(block, buf):
            deadline = time.perf_counter() + 0.02
            while time.perf_counter() < deadline:
                pass
            for warp in block.warps():
                warp.gload(buf, np.arange(32), site="gm.load")
                break

        start = time.perf_counter()
        ex.run_block(program, (0, 0), 32, buf)
        return time.perf_counter() - start

    def test_handicap_slows_run_block(self):
        base = self._run_block_seconds()
        slowed = self._run_block_seconds(handicap=3.0)
        assert slowed > base * 1.8

    def test_env_handicap_applies(self, monkeypatch):
        from repro.gpu.device import DeviceExecutor, HANDICAP_ENV

        monkeypatch.setenv(HANDICAP_ENV, "2.5")
        from repro.gpu.arch import KEPLER_K40M

        assert DeviceExecutor(KEPLER_K40M).handicap == 2.5
        monkeypatch.setenv(HANDICAP_ENV, "0.5")   # clamped: never speeds up
        assert DeviceExecutor(KEPLER_K40M).handicap == 1.0
        monkeypatch.delenv(HANDICAP_ENV)
        assert DeviceExecutor(KEPLER_K40M).handicap == 1.0

    def test_env_handicap_rejects_garbage(self, monkeypatch):
        from repro.errors import TraceError
        from repro.gpu.arch import KEPLER_K40M
        from repro.gpu.device import DeviceExecutor, HANDICAP_ENV

        monkeypatch.setenv(HANDICAP_ENV, "fast")
        with pytest.raises(TraceError):
            DeviceExecutor(KEPLER_K40M)

    def test_handicap_slows_simulator_workload_end_to_end(self, monkeypatch):
        from repro.gpu.device import HANDICAP_ENV
        from repro.obs.perf.suite import run_workload

        monkeypatch.delenv(HANDICAP_ENV, raising=False)
        base = run_workload("simulator", scale="smoke")
        monkeypatch.setenv(HANDICAP_ENV, "4")
        slowed = run_workload("simulator", scale="smoke")
        # Modeled metrics are untouched; only the host clock stretches.
        assert slowed["modeled_total_s"] == base["modeled_total_s"]
        assert slowed["flops"] == base["flops"]
        assert slowed["wall_s"] > base["wall_s"] * 2.0


class TestSuite:
    def test_smoke_suite_records_a_valid_gateable_point(self):
        from repro.obs.perf.suite import run_suite

        point = run_suite(scale="smoke",
                          workloads=("simulator", "serve_engine"))
        assert point["meta"]["source"] == "perf_suite"
        assert point["meta"]["calibration_s"] > 0
        assert set(point["workloads"]) == {"simulator", "serve_engine"}
        # A point gates cleanly against itself.
        assert compare_points(point, point).passed

    def test_suite_is_deterministic_on_modeled_metrics(self):
        from repro.obs.perf.suite import run_suite
        from repro.obs.perf.trajectory import is_wall_metric

        a = run_suite(scale="smoke", workloads=("simulator",))
        b = run_suite(scale="smoke", workloads=("simulator",))
        for metric, value in a["workloads"]["simulator"].items():
            if not is_wall_metric(metric):
                assert b["workloads"]["simulator"][metric] == value

    def test_unknown_scale_and_workload_raise(self):
        from repro.obs.perf.suite import run_suite, run_workload

        with pytest.raises(ObservabilityError):
            run_suite(scale="huge")
        with pytest.raises(ObservabilityError):
            run_workload("nope", scale="smoke")
