"""Property-based tests (hypothesis) for the core data structures and
invariants: bank-conflict bounds, coalescing bounds, convolution
algebra, kernel-vs-reference equivalence on randomized shapes, ledger
additivity, and configuration enumeration soundness."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.conv.blocking import BlockGrid, BlockSpec, halo_read_overhead
from repro.conv.reference import conv2d_reference, conv2d_single_channel
from repro.conv.tensors import ConvProblem
from repro.core.bankwidth import conventional_pattern, matched_pattern
from repro.core.general import GeneralCaseKernel
from repro.core.config import GeneralCaseConfig
from repro.core.special import SpecialCaseKernel, SpecialCaseConfig
from repro.gpu.arch import FERMI_M2090, KEPLER_K40M
from repro.gpu.memory.banks import BankConflictPolicy, SharedMemoryModel
from repro.gpu.memory.globalmem import GlobalMemoryModel
from repro.gpu.trace import KernelTracer

# ----------------------------------------------------------------------
# Shared-memory bank model
# ----------------------------------------------------------------------

access_sizes = st.sampled_from([1, 2, 4, 8, 16])
lane_counts = st.integers(min_value=1, max_value=32)


@st.composite
def warp_requests(draw):
    size = draw(access_sizes)
    lanes = draw(lane_counts)
    units = draw(
        st.lists(st.integers(min_value=0, max_value=4096),
                 min_size=lanes, max_size=lanes)
    )
    return np.asarray(units, dtype=np.int64) * size, size


class TestBankProperties:
    @given(warp_requests())
    @settings(max_examples=200, deadline=None)
    def test_cycles_bounded(self, req):
        addrs, size = req
        for policy in BankConflictPolicy:
            res = SharedMemoryModel(KEPLER_K40M, policy).access(addrs, size)
            phases = res.phases
            assert phases <= res.cycles <= len(addrs) * phases
            assert 1 <= res.conflict_degree <= len(addrs)

    @given(warp_requests())
    @settings(max_examples=200, deadline=None)
    def test_paper_policy_never_cheaper_than_word_merge(self, req):
        addrs, size = req
        paper = SharedMemoryModel(KEPLER_K40M, BankConflictPolicy.PAPER)
        merge = SharedMemoryModel(KEPLER_K40M, BankConflictPolicy.WORD_MERGE)
        assert paper.access(addrs, size).cycles >= merge.access(addrs, size).cycles

    @given(warp_requests())
    @settings(max_examples=200, deadline=None)
    def test_utilization_at_most_one(self, req):
        addrs, size = req
        res = SharedMemoryModel(KEPLER_K40M).access(addrs, size)
        assert 0.0 < res.bandwidth_utilization <= 1.0 + 1e-12

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_distinct_bank_permutation_conflict_free(self, lanes):
        # Any permutation of distinct banks completes in one cycle.
        banks = np.random.default_rng(lanes).permutation(32)[:lanes]
        addrs = banks.astype(np.int64) * 8
        res = SharedMemoryModel(KEPLER_K40M, BankConflictPolicy.PAPER).access(addrs, 8)
        assert res.cycles == 1

    @given(st.integers(min_value=1, max_value=32), access_sizes)
    @settings(max_examples=100, deadline=None)
    def test_broadcast_is_always_one_cycle_per_phase(self, lanes, size):
        addrs = np.zeros(lanes, dtype=np.int64)
        for policy in BankConflictPolicy:
            res = SharedMemoryModel(KEPLER_K40M, policy).access(addrs, size)
            assert res.cycles == res.phases

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_matched_pattern_never_slower_than_conventional(self, groups):
        """For equal element coverage, the matched pattern (Fig. 1b)
        never costs more cycles under either policy."""
        elements = groups * 2
        conv = conventional_pattern(elements, 4)
        mat = matched_pattern(groups, 4, 2)
        for policy in BankConflictPolicy:
            model = SharedMemoryModel(KEPLER_K40M, policy)
            assert model.access(mat, 8).cycles <= model.access(conv, 4).cycles


# ----------------------------------------------------------------------
# Global-memory model
# ----------------------------------------------------------------------

class TestGmemProperties:
    @given(warp_requests())
    @settings(max_examples=200, deadline=None)
    def test_transactions_at_least_compulsory(self, req):
        addrs, size = req
        res = GlobalMemoryModel(KEPLER_K40M).access(addrs, size)
        compulsory = -(-res.unique_bytes // res.segment_size)
        assert res.transactions >= compulsory
        assert res.transactions <= len(addrs) * -(-size // res.segment_size) + len(addrs)

    @given(warp_requests())
    @settings(max_examples=200, deadline=None)
    def test_efficiency_in_unit_interval(self, req):
        addrs, size = req
        res = GlobalMemoryModel(KEPLER_K40M).access(addrs, size)
        assert 0.0 < res.efficiency <= 1.0 + 1e-12

    @given(st.integers(min_value=1, max_value=32), access_sizes,
           st.integers(min_value=0, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_contiguous_access_is_optimal(self, lanes, size, base_units):
        base = base_units * size
        addrs = base + np.arange(lanes, dtype=np.int64) * size
        res = GlobalMemoryModel(KEPLER_K40M).access(addrs, size)
        span = (addrs[-1] + size) - addrs[0]
        # A contiguous run of `span` bytes touches at most
        # ceil(span/seg) + 1 segments (the +1 for a misaligned base).
        assert res.transactions <= -(-span // res.segment_size) + 1


# ----------------------------------------------------------------------
# Convolution algebra
# ----------------------------------------------------------------------

small_images = st.tuples(
    st.integers(min_value=6, max_value=24),   # H
    st.integers(min_value=6, max_value=24),   # W
    st.integers(min_value=1, max_value=4),    # C
    st.integers(min_value=1, max_value=4),    # F
    st.sampled_from([1, 3, 5]),               # K
)


class TestConvolutionProperties:
    @given(small_images, st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_linearity_in_image(self, dims, seed):
        h, w, c, f, k = dims
        assume(k <= min(h, w))
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((c, h, w)).astype(np.float32)
        b = rng.standard_normal((c, h, w)).astype(np.float32)
        flt = rng.standard_normal((f, c, k, k)).astype(np.float32)
        lhs = conv2d_reference(a + b, flt)
        rhs = conv2d_reference(a, flt) + conv2d_reference(b, flt)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-3, atol=1e-3)

    @given(small_images, st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_channel_additivity(self, dims, seed):
        h, w, c, f, k = dims
        assume(k <= min(h, w))
        rng = np.random.default_rng(seed)
        img = rng.standard_normal((c, h, w)).astype(np.float32)
        flt = rng.standard_normal((f, c, k, k)).astype(np.float32)
        total = conv2d_reference(img, flt)
        per_channel = sum(
            conv2d_reference(img[ci : ci + 1], flt[:, ci : ci + 1])
            for ci in range(c)
        )
        np.testing.assert_allclose(total, per_channel, rtol=1e-3, atol=1e-3)

    @given(st.integers(min_value=8, max_value=30),
           st.sampled_from([1, 3, 5]), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_shift_equivariance(self, n, k, seed):
        assume(k <= n - 2)
        rng = np.random.default_rng(seed)
        img = rng.standard_normal((n, n)).astype(np.float32)
        flt = rng.standard_normal((k, k)).astype(np.float32)
        full = conv2d_single_channel(img, flt)[0]
        shifted = conv2d_single_channel(img[1:, :], flt)[0]
        np.testing.assert_allclose(full[1:, :], shifted, rtol=1e-4, atol=1e-4)


# ----------------------------------------------------------------------
# Kernels vs reference on randomized shapes
# ----------------------------------------------------------------------

class TestKernelEquivalence:
    @given(st.integers(min_value=7, max_value=40),
           st.integers(min_value=7, max_value=80),
           st.sampled_from([1, 3, 5]),
           st.integers(min_value=1, max_value=3),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_special_kernel_matches_reference(self, h, w, k, f, seed):
        assume(k <= min(h, w))
        rng = np.random.default_rng(seed)
        img = rng.standard_normal((h, w)).astype(np.float32)
        flt = rng.standard_normal((f, k, k)).astype(np.float32)
        kern = SpecialCaseKernel(config=SpecialCaseConfig(block_w=64, block_h=4))
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_single_channel(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    @given(st.integers(min_value=8, max_value=24),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=12),
           st.sampled_from([1, 3]),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_general_kernel_matches_reference(self, n, c, f, k, seed):
        rng = np.random.default_rng(seed)
        img = rng.standard_normal((c, n, n)).astype(np.float32)
        flt = rng.standard_normal((f, c, k, k)).astype(np.float32)
        cfg = GeneralCaseConfig(w=16, h=8, ftb=16, wt=8, ft=4, csh=2)
        kern = GeneralCaseKernel(config=cfg)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )


# ----------------------------------------------------------------------
# Blocking, ledger, timing invariants
# ----------------------------------------------------------------------

class TestStructuralProperties:
    @given(st.integers(min_value=8, max_value=128),
           st.sampled_from([1, 3, 5]),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=4, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_halo_overhead_at_least_one(self, n, k, bh, bw):
        assume(k <= n)
        p = ConvProblem.square(n, k)
        assert halo_read_overhead(p, BlockSpec(block_h=bh, block_w=bw)) >= 1.0 - 1e-9

    @given(st.integers(min_value=8, max_value=64),
           st.sampled_from([1, 3]),
           st.integers(min_value=2, max_value=8),
           st.integers(min_value=4, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_grid_partitions_output_exactly(self, n, k, bh, bw):
        assume(k <= n)
        p = ConvProblem.square(n, k)
        grid = BlockGrid(p, BlockSpec(block_h=bh, block_w=bw))
        cover = np.zeros((p.out_height, p.out_width), dtype=int)
        for v in grid:
            cover[v.out_y0 : v.out_y0 + v.out_rows,
                  v.out_x0 : v.out_x0 + v.out_cols] += 1
        assert (cover == 1).all()

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_ledger_merge_commutes(self, n1, n2):
        def build(n):
            t = KernelTracer(KEPLER_K40M)
            t.flops(n * 7.0)
            t.smem_read(np.arange(32) * 8, 8, count=n)
            return t.ledger

        a1, b1 = build(n1), build(n2)
        a2, b2 = build(n1), build(n2)
        a1.merge(b1)
        b2.merge(a2)
        assert a1.flops == b2.flops
        assert a1.smem_cycles == b2.smem_cycles


# ----------------------------------------------------------------------
# Timing-model invariants
# ----------------------------------------------------------------------

class TestTimingProperties:
    @staticmethod
    def _cost(flops, gmem_reqs, blocks, threads):
        from repro.gpu.simt import Dim3, LaunchConfig

        tracer = KernelTracer(KEPLER_K40M)
        tracer.flops(flops)
        if gmem_reqs:
            tracer.gmem_read(np.arange(32) * 4, 4, count=gmem_reqs)
        launch = LaunchConfig(grid=Dim3(blocks), block=Dim3(threads),
                              registers_per_thread=32)
        return tracer.finish(name="prop", launch=launch)

    @given(st.floats(min_value=1e6, max_value=1e12),
           st.floats(min_value=0, max_value=1e7),
           st.integers(min_value=1, max_value=100000),
           st.sampled_from([64, 128, 256, 512]))
    @settings(max_examples=80, deadline=None)
    def test_total_time_positive_and_bounded_below(self, flops, reqs, blocks,
                                                   threads):
        from repro.gpu.timing import TimingModel

        model = TimingModel(KEPLER_K40M)
        tb = model.evaluate(self._cost(flops, reqs, blocks, threads))
        assert tb.total > 0
        assert tb.total >= max(tb.t_compute, tb.t_gmem, tb.t_smem)
        assert 0.0 <= tb.eta <= model.eta_max

    @given(st.floats(min_value=1e6, max_value=1e11),
           st.integers(min_value=1, max_value=10000))
    @settings(max_examples=60, deadline=None)
    def test_more_flops_never_faster(self, flops, blocks):
        from repro.gpu.timing import TimingModel

        model = TimingModel(KEPLER_K40M)
        small = model.evaluate(self._cost(flops, 1000, blocks, 256))
        big = model.evaluate(self._cost(flops * 2, 1000, blocks, 256))
        assert big.total >= small.total

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.integers(min_value=1, max_value=10000))
    @settings(max_examples=60, deadline=None)
    def test_more_traffic_never_faster(self, reqs, blocks):
        from repro.gpu.timing import TimingModel

        model = TimingModel(KEPLER_K40M)
        small = model.evaluate(self._cost(1e9, reqs, blocks, 256))
        big = model.evaluate(self._cost(1e9, reqs * 2, blocks, 256))
        assert big.total >= small.total


# ----------------------------------------------------------------------
# Gradient adjoint identities under random shapes
# ----------------------------------------------------------------------

class TestGradientProperties:
    @given(st.integers(min_value=6, max_value=16),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=3),
           st.sampled_from([1, 3, 5]),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_adjoint_identities(self, n, c, f, k, seed):
        from repro.conv.gradients import (
            conv2d_input_gradient,
            conv2d_weight_gradient,
        )

        assume(k <= n)
        rng = np.random.default_rng(seed)
        img = rng.standard_normal((c, n, n)).astype(np.float32)
        flt = rng.standard_normal((f, c, k, k)).astype(np.float32)
        g = rng.standard_normal((f, n - k + 1, n - k + 1)).astype(np.float32)
        inner = float(np.sum(g * conv2d_reference(img, flt)))
        via_dx = float(np.sum(conv2d_input_gradient(g, flt) * img))
        via_dw = float(np.sum(conv2d_weight_gradient(img, g, k) * flt))
        scale = max(abs(inner), 1.0)
        assert abs(inner - via_dx) < 1e-2 * scale
        assert abs(inner - via_dw) < 1e-2 * scale


# ----------------------------------------------------------------------
# Stencil invariants
# ----------------------------------------------------------------------

class TestStencilProperties:
    @given(st.integers(min_value=4, max_value=20), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_constant_grid_is_fixed_point(self, n, seed):
        from repro.apps.stencil import JacobiStencil

        value = float(np.random.default_rng(seed).uniform(-5, 5))
        grid = np.full((n, n), value, dtype=np.float32)
        out = JacobiStencil().run(grid, iterations=3)
        np.testing.assert_allclose(out, grid, atol=1e-4)

    @given(st.integers(min_value=5, max_value=16), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_maximum_principle(self, n, seed):
        """Jacobi iterates stay within the initial min/max envelope."""
        from repro.apps.stencil import JacobiStencil

        rng = np.random.default_rng(seed)
        grid = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        out = JacobiStencil().run(grid, iterations=5)
        assert out.max() <= grid.max() + 1e-5
        assert out.min() >= grid.min() - 1e-5


# ----------------------------------------------------------------------
# Design-space enumeration soundness
# ----------------------------------------------------------------------

class TestDSEProperties:
    @given(st.sampled_from([3, 5, 7]), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_enumerated_configs_are_resident(self, k, seed):
        """Any sampled survivor of the enumeration must be launchable
        and resident on the modeled K40m."""
        from repro.core.dse import enumerate_general_configs
        from repro.gpu.occupancy import occupancy
        from repro.gpu.simt import Dim3, LaunchConfig

        configs = enumerate_general_configs(k, 2, KEPLER_M := KEPLER_K40M)
        rng = np.random.default_rng(seed)
        for cfg in rng.choice(len(configs), size=min(10, len(configs)),
                              replace=False):
            cfg = configs[int(cfg)]
            launch = LaunchConfig(
                grid=Dim3(4), block=Dim3(cfg.tx, cfg.ty),
                registers_per_thread=cfg.registers_per_thread(k, 2),
                smem_per_block=cfg.smem_bytes(k, 2),
            )
            occ = occupancy(KEPLER_M, launch)
            assert occ.blocks_per_sm >= 1

    @given(st.sampled_from([3, 5, 7]))
    @settings(max_examples=3, deadline=None)
    def test_table1_always_survives(self, k):
        from repro.core.config import TABLE1_CONFIGS
        from repro.core.dse import enumerate_general_configs

        assert TABLE1_CONFIGS[k] in enumerate_general_configs(k, 2, KEPLER_K40M)
