"""Tests for the command-line interface."""

import pytest

from repro.cli import SLOW_EXPERIMENTS, build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig7b" in out and "table1" in out

    def test_slow_marker(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "table1  (slow)" in out


class TestRun:
    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "matched" in out

    def test_run_on_other_arch(self, capsys):
        assert main(["run", "fig1", "--arch", "fermi"]) == 0
        assert "Fermi" in capsys.readouterr().out

    def test_run_precision(self, capsys):
        assert main(["run", "fig1", "--precision", "3"]) == 0
        assert "2.000" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_ablation(self, capsys):
        assert main(["run", "ablation-thread-layout"]) == 0
        assert "WT" in capsys.readouterr().out


class TestSummary:
    def test_summary_lines(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "MAGMA / cuBLAS" in out
        assert "[paper: 2.4x]" in out
        assert out.count("ours / cuDNN") == 6


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_arch_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--arch", "volta"])

    def test_slow_experiments_exist(self):
        from repro.bench.figures import ALL_EXPERIMENTS

        for exp in SLOW_EXPERIMENTS:
            assert exp in ALL_EXPERIMENTS


class TestRunAll:
    def test_run_all_skip_slow(self, capsys, monkeypatch):
        """'run all' iterates the registry; trim it for test speed."""
        import repro.cli as cli
        from repro.bench.figures import ALL_EXPERIMENTS

        trimmed = {k: ALL_EXPERIMENTS[k]
                   for k in ("fig1", "ablation-thread-layout", "table1")}
        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", trimmed)
        assert cli.main(["run", "all", "--skip-slow"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "ablation-thread-layout" in out
        assert "table1" not in out  # skipped as slow
