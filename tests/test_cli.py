"""Tests for the command-line interface."""

import pytest

from repro.cli import SLOW_EXPERIMENTS, build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig7b" in out and "table1" in out

    def test_slow_marker(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "table1  (slow)" in out


class TestRun:
    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "matched" in out

    def test_run_on_other_arch(self, capsys):
        assert main(["run", "fig1", "--arch", "fermi"]) == 0
        assert "Fermi" in capsys.readouterr().out

    def test_run_precision(self, capsys):
        assert main(["run", "fig1", "--precision", "3"]) == 0
        assert "2.000" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_ablation(self, capsys):
        assert main(["run", "ablation-thread-layout"]) == 0
        assert "WT" in capsys.readouterr().out


class TestSummary:
    def test_summary_lines(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "MAGMA / cuBLAS" in out
        assert "[paper: 2.4x]" in out
        assert out.count("ours / cuDNN") == 6

    def test_summary_json(self, capsys):
        import json

        assert main(["summary", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 7
        assert records[0]["exp_id"] == "fig2"
        assert records[0]["paper"] == "2.4x"
        for record in records:
            assert set(record) >= {"exp_id", "numerator", "denominator",
                                   "mean_ratio", "min_ratio", "max_ratio", "n"}
            assert record["min_ratio"] <= record["mean_ratio"] <= record["max_ratio"]


class TestServe:
    def test_serve_synthetic_text(self, capsys):
        assert main(["serve", "--synthetic", "30", "--verify",
                     "--compare-unbatched"]) == 0
        out = capsys.readouterr().out
        assert "served 30 requests" in out
        assert "plan cache" in out
        assert "all 30 responses match the reference" in out
        assert "batching speedup" in out

    def test_serve_synthetic_json(self, capsys):
        import json

        assert main(["serve", "--synthetic", "25", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["served"] == 25
        assert snap["plan_cache"]["hit_rate"] > 0.5
        assert snap["throughput_rps"] > 0

    def test_serve_trace_file_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "trace.json")
        assert main(["serve", "--synthetic", "10",
                     "--save-trace", path]) == 0
        capsys.readouterr()
        assert main(["serve", "--requests", path, "--verify"]) == 0
        assert "served 10 requests" in capsys.readouterr().out

    def test_serve_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_rejects_bad_synthetic_count(self, capsys):
        assert main(["serve", "--synthetic", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_serve_kernel_executor(self, capsys):
        assert main(["serve", "--synthetic", "8", "--executor", "kernel",
                     "--verify"]) == 0
        assert "served 8 requests" in capsys.readouterr().out


class TestServeFleet:
    def test_fleet_text_output(self, capsys):
        assert main(["serve", "--synthetic", "60", "--replicas", "4"]) == 0
        out = capsys.readouterr().out
        assert "fleet served 60 requests across 4 replicas" in out
        assert "router affinity" in out
        assert "shared plan cache" in out
        assert "replica 0" in out

    def test_fleet_compare_serial_bit_identical(self, capsys):
        assert main(["serve", "--synthetic", "50", "--replicas", "3",
                     "--compare-serial", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "0 response mismatches vs fleet" in out
        assert "all 50 served responses match the reference" in out

    def test_fleet_json_snapshot(self, capsys):
        import json

        assert main(["serve", "--synthetic", "40", "--replicas", "2",
                     "--json", "--compare-serial"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["served"] == 40
        assert snap["serial_mismatches"] == 0
        assert snap["router"]["affinity_hit_rate"] == 1.0
        assert snap["admission"]["shed"] == 0
        assert len(snap["replicas"]) == 2

    def test_fleet_deadline_and_priority_flags(self, capsys):
        assert main(["serve", "--synthetic", "40", "--replicas", "2",
                     "--deadline-budget", "5e-3", "--priority-mix",
                     "critical=0.2,standard=0.6,batch=0.2"]) == 0
        assert "deadline misses" in capsys.readouterr().out

    def test_replicas_range_validated(self, capsys):
        assert main(["serve", "--synthetic", "5", "--replicas", "0"]) == 2
        err = capsys.readouterr().err
        assert "bad serving configuration" in err
        assert "valid range: 1..64" in err

    def test_queue_depth_range_validated(self, capsys):
        assert main(["serve", "--synthetic", "5", "--replicas", "2",
                     "--queue-depth", "0"]) == 2
        assert "valid range: 1..4096" in capsys.readouterr().err

    def test_queue_depth_validated_without_fleet(self, capsys):
        # The bound is checked even on the single-engine path, so a
        # typo'd flag never passes silently.
        assert main(["serve", "--synthetic", "5",
                     "--queue-depth", "5000"]) == 2
        assert "valid range: 1..4096" in capsys.readouterr().err

    def test_bad_priority_mix_reports_and_exits_2(self, capsys):
        assert main(["serve", "--synthetic", "5",
                     "--priority-mix", "critical=x"]) == 2
        assert "priority-mix" in capsys.readouterr().err

    def test_unknown_priority_class_lists_valid_classes(self, capsys):
        assert main(["serve", "--synthetic", "5",
                     "--priority-mix", "urgent=1.0"]) == 2
        err = capsys.readouterr().err
        assert "critical" in err and "batch" in err

    def test_fleet_emit_trace_has_replica_tracks(self, capsys, tmp_path):
        import json

        path = tmp_path / "fleet.json"
        assert main(["serve", "--synthetic", "40", "--replicas", "2",
                     "--emit-trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        cats = {event.get("cat") for event in doc["traceEvents"]
                if event.get("ph") == "X"}
        assert any(c and c.startswith("replica") for c in cats)


class TestServeEmitTrace:
    def test_emit_trace_writes_perfetto_loadable_file(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        path = str(tmp_path / "serve-trace.json")
        assert main(["serve", "--synthetic", "20",
                     "--emit-trace", path]) == 0
        with open(path) as fh:
            doc = json.load(fh)
        validate_chrome_trace(doc)
        cats = {e.get("cat") for e in doc["traceEvents"]
                if e.get("ph") == "X"}
        assert {"batch", "dispatch", "plan-cache", "kernel"} <= cats

    def test_run_emit_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        path = str(tmp_path / "run-trace.json")
        assert main(["run", "fig1", "--emit-trace", path]) == 0
        with open(path) as fh:
            doc = json.load(fh)
        validate_chrome_trace(doc)
        assert any(e.get("cat") == "experiment" for e in doc["traceEvents"])


class TestObs:
    def test_obs_json_dump(self, capsys):
        import json

        assert main(["obs", "--synthetic", "0"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        names = {m["name"] for m in doc["metrics"]}
        assert "gpu_gmem_transactions_total" in names
        assert "gpu_smem_bank_conflict_cycles_total" in names

    def test_obs_prometheus_exposes_acceptance_counters(self, capsys):
        from repro.obs import parse_prometheus

        assert main(["obs", "--format", "prometheus",
                     "--synthetic", "0"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        names = {name for name, _ in parsed}
        assert "gpu_gmem_transactions_total" in names
        assert "gpu_smem_bank_conflict_cycles_total" in names
        assert "gpu_modeled_seconds_total" in names

    def test_obs_counters_match_cost_model_on_pinned_workload(self, capsys):
        """Acceptance: the exposed counters equal the direct ledger values."""
        from repro.conv.tensors import ConvProblem
        from repro.core.special import SpecialCaseKernel
        from repro.gpu.arch import KEPLER_K40M
        from repro.obs import parse_prometheus

        assert main(["obs", "--format", "prometheus",
                     "--synthetic", "0"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)

        cost = SpecialCaseKernel(arch=KEPLER_K40M).cost(
            ConvProblem.square(512, 3, channels=1, filters=8))
        key = ("gpu_gmem_transactions_total",
               (("kernel", cost.name), ("op", "read")))
        assert parsed[key] == pytest.approx(cost.ledger.gmem_read_transactions)
        conflict_key = ("gpu_smem_bank_conflict_cycles_total",
                        (("kernel", cost.name),))
        assert parsed[conflict_key] == pytest.approx(
            max(0.0, cost.ledger.smem_cycles - cost.ledger.smem_min_cycles))

    def test_obs_with_serving_leg_exposes_plan_cache(self, capsys):
        from repro.obs import parse_prometheus

        assert main(["obs", "--format", "prometheus",
                     "--synthetic", "25"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        names = {name for name, _ in parsed}
        assert "plan_cache_hits_total" in names
        assert "plan_cache_misses_total" in names
        assert "serve_requests_total" in names

    def test_obs_output_and_trace_files(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = str(tmp_path / "metrics.json")
        trace = str(tmp_path / "trace.json")
        assert main(["obs", "--synthetic", "10", "--output", out,
                     "--emit-trace", trace]) == 0
        with open(out) as fh:
            assert json.load(fh)["version"] == 1
        with open(trace) as fh:
            validate_chrome_trace(json.load(fh))


class TestJobsFlag:
    def test_run_accepts_jobs(self, capsys):
        assert main(["run", "fig7a", "--jobs", "2"]) == 0
        assert "fig7a" in capsys.readouterr().out

    def test_run_jobs_matches_serial_output(self, capsys):
        assert main(["run", "fig7a", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig7a", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_serve_accepts_jobs(self, capsys):
        assert main(["serve", "--synthetic", "8", "--jobs", "2",
                     "--verify"]) == 0
        assert "served 8 requests" in capsys.readouterr().out

    def test_jobs_auto(self, capsys):
        assert main(["run", "fig1", "--jobs", "auto"]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_bad_jobs_value_reports_and_exits_2(self, capsys):
        assert main(["run", "fig1", "--jobs", "nope"]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_bad_jobs_env_reports_and_exits_2(self, capsys, monkeypatch):
        # fig7a runs a DSE sweep, which consults REPRO_JOBS when no
        # --jobs flag is given; fig1 has no fan-out and never reads it.
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["run", "fig7a"]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_arch_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--arch", "volta"])

    def test_slow_experiments_exist(self):
        from repro.bench.figures import ALL_EXPERIMENTS

        for exp in SLOW_EXPERIMENTS:
            assert exp in ALL_EXPERIMENTS


class TestRunAll:
    def test_run_all_skip_slow(self, capsys, monkeypatch):
        """'run all' iterates the registry; trim it for test speed."""
        import repro.cli as cli
        from repro.bench.figures import ALL_EXPERIMENTS

        trimmed = {k: ALL_EXPERIMENTS[k]
                   for k in ("fig1", "ablation-thread-layout", "table1")}
        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", trimmed)
        assert cli.main(["run", "all", "--skip-slow"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "ablation-thread-layout" in out
        assert "table1" not in out  # skipped as slow


class TestPerf:
    """The `repro perf record|report|diff|gate` observatory commands."""

    def _record(self, tmp_path, capsys, scale="smoke", extra=()):
        traj = str(tmp_path / "traj.json")
        rc = main(["perf", "record", "--scale", scale,
                   "--trajectory", traj, *extra])
        capsys.readouterr()
        return rc, traj

    def test_record_appends_a_point(self, tmp_path, capsys):
        import json as _json

        rc, traj = self._record(tmp_path, capsys)
        assert rc == 0
        doc = _json.load(open(traj))
        assert doc["schema"] == "repro.perf-trajectory/v1"
        assert len(doc["points"]) == 1
        assert doc["points"][0]["meta"]["scale"] == "smoke"
        assert set(doc["points"][0]["workloads"]) == {
            "table1_dse", "serve_engine", "fleet_serve", "simulator"}

    def test_record_artifacts(self, tmp_path, capsys):
        import json as _json

        from repro.obs import validate_chrome_trace
        from repro.obs.perf import parse_collapsed

        fg = tmp_path / "perf.folded"
        pt = tmp_path / "point.json"
        tr = tmp_path / "trace.json"
        rc, traj = self._record(
            tmp_path, capsys,
            extra=["--no-append", "--flamegraph", str(fg),
                   "--point-out", str(pt), "--emit-trace", str(tr)])
        assert rc == 0
        assert not (tmp_path / "traj.json").exists()   # --no-append
        stacks = parse_collapsed(fg.read_text())
        assert stacks                                   # non-empty, well-formed
        point = _json.load(open(pt))
        assert point["meta"]["source"] == "perf_suite"
        doc = _json.load(open(tr))
        validate_chrome_trace(doc)
        assert doc["otherData"]["profile"]["span_count"] > 0

    def test_gate_passes_against_own_point_and_fails_on_slowdown(
            self, tmp_path, capsys):
        import json as _json

        pt = tmp_path / "point.json"
        rc, traj = self._record(tmp_path, capsys,
                                extra=["--point-out", str(pt)])
        assert rc == 0
        assert main(["perf", "gate", "--trajectory", traj,
                     "--scale", "smoke", "--point", str(pt)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

        # Inject a 2x simulator slowdown into the recorded point: the
        # gate must fail naming the workload and its budget.
        point = _json.load(open(pt))
        point["workloads"]["simulator"]["wall_s"] *= 2.0
        pt.write_text(_json.dumps(point))
        assert main(["perf", "gate", "--trajectory", traj,
                     "--scale", "smoke", "--point", str(pt)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "'simulator'" in out and "budget" in out

    def test_gate_explicit_budget_and_json(self, tmp_path, capsys):
        import json as _json

        pt = tmp_path / "point.json"
        rc, traj = self._record(tmp_path, capsys,
                                extra=["--point-out", str(pt)])
        assert rc == 0
        assert main(["perf", "gate", "--trajectory", traj,
                     "--scale", "smoke", "--point", str(pt),
                     "--budget", "simulator.wall_s=0.000001",
                     "--json"]) == 1
        result = _json.loads(capsys.readouterr().out)
        assert result["passed"] is False
        assert result["violations"][0]["workload"] == "simulator"

    def test_gate_without_baseline_is_usage_error(self, tmp_path, capsys):
        rc, traj = self._record(tmp_path, capsys)
        assert rc == 0
        assert main(["perf", "gate", "--trajectory", traj,
                     "--scale", "full"]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_gate_missing_trajectory_is_usage_error(self, tmp_path, capsys):
        assert main(["perf", "gate", "--trajectory",
                     str(tmp_path / "nope.json")]) == 2
        assert "perf:" in capsys.readouterr().err

    def test_report_renders_points_and_deltas(self, tmp_path, capsys):
        rc, traj = self._record(tmp_path, capsys)
        assert rc == 0
        rc, _ = self._record(tmp_path, capsys)
        assert rc == 0
        assert main(["perf", "report", "--trajectory", traj]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "[0]" in out and "[1]" in out
        assert "delta [0] -> [1]:" in out
        assert "simulator" in out

    def test_diff_two_points(self, tmp_path, capsys):
        import json as _json

        rc, traj = self._record(tmp_path, capsys)
        assert rc == 0
        rc, _ = self._record(tmp_path, capsys)
        assert rc == 0
        assert main(["perf", "diff", "--trajectory", traj]) == 0
        out = capsys.readouterr().out
        assert "simulator" in out and "wall_s" in out
        assert main(["perf", "diff", "--trajectory", traj,
                     "--json", "--", "0", "1"]) == 0
        rows = _json.loads(capsys.readouterr().out)
        assert any(r["workload"] == "simulator" for r in rows)

    def test_diff_index_out_of_range(self, tmp_path, capsys):
        rc, traj = self._record(tmp_path, capsys)
        assert rc == 0
        assert main(["perf", "diff", "--trajectory", traj,
                     "--", "0", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

class TestAudit:
    """The `repro audit` fastsim-vs-oracle cross-check command."""

    def test_audit_default_passes(self, capsys):
        assert main(["audit", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out
        assert "special" in out and "general" in out

    def test_audit_single_case_other_arch(self, capsys):
        assert main(["audit", "--case", "special", "--arch", "maxwell",
                     "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "general" not in out

    def test_audit_json_payload(self, capsys):
        import json as _json

        assert main(["audit", "--case", "general", "--trials", "1",
                     "--seed", "9", "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["failures"] == 0
        assert doc["arch"] == "kepler"
        assert all(t["ok"] for t in doc["trials"])
        # Both bank-conflict policies audited.
        assert {t["policy"] for t in doc["trials"]} == {
            "word-merge", "paper"}

    def test_audit_mismatch_exits_nonzero(self, capsys, monkeypatch):
        from repro.gpu.fastsim import FastSpecialKernel

        real = FastSpecialKernel.trace_cost

        def skewed(self, problem):
            cost = real(self, problem)
            cost.ledger.flops += 1.0
            return cost

        monkeypatch.setattr(FastSpecialKernel, "trace_cost", skewed)
        assert main(["audit", "--case", "special", "--trials", "1"]) == 1
        captured = capsys.readouterr()
        assert "AUDIT FAIL" in captured.err
        assert "MISMATCH" in captured.out

    def test_audit_depthwise_case(self, capsys):
        assert main(["audit", "--case", "depthwise", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "depthwise" in out
        assert "0 mismatch(es)" in out

    def test_audit_all_covers_three_cases(self, capsys):
        import json as _json

        assert main(["audit", "--case", "all", "--trials", "1",
                     "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["failures"] == 0
        assert {t["case"] for t in doc["trials"]} == {
            "special", "general", "depthwise"}


class TestBackendsMatrix:
    """The `repro backends --matrix` capability table."""

    def test_matrix_lists_every_backend_and_axis_column(self, capsys):
        assert main(["backends", "--matrix"]) == 0
        out = capsys.readouterr().out
        for name in ("special", "general", "depthwise", "im2col",
                     "implicit-gemm", "naive", "fft", "winograd"):
            assert name in out
        for column in ("stride", "dilation", "groups", "layouts"):
            assert column in out

    def test_matrix_json_matches_declared_axes(self, capsys):
        import json as _json

        from repro.kernels import default_registry

        assert main(["backends", "--matrix", "--json"]) == 0
        records = _json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in records}
        for backend in default_registry():
            rec = by_name[backend.name]
            assert rec["stride"] == backend.AXES["stride"]
            assert rec["groups"] == backend.AXES["groups"]
            assert tuple(rec["layouts"]) == tuple(backend.AXES["layouts"])

    def test_perf_record_audit_flag(self, tmp_path, capsys):
        assert main(["perf", "record", "--scale", "smoke", "--no-append",
                     "--audit", "--trajectory",
                     str(tmp_path / "t.json")]) == 0
        capsys.readouterr()


class TestChaosCLI:
    def _tiny_matrix(self, monkeypatch):
        """Trim the matrices to one small scenario for test speed."""
        import repro.chaos.matrix as matrix

        tiny = {"ci": [row for row in matrix.MATRICES["ci"]
                       if row["name"] == "crash-failover"]}
        monkeypatch.setattr(matrix, "MATRICES", tiny)

    def test_chaos_gate_passes_and_writes_report(self, capsys, tmp_path,
                                                 monkeypatch):
        import json

        self._tiny_matrix(monkeypatch)
        report_path = tmp_path / "chaos.json"
        assert main(["chaos", "--seed", "1234",
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "chaos matrix 'ci' (seed 1234): PASS" in out
        assert "crash-failover" in out
        report = json.loads(report_path.read_text())
        assert report["passed"] is True
        assert report["seed"] == 1234
        assert "crash" in report["kinds_covered"]

    def test_chaos_json_output(self, capsys, monkeypatch):
        import json

        self._tiny_matrix(monkeypatch)
        assert main(["chaos", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["matrix"] == "ci"
        assert report["scenarios"][0]["name"] == "crash-failover"

    def test_chaos_failure_exits_1(self, capsys, monkeypatch):
        import repro.chaos.matrix as matrix

        broken = dict(matrix.MATRICES["ci"][0],
                      name="crash-out-of-fleet", chaos="crash:replica=9")
        monkeypatch.setattr(matrix, "MATRICES", {"ci": [broken]})
        assert main(["chaos"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_serve_with_chaos_spec(self, capsys):
        assert main(["serve", "--synthetic", "60", "--chaos",
                     "seed=1;crash:replica=1", "--replicas", "4",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out
        assert "all 60 served responses match the reference" in out

    def test_serve_bad_chaos_spec_exits_2(self, capsys):
        assert main(["serve", "--synthetic", "10", "--chaos",
                     "explode"]) == 2
        assert "chaos" in capsys.readouterr().err
