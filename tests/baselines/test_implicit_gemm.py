"""Tests for the cuDNN-like implicit-GEMM convolution baseline."""

import numpy as np
import pytest

from repro.baselines.gemm import GemmTiling
from repro.baselines.implicit_gemm import DEFAULT_TILE_PALETTE, ImplicitGemmKernel
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Padding


@pytest.fixture
def kernel():
    return ImplicitGemmKernel()


class TestFunctional:
    def test_matches_reference(self, rng, kernel):
        img = rng.standard_normal((4, 18, 22)).astype(np.float32)
        flt = rng.standard_normal((6, 4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_same_padding(self, rng, kernel):
        img = rng.standard_normal((2, 14, 14)).astype(np.float32)
        flt = rng.standard_normal((3, 2, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt, Padding.SAME),
            conv2d_reference(img, flt, Padding.SAME),
            rtol=1e-3, atol=1e-3,
        )


class TestGemmMapping:
    def test_gemm_shape(self):
        p = ConvProblem.square(34, 3, channels=8, filters=16)
        s = ImplicitGemmKernel.gemm_shape(p)
        assert (s.m, s.n, s.k) == (16, 32 * 32, 8 * 9)

    def test_tile_selection_prefers_skinny_for_small_f(self, kernel):
        small_f = ConvProblem.square(512, 3, channels=1, filters=8)
        assert kernel.select_tiling(small_f).bm == 32

    def test_tile_selection_prefers_big_for_big_problem(self, kernel):
        big = ConvProblem.square(128, 3, channels=128, filters=256)
        assert kernel.select_tiling(big).bm >= 64

    def test_explicit_tiling_honoured(self):
        t = GemmTiling(bm=64, bn=64, bk=8, tm=4, tn=4, n=1)
        kern = ImplicitGemmKernel(tiling=t)
        assert kern.select_tiling(ConvProblem.square(64, 3, channels=4)) is t


class TestCostShape:
    def test_padding_waste_at_f1(self, kernel):
        """F=1 executes a >=32-wide padded tile: flops far above nominal."""
        p = ConvProblem.square(512, 3, channels=1, filters=1)
        assert kernel.cost(p).flops > 10 * p.flops

    def test_image_regathered_per_tap(self, kernel):
        """The implicit lowering re-reads the image ~K*K times (through
        L2); the paper's kernels avoid exactly this."""
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        led = kernel.cost(p).ledger
        assert led.gmem_l2_bytes > 5 * led.gmem_read_bytes_moved

    def test_scalar_smem_reads(self, kernel):
        for t in DEFAULT_TILE_PALETTE:
            assert t.n == 1  # the paper's premise: cuDNN is unmatched

    def test_launch_valid(self, kernel):
        p = ConvProblem.square(64, 3, channels=16, filters=64)
        kernel.launch_config_ok = kernel.cost(p)  # must not raise


class TestVersusPaper:
    def test_loses_to_special_kernel_generally(self):
        from repro.core.special import SpecialCaseKernel

        ours = SpecialCaseKernel()
        cudnn = ImplicitGemmKernel()
        p = ConvProblem.square(2048, 3, channels=1, filters=8)
        assert ours.gflops(p) > 2 * cudnn.gflops(p)

    def test_loses_to_general_kernel_on_large_layers(self):
        from repro.core.general import GeneralCaseKernel

        ours = GeneralCaseKernel()
        cudnn = ImplicitGemmKernel()
        p = ConvProblem.square(224, 3, channels=64, filters=128)
        assert ours.gflops(p) > cudnn.gflops(p)

    def test_competitive_on_tiny_images(self):
        """Paper Sec. 5.2: only at 32x32 may cuDNN win slightly."""
        from repro.core.general import GeneralCaseKernel

        ours = GeneralCaseKernel()
        cudnn = ImplicitGemmKernel()
        p = ConvProblem.square(32, 3, channels=128, filters=128)
        ratio = ours.gflops(p) / cudnn.gflops(p)
        assert 0.8 < ratio < 1.5
