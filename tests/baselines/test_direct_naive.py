"""Tests for the naive direct convolution baseline."""

import numpy as np
import pytest

from repro.baselines.direct_naive import NaiveDirectKernel
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem


@pytest.fixture
def kernel():
    return NaiveDirectKernel()


class TestFunctional:
    def test_matches_reference(self, rng, kernel):
        img = rng.standard_normal((3, 12, 14)).astype(np.float32)
        flt = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-4, atol=1e-4,
        )


class TestCost:
    def test_no_shared_memory_used(self, kernel):
        p = ConvProblem.square(64, 3, channels=16, filters=32)
        led = kernel.cost(p).ledger
        assert led.smem_requests == 0

    def test_rereads_scale_with_taps(self, kernel):
        p3 = ConvProblem.square(128, 3, channels=32, filters=32)
        p7 = ConvProblem.square(128, 7, channels=32, filters=32)
        r3 = kernel.cost(p3).ledger.gmem_l2_bytes
        r7 = kernel.cost(p7).ledger.gmem_l2_bytes
        assert r7 > 3 * r3

    def test_launch_covers_outputs(self, kernel):
        p = ConvProblem.square(64, 3, channels=4, filters=8)
        lc = kernel.launch_config(p)
        assert lc.total_threads >= p.filters * p.out_height * p.out_width


class TestShape:
    def test_much_slower_than_optimized_kernels(self, kernel):
        from repro.core.general import GeneralCaseKernel

        p = ConvProblem.square(128, 3, channels=64, filters=128)
        naive = kernel.gflops(p)
        ours = GeneralCaseKernel().gflops(p)
        assert ours > 4 * naive

    def test_bound_by_memory(self, kernel):
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        tb = kernel.predict(p)
        assert tb.bound_by in ("gmem", "l2")
