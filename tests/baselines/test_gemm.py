"""Tests for the blocked GEMM kernels (paper Fig. 2)."""

import numpy as np
import pytest

from repro.baselines.gemm import (
    CUBLAS_KEPLER_TILING,
    MAGMA_FERMI_TILING,
    MAGMA_MATCHED_TILING,
    GemmShape,
    GemmTiling,
    TiledGemmKernel,
    cublas_like_gemm,
    magma_fermi_gemm,
    magma_matched_gemm,
)
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import FERMI_M2090, KEPLER_K40M


class TestFunctional:
    @pytest.mark.parametrize("tiling", [MAGMA_FERMI_TILING, CUBLAS_KEPLER_TILING])
    def test_matches_numpy(self, rng, tiling):
        kern = TiledGemmKernel(tiling)
        a = rng.standard_normal((100, 70)).astype(np.float32)
        b = rng.standard_normal((70, 130)).astype(np.float32)
        np.testing.assert_allclose(kern.run(a, b), a @ b, rtol=1e-3, atol=1e-3)

    def test_tile_aligned_shapes(self, rng):
        kern = TiledGemmKernel(MAGMA_FERMI_TILING)
        a = rng.standard_normal((128, 64)).astype(np.float32)
        b = rng.standard_normal((64, 128)).astype(np.float32)
        np.testing.assert_allclose(kern.run(a, b), a @ b, rtol=1e-3, atol=1e-3)

    def test_incompatible_shapes_rejected(self, rng):
        kern = TiledGemmKernel(MAGMA_FERMI_TILING)
        with pytest.raises(ShapeError):
            kern.run(np.ones((4, 5)), np.ones((6, 4)))


class TestTilingValidation:
    def test_tm_not_divisible_by_n(self):
        with pytest.raises(ConfigurationError):
            GemmTiling(bm=64, bn=64, bk=8, tm=3, tn=4, n=2)

    def test_bm_not_divisible_by_tm(self):
        with pytest.raises(ConfigurationError):
            GemmTiling(bm=60, bn=64, bk=8, tm=8, tn=4)

    def test_thread_counts(self):
        assert CUBLAS_KEPLER_TILING.threads == 256
        assert MAGMA_FERMI_TILING.threads == 256

    def test_magma_tilings_differ_only_in_n(self):
        a, b = MAGMA_FERMI_TILING, MAGMA_MATCHED_TILING
        assert (a.bm, a.bn, a.bk, a.tm, a.tn) == (b.bm, b.bn, b.bk, b.tm, b.tn)
        assert (a.n, b.n) == (1, 2)


class TestFig2Shape:
    """The qualitative content of the paper's Fig. 2."""

    def test_magma_much_slower_on_kepler(self):
        s = GemmShape.square(4096)
        ratio = magma_fermi_gemm().time_ms(s) / cublas_like_gemm().time_ms(s)
        # Paper: 2.4x.  Accept the right regime.
        assert 1.6 < ratio < 3.2

    def test_matching_saves_large_fraction(self):
        s = GemmShape.square(4096)
        t_magma = magma_fermi_gemm().time_ms(s)
        t_mod = magma_matched_gemm().time_ms(s)
        saving = 1 - t_mod / t_magma
        # Paper: 36% average saving.
        assert 0.25 < saving < 0.55

    def test_magma_competitive_on_fermi(self):
        # MAGMA was tuned for Fermi: its kernel must not collapse there.
        s = GemmShape.square(4096)
        ratio = magma_fermi_gemm(FERMI_M2090).time_ms(s) / \
            cublas_like_gemm(FERMI_M2090).time_ms(s)
        assert ratio < 1.25

    def test_matched_mod_helps_nothing_on_fermi(self):
        # On 4-byte banks float is already matched; float2 cannot win big.
        s = GemmShape.square(4096)
        t_plain = magma_fermi_gemm(FERMI_M2090).time_ms(s)
        t_mod = magma_matched_gemm(FERMI_M2090).time_ms(s)
        assert t_mod > 0.8 * t_plain

    def test_time_grows_with_dimension(self):
        kern = cublas_like_gemm()
        times = [kern.time_ms(GemmShape.square(d)) for d in (2048, 4096, 8192)]
        assert times[0] < times[1] < times[2]

    def test_gflops_sane(self):
        gf = cublas_like_gemm().gflops(GemmShape.square(4096))
        assert 1500 < gf < KEPLER_K40M.peak_sp_gflops


class TestCost:
    def test_writeback_efficient(self):
        cost = cublas_like_gemm().cost(GemmShape.square(1024))
        assert cost.ledger.gmem_write_efficiency > 0.9

    def test_smem_conflict_free(self):
        cost = cublas_like_gemm().cost(GemmShape.square(1024))
        assert cost.ledger.smem_conflict_overhead == pytest.approx(1.0)

    def test_unmatched_doubles_operand_requests(self):
        s = GemmShape.square(1024)
        plain = magma_fermi_gemm().cost(s).ledger
        matched = magma_matched_gemm().cost(s).ledger
        assert plain.smem_cycles == pytest.approx(2 * matched.smem_cycles, rel=0.2)

    def test_flops_exact_for_aligned_shape(self):
        s = GemmShape.square(2048)
        assert cublas_like_gemm().cost(s).flops == pytest.approx(s.flops)

    def test_register_clamp_on_fermi(self):
        lc = cublas_like_gemm(FERMI_M2090).launch_config(GemmShape.square(1024))
        assert lc.registers_per_thread <= FERMI_M2090.max_registers_per_thread
